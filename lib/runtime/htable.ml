(** Hash table in VM memory, used for hash joins and group-by aggregation.

    Three layouts share one handle format and one registry ABI
    ([create]/[insert]/[lookup]/[next]/[iter]), so every back-end —
    interpreter, stencil, directemit, cranelift, llvm, gcc — inherits the
    fast paths with zero codegen edits:

    - [Legacy]: the pre-tag open-addressing table (4 simulated cycles per
      probed slot, no tag filter). Kept bit-compatible as the baseline the
      [bench join] gate measures against.
    - [Tagged]: same entry arena, plus a separate packed array of 16-bit
      hash tags (4 tags per 64-bit word, scanned word-at-a-time, HyPer /
      Umbra-unchained style). No-match probes compare tags only and never
      touch the entry arena; the full 64-bit hash is loaded only on a tag
      hit, so a miss costs ~7 simulated cycles instead of ~12.
    - [Direct]: a direct-address table for dense small-range integer keys
      (ClickHouse [FixedHashMap] style). The generated code only ever
      passes 64-bit hashes, but [Hashes.hash64] is affine over GF(2) and
      invertible, so the runtime recovers the exact key from the hash,
      tracks the observed key range, and falls back to [Tagged]
      transparently the moment the range exceeds {!direct_max_span}.

    Header layout (64 bytes at the handle address; generated code reads
    offsets +0/+16/+24 directly in group-by scan loops, so those are ABI):
    - +0  capacity  (entry-arena slot count; power of two in Legacy/Tagged)
    - +8  count
    - +16 entry size in bytes: 8-byte hash header + payload (8-aligned)
          + 8-byte trailer (Direct-mode chain link; unused otherwise)
    - +24 pointer to the entry arena
    - +32 mode word: 0 = Legacy, 1 = Tagged, 2 = Direct
    - +40 aux pointer: packed tag array (Tagged) / bucket array (Direct,
          0 until the first insert)
    - +48 Direct: key value of bucket 0 (the minimum key observed)
    - +56 Direct: bucket-array slot count (power of two)

    Entry layout: [hash:u64][payload...][chain:u64]; hash 0 marks an empty
    slot, so stored hashes are forced non-zero. Legacy/Tagged use linear
    probing; duplicates of the same hash are chained by probe order (joins
    need them), and growth rehashes circularly starting after an empty
    slot so the relative order of equal-hash entries survives rehashing.
    Direct appends entries in insertion order and chains duplicates
    through the trailer word.

    Entry addresses returned by [lookup]/[insert] are invalidated by the
    next growth or layout migration (the old arena is freed — see
    {!grow}). [next] checks that the entry address it is handed lies in
    the current arena and raises [Rt_error.Query_error] on a stale one
    instead of silently walking freed memory. *)

open Qcomp_support
open Qcomp_vm

let header_size = 64
let min_capacity = 16

(* Direct-address bounds: the bucket array never exceeds
   [direct_max_span] u32 slots (256 KiB) — beyond that the table migrates
   to the tagged layout. *)
let direct_max_span = 1 lsl 16
let direct_min_buckets = 64

let mode_legacy = 0L
let mode_tagged = 1L
let mode_direct = 2L

type profile = Legacy | Tagged

(* The profile selects the layout family for *newly created* tables:
   [Tagged] (the default) starts tables as direct-address candidates and
   falls back to the tag-filtered layout; [Legacy] reproduces the
   pre-tag table and its exact cycle charges, kept so the join benchmark
   can measure before/after in one process. It is a per-table creation
   argument — there is deliberately no process-wide toggle, so concurrent
   intra-query builds cannot race on it. *)

(* ---------------- charged-cycle model ----------------

   All simulated costs live here (the registry charges whatever these
   functions return), so the calibration is in one place:

   Legacy (unchanged from the pre-tag table):
     create 200; lookup 8 + 4/slot; next 6 + 4/slot;
     insert 10 + 4/slot + 6/moved entry on growth; zeroing free.

   Tagged: a no-match probe is a tag-word scan that skips the entry
   arena entirely (Umbra's ~10-instruction no-match path):
     lookup 6 + 1/tag word + 3/tag hit; next 4 + 1/tag word + 3/tag hit;
     insert 10 + 1/tag word + 2 for the tag+hash stores.

   Direct: a bounds check plus one bucket load:
     lookup 3 on range miss, 4 on empty bucket, 5 on hit; next 3/link;
     insert 8 + 1/chain hop to the tail.

   Arena zeroing is no longer free outside Legacy: creation, growth and
   migration charge {!zero_cost} per zeroed byte (1 cycle per 32 bytes,
   wide-store throughput), so large build sides stop looking artificially
   cheap to the re-optimization cost model. *)

let zero_cost bytes = bytes / 32

(* ---------------- probe statistics ----------------

   Global counters feeding [bench join] and the htable tests. Atomic so
   parallel serving does not tear them; they are aggregate gauges, not
   per-table state. *)

let stat_probes = Atomic.make 0 (* lookup + next calls *)
let stat_probe_cycles = Atomic.make 0 (* cycles charged for those calls *)
let stat_tag_words = Atomic.make 0 (* 64-bit tag words scanned *)
let stat_tag_hits = Atomic.make 0 (* full-hash checks after a tag match *)
let stat_direct_probes = Atomic.make 0 (* probes served by a Direct table *)
let stat_fallbacks = Atomic.make 0 (* Direct -> Tagged migrations *)
let stat_grows = Atomic.make 0

type stats = {
  probes : int;
  probe_cycles : int;
  tag_words : int;
  tag_hits : int;
  direct_probes : int;
  fallbacks : int;
  grows : int;
}

let stats () =
  {
    probes = Atomic.get stat_probes;
    probe_cycles = Atomic.get stat_probe_cycles;
    tag_words = Atomic.get stat_tag_words;
    tag_hits = Atomic.get stat_tag_hits;
    direct_probes = Atomic.get stat_direct_probes;
    fallbacks = Atomic.get stat_fallbacks;
    grows = Atomic.get stat_grows;
  }

let reset_stats () =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      stat_probes; stat_probe_cycles; stat_tag_words; stat_tag_hits;
      stat_direct_probes; stat_fallbacks; stat_grows;
    ]

let bump c n = Atomic.set c (Atomic.get c + n)

let count_probe cost =
  bump stat_probes 1;
  bump stat_probe_cycles cost

(* ---------------- handle accessors ---------------- *)

let norm_hash h = if Int64.equal h 0L then 1L else h

let capacity mem ht = Int64.to_int (Memory.load64 mem ht)
let count mem ht = Int64.to_int (Memory.load64 mem (ht + 8))
let entry_size mem ht = Int64.to_int (Memory.load64 mem (ht + 16))
let entries_ptr mem ht = Int64.to_int (Memory.load64 mem (ht + 24))
let mode_word mem ht = Memory.load64 mem (ht + 32)
let aux_ptr mem ht = Int64.to_int (Memory.load64 mem (ht + 40))
let direct_base mem ht = Memory.load64 mem (ht + 48)
let direct_bcap mem ht = Int64.to_int (Memory.load64 mem (ht + 56))

let mode mem ht =
  match mode_word mem ht with
  | w when Int64.equal w mode_legacy -> `Legacy
  | w when Int64.equal w mode_tagged -> `Tagged
  | _ -> `Direct

let slot_addr mem ht i = entries_ptr mem ht + (i * entry_size mem ht)
let mask mem ht = capacity mem ht - 1

(* 16-bit tag from the top bits of the hash, forced non-zero so tag 0
   means "empty slot". Collisions with the forced value only cost a
   full-hash check (a false positive), never a wrong result. *)
let tag_of h =
  let t = Int64.to_int (Int64.shift_right_logical h 48) land 0xFFFF in
  if t = 0 then 1 else t

let load_tag mem tags i = Int64.to_int (Memory.load mem ~addr:(tags + (2 * i)) ~size:2 ~sext:false)
let store_tag mem tags i t = Memory.store mem ~addr:(tags + (2 * i)) ~size:2 (Int64.of_int t)

(* Tag words are scanned 64 bits (4 tags) at a time in the modeled
   hardware loop; the cost model charges per distinct word touched. *)
let tag_word i = i lsr 2

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (2 * c)

let alloc_zeroed mem bytes =
  let a = Memory.alloc mem ~align:16 bytes in
  Memory.fill mem ~addr:a ~len:bytes '\000';
  a

(* ---------------- creation ---------------- *)

(** Create a table; returns [(handle, cycles)]. The layout family follows
    [profile]: under [Tagged] (the default) the table starts as a
    direct-address candidate (when {!Hashes.unhash64_opt} exists) and
    decides on first contact with the keys. *)
let create mem ?(profile = Tagged) ~payload_size ~capacity_hint () =
  let entry_size = 8 + ((payload_size + 7) land lnot 7) + 8 in
  let cap = pow2_at_least capacity_hint min_capacity in
  let ht = Memory.alloc mem ~align:16 header_size in
  let entries = alloc_zeroed mem (cap * entry_size) in
  Memory.store64 mem ht (Int64.of_int cap);
  Memory.store64 mem (ht + 8) 0L;
  Memory.store64 mem (ht + 16) (Int64.of_int entry_size);
  Memory.store64 mem (ht + 24) (Int64.of_int entries);
  Memory.store64 mem (ht + 48) 0L;
  Memory.store64 mem (ht + 56) 0L;
  let cost =
    match profile with
    | Legacy ->
        Memory.store64 mem (ht + 32) mode_legacy;
        Memory.store64 mem (ht + 40) 0L;
        200
    | Tagged ->
        let zeroed = ref (cap * entry_size) in
        (match Hashes.unhash64_opt with
        | Some _ ->
            Memory.store64 mem (ht + 32) mode_direct;
            Memory.store64 mem (ht + 40) 0L
        | None ->
            let tags = alloc_zeroed mem (cap * 2) in
            zeroed := !zeroed + (cap * 2);
            Memory.store64 mem (ht + 32) mode_tagged;
            Memory.store64 mem (ht + 40) (Int64.of_int tags));
        200 + zero_cost !zeroed
  in
  (ht, cost)

(* ---------------- legacy probing (pre-tag layout) ---------------- *)

let legacy_insert_no_grow mem ht h =
  let cap_mask = mask mem ht in
  let h = norm_hash h in
  let rec probe i probes =
    let addr = slot_addr mem ht i in
    let slot_hash = Memory.load64 mem addr in
    if Int64.equal slot_hash 0L then begin
      Memory.store64 mem addr h;
      (addr + 8, probes)
    end
    else probe ((i + 1) land cap_mask) (probes + 1)
  in
  let start = Int64.to_int (Int64.logand h (Int64.of_int cap_mask)) in
  probe start 0

let legacy_lookup mem ht h =
  let cap_mask = mask mem ht in
  let h = norm_hash h in
  let rec probe i probes =
    let addr = slot_addr mem ht i in
    let slot_hash = Memory.load64 mem addr in
    if Int64.equal slot_hash 0L then (0, probes)
    else if Int64.equal slot_hash h then (addr, probes)
    else probe ((i + 1) land cap_mask) (probes + 1)
  in
  let start = Int64.to_int (Int64.logand h (Int64.of_int cap_mask)) in
  probe start 0

(* ---------------- tagged probing ---------------- *)

let tagged_insert_no_grow mem ht h =
  let cap_mask = mask mem ht in
  let tags = aux_ptr mem ht in
  let h = norm_hash h in
  let t = tag_of h in
  let rec probe i words last_w =
    let w = tag_word i in
    let words = if w = last_w then words else words + 1 in
    if load_tag mem tags i = 0 then begin
      store_tag mem tags i t;
      let addr = slot_addr mem ht i in
      Memory.store64 mem addr h;
      (addr + 8, words)
    end
    else probe ((i + 1) land cap_mask) words w
  in
  let start = Int64.to_int (Int64.logand h (Int64.of_int cap_mask)) in
  probe start 1 (tag_word start)

(* Tag-filtered probe from slot [start]: compare 16-bit tags from the
   packed array; only a tag match loads the slot's 64-bit hash. Returns
   (entry | 0, tag words scanned, full-hash checks). *)
let tagged_probe_from mem ht h start =
  let cap_mask = mask mem ht in
  let tags = aux_ptr mem ht in
  let t = tag_of h in
  let rec probe i words last_w hits =
    let w = tag_word i in
    let words = if w = last_w then words else words + 1 in
    let st = load_tag mem tags i in
    if st = 0 then (0, words, hits)
    else if st = t then begin
      let addr = slot_addr mem ht i in
      if Int64.equal (Memory.load64 mem addr) h then (addr, words, hits + 1)
      else probe ((i + 1) land cap_mask) words w (hits + 1)
    end
    else probe ((i + 1) land cap_mask) words w hits
  in
  probe start 1 (tag_word start) 0

(* ---------------- growth (Legacy/Tagged) ----------------

   Doubles the arena and rehashes. The scan over the old arena starts
   just past an empty slot and wraps, so no maximal occupied run is split
   by the array boundary — equal-hash chains keep their probe order
   across growth (insertion order, the invariant joins rely on). The old
   arena (and tag array) is freed: repeated growth no longer leaks data
   bytes for the rest of the query. *)

let grow mem ht =
  bump stat_grows 1;
  let old_cap = capacity mem ht in
  let old_entries = entries_ptr mem ht in
  let old_tags = aux_ptr mem ht in
  let esz = entry_size mem ht in
  let tagged = Int64.equal (mode_word mem ht) mode_tagged in
  let new_cap = old_cap * 2 in
  let entries = alloc_zeroed mem (new_cap * esz) in
  let zeroed = ref (new_cap * esz) in
  Memory.store64 mem ht (Int64.of_int new_cap);
  Memory.store64 mem (ht + 24) (Int64.of_int entries);
  if tagged then begin
    let tags = alloc_zeroed mem (new_cap * 2) in
    zeroed := !zeroed + (new_cap * 2);
    Memory.store64 mem (ht + 40) (Int64.of_int tags)
  end;
  (* load <= 70% guarantees an empty slot exists *)
  let first_empty = ref 0 in
  while
    not
      (Int64.equal (Memory.load64 mem (old_entries + (!first_empty * esz))) 0L)
  do
    incr first_empty
  done;
  let moved = ref 0 in
  for k = 1 to old_cap do
    let i = (!first_empty + k) land (old_cap - 1) in
    let src = old_entries + (i * esz) in
    let h = Memory.load64 mem src in
    if not (Int64.equal h 0L) then begin
      let dst_payload, _ =
        if tagged then tagged_insert_no_grow mem ht h
        else legacy_insert_no_grow mem ht h
      in
      Memory.blit mem ~src:(src + 8) ~dst:dst_payload ~len:(esz - 16);
      incr moved
    end
  done;
  Memory.free mem ~addr:old_entries ~size:(old_cap * esz) ~align:16;
  if tagged && old_tags <> 0 then
    Memory.free mem ~addr:old_tags ~size:(old_cap * 2) ~align:16;
  let zero_cycles = if tagged then zero_cost !zeroed else 0 in
  (6 * !moved) + zero_cycles

(* ---------------- direct-address layout ---------------- *)

let unhash h =
  match Hashes.unhash64_opt with
  | Some f -> f h
  | None -> assert false (* Direct mode is never entered without it *)

let bucket_load mem buckets i =
  Int64.to_int (Memory.load mem ~addr:(buckets + (4 * i)) ~size:4 ~sext:false)

let bucket_store mem buckets i v =
  Memory.store mem ~addr:(buckets + (4 * i)) ~size:4 (Int64.of_int v)

let entry_of_index mem ht idx = entries_ptr mem ht + ((idx - 1) * entry_size mem ht)
let chain_word mem ht addr = addr + entry_size mem ht - 8

(* Migrate a Direct table (entries dense in [0, count)) to the Tagged
   layout; returns the charged cycles. Invalidate-on-migrate matches the
   growth contract: outstanding entry addresses die with the old arena. *)
let fallback_to_tagged mem ht =
  bump stat_fallbacks 1;
  let cnt = count mem ht in
  let old_cap = capacity mem ht in
  let old_entries = entries_ptr mem ht in
  let old_buckets = aux_ptr mem ht in
  let old_bcap = direct_bcap mem ht in
  let esz = entry_size mem ht in
  let cap = pow2_at_least (max min_capacity (2 * cnt)) min_capacity in
  let entries = alloc_zeroed mem (cap * esz) in
  let tags = alloc_zeroed mem (cap * 2) in
  Memory.store64 mem ht (Int64.of_int cap);
  Memory.store64 mem (ht + 24) (Int64.of_int entries);
  Memory.store64 mem (ht + 32) mode_tagged;
  Memory.store64 mem (ht + 40) (Int64.of_int tags);
  Memory.store64 mem (ht + 48) 0L;
  Memory.store64 mem (ht + 56) 0L;
  (* re-insert in arena order = insertion order: chain order is kept *)
  for i = 0 to cnt - 1 do
    let src = old_entries + (i * esz) in
    let h = Memory.load64 mem src in
    let dst_payload, _ = tagged_insert_no_grow mem ht h in
    Memory.blit mem ~src:(src + 8) ~dst:dst_payload ~len:(esz - 16)
  done;
  Memory.free mem ~addr:old_entries ~size:(old_cap * esz) ~align:16;
  if old_buckets <> 0 then
    Memory.free mem ~addr:old_buckets ~size:(old_bcap * 4) ~align:16;
  (6 * cnt) + zero_cost ((cap * esz) + (cap * 2)) + 20

(* Re-point the bucket array at a window [base', base'+bcap') covering
   both the existing window and key [k]; returns the charged cycles.
   [base] is always the minimum key observed, so the window only ever
   extends. *)
let direct_rewindow mem ht k =
  let buckets = aux_ptr mem ht in
  let base = direct_base mem ht in
  let bcap = direct_bcap mem ht in
  let lo = if Int64.compare k base < 0 then k else base in
  let hi_old = Int64.add base (Int64.of_int (bcap - 1)) in
  let hi = if Int64.compare k hi_old > 0 then k else hi_old in
  let span = Int64.sub hi lo in
  (* unhashed keys are arbitrary 64-bit values: [span] going negative
     means the true distance overflowed int64 — way past any bound *)
  if
    Int64.compare span 0L < 0
    || Int64.compare hi_old base < 0 (* window wrapped past INT64_MAX *)
    || Int64.compare span (Int64.of_int direct_max_span) >= 0
  then `Fallback
  else begin
    let span = Int64.to_int span + 1 in
    let bcap' = pow2_at_least (max span direct_min_buckets) direct_min_buckets in
    let buckets' = alloc_zeroed mem (bcap' * 4) in
    let off = Int64.to_int (Int64.sub base lo) in
    Memory.blit mem ~src:buckets ~dst:(buckets' + (4 * off)) ~len:(bcap * 4);
    Memory.free mem ~addr:buckets ~size:(bcap * 4) ~align:16;
    Memory.store64 mem (ht + 40) (Int64.of_int buckets');
    Memory.store64 mem (ht + 48) lo;
    Memory.store64 mem (ht + 56) (Int64.of_int bcap');
    `Ok (20 + zero_cost (bcap' * 4) + zero_cost (bcap * 4))
  end

(* Append an entry to the Direct arena (doubling it when full — entry
   *indices* stay stable, so the bucket array survives growth) and link
   it at the tail of its bucket chain. *)
let direct_insert mem ht h =
  let h = norm_hash h in
  let k = unhash h in
  let cnt = count mem ht in
  let esz = entry_size mem ht in
  let setup_cost = ref 0 in
  let fellback = ref false in
  (if aux_ptr mem ht = 0 then begin
     (* first insert decides the window *)
     let buckets = alloc_zeroed mem (direct_min_buckets * 4) in
     Memory.store64 mem (ht + 40) (Int64.of_int buckets);
     Memory.store64 mem (ht + 48) k;
     Memory.store64 mem (ht + 56) (Int64.of_int direct_min_buckets);
     setup_cost := 20 + zero_cost (direct_min_buckets * 4)
   end
   else
     let base = direct_base mem ht in
     let bcap = direct_bcap mem ht in
     let off = Int64.sub k base in
     if Int64.compare off 0L < 0 || Int64.compare off (Int64.of_int bcap) >= 0
     then
       match direct_rewindow mem ht k with
       | `Ok c -> setup_cost := c
       | `Fallback ->
           setup_cost := fallback_to_tagged mem ht;
           fellback := true);
  if !fellback then begin
    let payload, words = tagged_insert_no_grow mem ht h in
    Memory.store64 mem (ht + 8) (Int64.of_int (cnt + 1));
    (payload, 10 + words + 2 + !setup_cost)
  end
  else begin
    (* arena full? double it (append-only: blit is index-stable) *)
    let grow_cost =
      if cnt >= capacity mem ht then begin
        bump stat_grows 1;
        let old_cap = capacity mem ht in
        let old_entries = entries_ptr mem ht in
        let new_cap = old_cap * 2 in
        let entries = alloc_zeroed mem (new_cap * esz) in
        Memory.blit mem ~src:old_entries ~dst:entries ~len:(old_cap * esz);
        Memory.free mem ~addr:old_entries ~size:(old_cap * esz) ~align:16;
        Memory.store64 mem ht (Int64.of_int new_cap);
        Memory.store64 mem (ht + 24) (Int64.of_int entries);
        zero_cost (new_cap * esz) + (old_cap * esz / 32)
      end
      else 0
    in
    let idx = cnt + 1 in
    let addr = entry_of_index mem ht idx in
    Memory.store64 mem addr h;
    Memory.store64 mem (chain_word mem ht addr) 0L;
    let buckets = aux_ptr mem ht in
    let slot = Int64.to_int (Int64.sub k (direct_base mem ht)) in
    let head = bucket_load mem buckets slot in
    let hops = ref 0 in
    (if head = 0 then bucket_store mem buckets slot idx
     else begin
       (* chain duplicates in insertion order: append at the tail *)
       let tail = ref (entry_of_index mem ht head) in
       let next = ref (Memory.load64 mem (chain_word mem ht !tail)) in
       while not (Int64.equal !next 0L) do
         incr hops;
         tail := entry_of_index mem ht (Int64.to_int !next);
         next := Memory.load64 mem (chain_word mem ht !tail)
       done;
       Memory.store64 mem (chain_word mem ht !tail) (Int64.of_int idx)
     end);
    Memory.store64 mem (ht + 8) (Int64.of_int (cnt + 1));
    (addr + 8, 8 + !hops + !setup_cost + grow_cost)
  end

let direct_lookup mem ht h =
  bump stat_direct_probes 1;
  let buckets = aux_ptr mem ht in
  if buckets = 0 then (0, 3)
  else
    let h = norm_hash h in
    let k = unhash h in
    let off = Int64.sub k (direct_base mem ht) in
    if
      Int64.compare off 0L < 0
      || Int64.compare off (Int64.of_int (direct_bcap mem ht)) >= 0
    then (0, 3)
    else
      let idx = bucket_load mem buckets (Int64.to_int off) in
      if idx = 0 then (0, 4) else (entry_of_index mem ht idx, 5)

(* ---------------- public operations ---------------- *)

(** Insert an entry for [h]; returns (payload address, charged cycles). *)
let insert mem ht h =
  if Int64.equal (mode_word mem ht) mode_direct then direct_insert mem ht h
  else begin
    let cap = capacity mem ht in
    let cnt = count mem ht in
    let grow_cost = if 10 * (cnt + 1) > 7 * cap then grow mem ht else 0 in
    Memory.store64 mem (ht + 8) (Int64.of_int (cnt + 1));
    if Int64.equal (mode_word mem ht) mode_tagged then begin
      let payload, words = tagged_insert_no_grow mem ht h in
      bump stat_tag_words words;
      (payload, 10 + words + 2 + grow_cost)
    end
    else begin
      let payload, probes = legacy_insert_no_grow mem ht h in
      (payload, (4 * probes) + 10 + grow_cost)
    end
  end

(** First entry whose hash equals [h]; 0 when absent. Returns the *entry*
    address (hash word included) so probing can continue with {!next},
    and the charged cycles. *)
let lookup mem ht h =
  let entry, cost =
    match mode_word mem ht with
    | w when Int64.equal w mode_direct -> direct_lookup mem ht h
    | w when Int64.equal w mode_tagged ->
        let h = norm_hash h in
        let start = Int64.to_int (Int64.logand h (Int64.of_int (mask mem ht))) in
        let entry, words, hits = tagged_probe_from mem ht h start in
        bump stat_tag_words words;
        bump stat_tag_hits hits;
        (entry, 6 + words + (3 * hits))
    | _ ->
        let entry, probes = legacy_lookup mem ht h in
        (entry, 8 + (4 * probes))
  in
  count_probe cost;
  (entry, cost)

(* [next]'s contract: [addr] must be an entry address of the *current*
   arena (as returned by [lookup]/[next] since the last growth or
   migration). A stale address from before a grow points into freed,
   zero-filled memory — walking it silently yields wrong results, so it
   is rejected loudly instead. *)
let check_entry_addr mem ht addr op =
  let base = entries_ptr mem ht in
  let esz = entry_size mem ht in
  let cap = capacity mem ht in
  if addr < base || addr >= base + (cap * esz) || (addr - base) mod esz <> 0
  then
    raise
      (Rt_error.Query_error
         (Printf.sprintf
            "%s: stale entry address 0x%x (table grew since lookup)" op addr))

(** Next entry with the same hash after entry [addr]; 0 when exhausted. *)
let next mem ht addr h =
  check_entry_addr mem ht addr "Htable.next";
  let entry, cost =
    match mode_word mem ht with
    | w when Int64.equal w mode_direct ->
        bump stat_direct_probes 1;
        let link = Memory.load64 mem (chain_word mem ht addr) in
        if Int64.equal link 0L then (0, 3)
        else (entry_of_index mem ht (Int64.to_int link), 3)
    | w when Int64.equal w mode_tagged ->
        let h = norm_hash h in
        let esz = entry_size mem ht in
        let i = (addr - entries_ptr mem ht) / esz in
        let entry, words, hits =
          tagged_probe_from mem ht h ((i + 1) land mask mem ht)
        in
        bump stat_tag_words words;
        bump stat_tag_hits hits;
        (entry, 4 + words + (3 * hits))
    | _ ->
        let cap_mask = mask mem ht in
        let h = norm_hash h in
        let esz = entry_size mem ht in
        let base = entries_ptr mem ht in
        let i = (addr - base) / esz in
        let rec probe i probes =
          let a = slot_addr mem ht i in
          let slot_hash = Memory.load64 mem a in
          if Int64.equal slot_hash 0L then (0, probes)
          else if Int64.equal slot_hash h then (a, probes)
          else probe ((i + 1) land cap_mask) (probes + 1)
        in
        let entry, probes = probe ((i + 1) land cap_mask) 0 in
        (entry, 6 + (4 * probes))
  in
  count_probe cost;
  (entry, cost)

(** Iterate payload addresses of all occupied entries (scan order: slot
    order for Legacy/Tagged, insertion order for Direct). *)
let iter mem ht f =
  let cap = capacity mem ht in
  for i = 0 to cap - 1 do
    let addr = slot_addr mem ht i in
    if not (Int64.equal (Memory.load64 mem addr) 0L) then f (addr + 8)
  done

(* ---------------- parallel-build support ---------------- *)

(** The creation profile a table was built under, recovered from its mode
    word — lane-local partitions mirror the global table's family. *)
let profile_of mem ht =
  if Int64.equal (mode_word mem ht) mode_legacy then Legacy else Tagged

(** Capacity hint for an exact-size build from a known cardinality
    (Umbra-style): a table created with this hint absorbs [count] inserts
    without ever triggering {!grow} (the load stays <= 70%), and a Direct
    arena never doubles. *)
let exact_capacity count =
  pow2_at_least (max min_capacity (((10 * (count + 1)) + 6) / 7)) min_capacity

(** Fold every entry of [src] into [dst] by re-inserting under the stored
    (already normalized) hash and blitting the payload bytes; both tables
    must share one entry size. Chain order of equal-hash duplicates follows
    [src]'s scan order. Returns the charged cycles. *)
let merge_into mem ~dst ~src =
  let esz = entry_size mem src in
  if entry_size mem dst <> esz then
    raise (Rt_error.Query_error "Htable.merge_into: entry size mismatch");
  let plen = esz - 16 in
  let cost = ref 0 in
  let cap = capacity mem src in
  for i = 0 to cap - 1 do
    let addr = entries_ptr mem src + (i * esz) in
    let h = Memory.load64 mem addr in
    if not (Int64.equal h 0L) then begin
      let payload, c = insert mem dst h in
      Memory.blit mem ~src:(addr + 8) ~dst:payload ~len:plen;
      cost := !cost + c + 2 + (plen / 32)
    end
  done;
  !cost
