(** The runtime function table exposed to generated code.

    Mirrors Umbra's runtime: memory management, hash tables, tuple buffers,
    sorting (which calls *back* into generated comparator code), string
    operations, 128-bit helpers, and the overflow/division traps. Each
    function reads its arguments from the argument registers, performs its
    work against VM memory, charges the emulator a deterministic cycle
    cost, and writes results to the return registers. *)

open Qcomp_support
open Qcomp_vm

type t = {
  index : (string, int) Hashtbl.t;
  names : string array;
  fns : (Emu.t -> unit) array;
}

let arg e k = Emu.reg e (Emu.arg_reg e k)

let make_ret target =
  let r0 = target.Target.ret_regs.(0) and r1 = target.Target.ret_regs.(1) in
  ( (fun e v -> Emu.set_reg e r0 v),
    fun e lo hi ->
      Emu.set_reg e r0 lo;
      Emu.set_reg e r1 hi )

let i128_of lo hi =
  I128.logor
    (I128.shift_left (I128.of_int64 hi) 64)
    (I128.logand (I128.of_int64 lo) (I128.make ~hi:0L ~lo:(-1L)))

let split128 (v : I128.t) =
  (I128.to_int64 v, I128.to_int64 (I128.shift_right_logical v 64))

let functions target ~ht_profile : (string * (Emu.t -> unit)) list =
  let ret, ret2 = make_ret target in
  [
    (* ---- traps ---- *)
    ("umbra_throwOverflow", fun _ -> Rt_error.overflow ());
    ("umbra_throwDivZero", fun _ -> Rt_error.division_by_zero ());
    (* ---- memory ---- *)
    ( "umbra_alloc",
      fun e ->
        let n = Int64.to_int (arg e 0) in
        Emu.charge e (20 + (n / 64));
        ret e (Int64.of_int (Memory.alloc (Emu.memory e) n)) );
    (* ---- hash table ---- *)
    (* The hash-table functions charge whatever the table implementation
       returns: the cycle model lives in {!Htable} next to the layout it
       prices (tag-filtered probes, direct addressing, arena zeroing). *)
    ( "umbra_htCreate",
      fun e ->
        let payload = Int64.to_int (arg e 0) in
        let hint = Int64.to_int (arg e 1) in
        let ht, cost =
          Htable.create (Emu.memory e) ~profile:ht_profile
            ~payload_size:payload ~capacity_hint:hint ()
        in
        Emu.charge e cost;
        ret e (Int64.of_int ht) );
    ( "umbra_htInsert",
      fun e ->
        let ht = Int64.to_int (arg e 0) in
        (if Sys.getenv_opt "QC_TRACE_HT" <> None then
           Printf.eprintf "htInsert ht=%d hash=%Ld\n%!" ht (arg e 1));
        let payload, cost = Htable.insert (Emu.memory e) ht (arg e 1) in
        Emu.charge e cost;
        ret e (Int64.of_int payload) );
    ( "umbra_htLookup",
      fun e ->
        let ht = Int64.to_int (arg e 0) in
        (if Sys.getenv_opt "QC_TRACE_HT" <> None then
           Printf.eprintf "htLookup ht=%d hash=%Ld\n%!" ht (arg e 1));
        let entry, cost = Htable.lookup (Emu.memory e) ht (arg e 1) in
        Emu.charge e cost;
        ret e (Int64.of_int entry) );
    ( "umbra_htNext",
      fun e ->
        let ht = Int64.to_int (arg e 0) in
        let entry = Int64.to_int (arg e 1) in
        let next, cost = Htable.next (Emu.memory e) ht entry (arg e 2) in
        Emu.charge e cost;
        ret e (Int64.of_int next) );
    (* ---- tuple buffers ---- *)
    ( "umbra_bufCreate",
      fun e ->
        let row_size = Int64.to_int (arg e 0) in
        Emu.charge e 150;
        ret e
          (Int64.of_int
             (Tuplebuf.create (Emu.memory e) ~row_size ~capacity_hint:64)) );
    ( "umbra_bufAppend",
      fun e ->
        let buf = Int64.to_int (arg e 0) in
        let row, cost = Tuplebuf.append (Emu.memory e) buf in
        Emu.charge e cost;
        ret e (Int64.of_int row) );
    ( "umbra_bufCount",
      fun e ->
        let buf = Int64.to_int (arg e 0) in
        Emu.charge e 4;
        ret e (Int64.of_int (Tuplebuf.count (Emu.memory e) buf)) );
    ( "umbra_bufRow",
      fun e ->
        let buf = Int64.to_int (arg e 0) in
        Emu.charge e 5;
        ret e (Int64.of_int (Tuplebuf.row (Emu.memory e) buf (Int64.to_int (arg e 1)))) );
    ( "umbra_sort",
      fun e ->
        (* Sort rows with a generated comparator — the runtime-calls-back-
           into-generated-code case from the paper (sort operators). *)
        let mem = Emu.memory e in
        let buf = Int64.to_int (arg e 0) in
        let cmp_addr = Int64.to_int (arg e 1) in
        let n = Tuplebuf.count mem buf in
        if n > 1 then begin
          let idx = Array.init n (fun i -> i) in
          let row i = Int64.of_int (Tuplebuf.row mem buf i) in
          let cmp a b =
            let r, _ =
              Emu.call_generated e ~addr:cmp_addr ~args:[| row a; row b |]
            in
            (* stable: break comparator ties by input position, like
               std::stable_sort in Umbra's sort operator *)
            let c = Int64.to_int r in
            if c <> 0 then c else compare a b
          in
          Array.sort cmp idx;
          let move_cost = Tuplebuf.permute mem buf idx in
          Emu.charge e move_cost
        end;
        Emu.charge e (30 + (8 * n)) );
    (* ---- strings ---- *)
    ( "umbra_strEq",
      fun e ->
        let mem = Emu.memory e in
        let a = Int64.to_int (arg e 0) and b = Int64.to_int (arg e 1) in
        let la = Sso.length mem a in
        Emu.charge e (10 + (la / 8));
        ret e (if Sso.equal mem a b then 1L else 0L) );
    ( "umbra_strCmp",
      fun e ->
        let mem = Emu.memory e in
        let a = Int64.to_int (arg e 0) and b = Int64.to_int (arg e 1) in
        Emu.charge e (12 + (Sso.length mem a / 8));
        ret e (Int64.of_int (Sso.compare_str mem a b)) );
    ( "umbra_strLike",
      fun e ->
        let mem = Emu.memory e in
        let s = Int64.to_int (arg e 0) and p = Int64.to_int (arg e 1) in
        Emu.charge e (20 + (3 * Sso.length mem s));
        ret e (if Sso.like mem ~str:s ~pat:p then 1L else 0L) );
    ( "umbra_strHash",
      fun e ->
        let mem = Emu.memory e in
        let s = Int64.to_int (arg e 0) in
        Emu.charge e (8 + (2 * Sso.length mem s));
        ret e (Sso.hash mem s) );
    (* ---- 128-bit helpers (hand-optimized in Umbra) ---- *)
    ( "umbra_i128MulFull",
      fun e ->
        let a = i128_of (arg e 0) (arg e 1) in
        let b = i128_of (arg e 2) (arg e 3) in
        Emu.charge e 25;
        if I128.mul_overflows a b then Rt_error.overflow ();
        let lo, hi = split128 (I128.mul a b) in
        ret2 e lo hi );
    ( "umbra_i128Div",
      fun e ->
        let a = i128_of (arg e 0) (arg e 1) in
        let b = i128_of (arg e 2) (arg e 3) in
        if I128.equal b I128.zero then Rt_error.division_by_zero ();
        Emu.charge e 60;
        let lo, hi = split128 (I128.div a b) in
        ret2 e lo hi );
    ( "umbra_i128Rem",
      fun e ->
        let a = i128_of (arg e 0) (arg e 1) in
        let b = i128_of (arg e 2) (arg e 3) in
        if I128.equal b I128.zero then Rt_error.division_by_zero ();
        Emu.charge e 60;
        let lo, hi = split128 (I128.rem a b) in
        ret2 e lo hi );
    (* ---- helper-call variants of special instructions (used by the
            Cranelift back-end when the custom CIR instructions of
            Table II are disabled) ---- *)
    ( "umbra_crc32",
      fun e ->
        Emu.charge e 4;
        ret e (Hashes.crc32c (arg e 0) (arg e 1)) );
    ( "umbra_longMulFold",
      fun e ->
        Emu.charge e 6;
        ret e (Hashes.long_mul_fold (arg e 0) (arg e 1)) );
    ( "umbra_mulFull64",
      fun e ->
        Emu.charge e 6;
        let p = I128.umul64_wide (arg e 0) (arg e 1) in
        let lo, hi = split128 p in
        ret2 e lo hi );
    ( "umbra_saddOvf64",
      fun e ->
        Emu.charge e 5;
        let a = arg e 0 and b = arg e 1 in
        let r = Int64.add a b in
        if Int64.compare (Int64.logand (Int64.logxor a (Int64.lognot b)) (Int64.logxor a r)) 0L < 0
        then Rt_error.overflow ();
        ret e r );
    ( "umbra_ssubOvf64",
      fun e ->
        Emu.charge e 5;
        let a = arg e 0 and b = arg e 1 in
        let r = Int64.sub a b in
        if Int64.compare (Int64.logand (Int64.logxor a b) (Int64.logxor a r)) 0L < 0 then
          Rt_error.overflow ();
        ret e r );
    ( "umbra_smulOvf64",
      fun e ->
        Emu.charge e 7;
        let a = arg e 0 and b = arg e 1 in
        let wide = I128.smul64_wide a b in
        let r = Int64.mul a b in
        let hi = I128.to_int64 (I128.shift_right wide 64) in
        if not (Int64.equal hi (Int64.shift_right r 63)) then Rt_error.overflow ();
        ret e r );
    ( "umbra_f2i",
      fun e ->
        Emu.charge e 8;
        ret e (Int64.of_float (Int64.float_of_bits (arg e 0))) );
    ( "umbra_i2f",
      fun e ->
        Emu.charge e 8;
        ret e (Int64.bits_of_float (Int64.to_float (arg e 0))) );
  ]

let create ?(ht_profile = Htable.Tagged) target =
  let fl = functions target ~ht_profile in
  let index = Hashtbl.create 64 in
  List.iteri (fun i (name, _) -> Hashtbl.add index name i) fl;
  {
    index;
    names = Array.of_list (List.map fst fl);
    fns = Array.of_list (List.map snd fl);
  }

(** Install the table into an emulator instance. *)
let install t emu = Emu.set_runtime emu t.fns t.names

let slot t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> invalid_arg ("unknown runtime function " ^ name)

(** Address generated code must call to reach [name]. *)
let addr t name = Emu.runtime_addr (slot t name)
