(** Growable row buffer in VM memory: the materialization target at the end
    of pipelines (temporary buffers, sort inputs, query output).

    Header (32 bytes): [count:u64][capacity:u64][row size:u64][data ptr]. *)

open Qcomp_vm

let header_size = 32

let create mem ~row_size ~capacity_hint =
  let cap = max 16 capacity_hint in
  let buf = Memory.alloc mem ~align:16 header_size in
  let data = Memory.alloc mem ~align:16 (cap * row_size) in
  Memory.store64 mem buf 0L;
  Memory.store64 mem (buf + 8) (Int64.of_int cap);
  Memory.store64 mem (buf + 16) (Int64.of_int row_size);
  Memory.store64 mem (buf + 24) (Int64.of_int data);
  buf

let count mem buf = Int64.to_int (Memory.load64 mem buf)
let capacity mem buf = Int64.to_int (Memory.load64 mem (buf + 8))
let row_size mem buf = Int64.to_int (Memory.load64 mem (buf + 16))
let data_ptr mem buf = Int64.to_int (Memory.load64 mem (buf + 24))

let row mem buf i = data_ptr mem buf + (i * row_size mem buf)

(** Append a row; returns (row address, cycle cost). *)
let append mem buf =
  let cnt = count mem buf in
  let cap = capacity mem buf in
  let rs = row_size mem buf in
  let grow_cost =
    if cnt = cap then begin
      let data = data_ptr mem buf in
      let cap' = 2 * cap in
      let data' = Memory.alloc mem ~align:16 (cap' * rs) in
      Memory.blit mem ~src:data ~dst:data' ~len:(cap * rs);
      Memory.store64 mem (buf + 8) (Int64.of_int cap');
      Memory.store64 mem (buf + 24) (Int64.of_int data');
      cnt / 4
    end
    else 0
  in
  Memory.store64 mem buf (Int64.of_int (cnt + 1));
  (data_ptr mem buf + (cnt * rs), 6 + grow_cost)

(** Append all of [src]'s rows to [dst] (one bulk blit per growth window;
    both buffers must share a row size). Returns cycle cost. *)
let concat_into mem ~dst ~src =
  let n = count mem src in
  let rs = row_size mem dst in
  if row_size mem src <> rs then invalid_arg "Tuplebuf.concat_into";
  let cost = ref 0 in
  for i = 0 to n - 1 do
    let r, c = append mem dst in
    Memory.blit mem ~src:(row mem src i) ~dst:r ~len:rs;
    cost := !cost + c + (rs / 32)
  done;
  !cost

(** Swap-free permutation application for sorting: rebuilds the data array
    in [perm] order. Returns cycle cost. *)
let permute mem buf perm =
  let cnt = count mem buf in
  let rs = row_size mem buf in
  let data = data_ptr mem buf in
  let tmp = Memory.alloc mem ~align:16 (cnt * rs) in
  Array.iteri (fun dst src -> Memory.blit mem ~src:(data + (src * rs)) ~dst:(tmp + (dst * rs)) ~len:rs) perm;
  Memory.blit mem ~src:tmp ~dst:data ~len:(cnt * rs);
  ignore buf;
  2 * cnt * (rs / 8 + 1)
