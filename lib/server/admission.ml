(** Bounded multi-tenant admission queue with fair dequeue.

    One FIFO per tenant behind a single occupancy bound: {!offer} rejects
    (sheds) when the total queued count is at the cap, so a traffic burst
    can never grow the serving queue — and the per-query state behind it —
    without limit. {!take} serves tenants deficit-round-robin; since every
    query costs one admission slot the deficit counters degenerate to
    plain round-robin over the non-empty tenant queues, resuming after the
    last served tenant, so one tenant's burst cannot starve another's
    trickle. Within a tenant, order is FIFO.

    Deliberately {e not} thread-safe: both serving drivers already hold
    their scheduler lock (the pool mutex, or the single-threaded event
    loop) around every queue operation, and keeping the structure pure
    keeps shed decisions deterministic under the discrete-event driver —
    same seed, same arrivals, same sheds. *)

type 'a t = {
  cap : int option;  (** total-occupancy bound; [None] = unbounded *)
  queues : 'a Queue.t array;  (** one FIFO per tenant *)
  mutable len : int;
  mutable peak : int;  (** high-water mark of [len] *)
  mutable cursor : int;  (** next tenant the round-robin scan starts at *)
  mutable sheds : int;
  mutable admitted : int;
}

let create ?cap ~tenants () =
  if tenants < 1 then invalid_arg "Admission.create: tenants must be positive";
  (match cap with
  | Some c when c < 1 -> invalid_arg "Admission.create: cap must be positive"
  | _ -> ());
  {
    cap;
    queues = Array.init tenants (fun _ -> Queue.create ());
    len = 0;
    peak = 0;
    cursor = 0;
    sheds = 0;
    admitted = 0;
  }

let tenant_slot t tenant =
  let n = Array.length t.queues in
  ((tenant mod n) + n) mod n

(** Enqueue for [tenant]; [false] means the queue is at its cap and the
    item was shed (counted). *)
let offer t ~tenant x =
  match t.cap with
  | Some c when t.len >= c ->
      t.sheds <- t.sheds + 1;
      false
  | _ ->
      Queue.push x t.queues.(tenant_slot t tenant);
      t.len <- t.len + 1;
      if t.len > t.peak then t.peak <- t.len;
      t.admitted <- t.admitted + 1;
      true

(** Dequeue the next item round-robin across non-empty tenants, resuming
    after the tenant served last. *)
let take t =
  if t.len = 0 then None
  else begin
    let n = Array.length t.queues in
    let rec go i steps =
      if steps = n then None
      else if Queue.is_empty t.queues.(i) then go ((i + 1) mod n) (steps + 1)
      else begin
        let x = Queue.pop t.queues.(i) in
        t.len <- t.len - 1;
        t.cursor <- (i + 1) mod n;
        Some x
      end
    in
    go t.cursor 0
  end

let length t = t.len
let peak t = t.peak
let sheds t = t.sheds
let admitted t = t.admitted
let tenants t = Array.length t.queues
