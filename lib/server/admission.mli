(** Bounded multi-tenant admission queue with fair (round-robin)
    dequeue and shed accounting.

    Not thread-safe by design: both serving drivers hold their scheduler
    lock around every operation, and a pure structure keeps shed decisions
    deterministic under the discrete-event driver. *)

type 'a t

(** [create ?cap ~tenants ()] — [cap] bounds {e total} occupancy across
    all tenants ([None] = unbounded). Raises [Invalid_argument] unless
    [tenants >= 1] and [cap], when given, is positive. *)
val create : ?cap:int -> tenants:int -> unit -> 'a t

(** Enqueue for [tenant] (hashed into the tenant slots); [false] means
    the queue is at its cap and the item was shed (counted). *)
val offer : 'a t -> tenant:int -> 'a -> bool

(** Dequeue round-robin across non-empty tenant FIFOs, resuming after the
    tenant served last; [None] iff empty. Unit-cost deficit round-robin:
    every query costs one slot, so the deficits degenerate to plain
    round-robin. *)
val take : 'a t -> 'a option

val length : 'a t -> int

(** High-water mark of total occupancy. *)
val peak : 'a t -> int

(** Items rejected by {!offer} because the queue was at its cap. *)
val sheds : 'a t -> int

val admitted : 'a t -> int
val tenants : 'a t -> int
