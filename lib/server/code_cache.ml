(** Compiled-code cache: plan fingerprint -> relocatable compiled artifact.

    Two levels, mirroring how the compilation pipeline splits:

    - a {e plan memo} keyed by [(fingerprint, target)] holding the
      code-generated query ({!Qcomp_codegen.Codegen.compiled}). All
      back-ends compiling the same plan share one codegen result, which is
      what makes hot-swapping tiers possible: every tier's module exposes
      the same function names over the same state layout.
    - an {e LRU module cache} keyed by [(fingerprint, backend, target)]
      holding the back-end's relocatable {!Qcomp_backend.Artifact.t}, its
      lazily linked live module, its code size and its modelled compile
      cost. This is the bounded, evicting level — machine code is the
      expensive artifact.

    With parameterized-plan specialization, the cached unit is a {e shape}:
    a plan whose eligible literals have been replaced by parameter holes
    ({!Qcomp_plan.Paramize}). The artifact is compiled once per shape with
    its holes unbound; every literal variant of the shape is served by a
    cheap bind-link ({!force} with a parameter vector), so the per-query
    cost after the first compile is microseconds regardless of the
    literals. Entries keep a short MRU list of bound instances — repeated
    vectors are exact hits, new vectors shape hits. Instances claimed by an
    in-flight query ({!force} with [~claim:true]) carry a reference count
    and survive the MRU trim until {!release}d, so one query's literal
    churn can never dispose a module another query is executing.

    Since the redesign around artifacts, the cached unit is the
    {e relocatable} output of the back-end; the live module is produced by
    the shared link step ({!Qcomp_backend.Backend.link_artifact}) on first
    use ({!force}). That split is what {!save}/{!load} exploit: a snapshot
    stores artifacts (position-independent, address-free), and a freshly
    started server re-links them lazily against its own [Emu] layout —
    paying microseconds of linking instead of the back-end's compile
    seconds.

    Eviction releases a linked module's code regions back to the
    emulator's region allocator ({!Qcomp_backend.Backend.dispose} →
    {!Qcomp_vm.Emu.release_code}); never-linked snapshot entries own no
    code memory, so evicting them frees nothing and counts nothing.
    Entries still referenced by an in-flight query are {e pinned}: their
    disposal is deferred until the last pin drops, so a query never
    executes freed code.

    The module level is {e hash-sharded}: entries are distributed over
    [shards] independent LRUs (keyed by fingerprint and back-end), each
    behind its own mutex, so worker domains missing on different plans
    never contend on one global cache lock — the contention the serving
    pool measured under load. [shards = 1] (the default, and the only
    configuration the deterministic discrete-event driver uses) behaves
    exactly like the previous single-mutex cache, including snapshot byte
    layout. Stats are aggregated across shards on read.

    Each shard also carries an {e in-flight compile table}: the first
    domain to miss on a key marks it in flight and compiles outside the
    lock; domains racing on the same key wait on the shard's condition
    variable and pick the finished entry up from the LRU instead of
    burning a redundant back-end compile ({!get_or_compile}). Deduped
    waits and actual back-end compiles are counted in {!mem_stats}.

    Lock ordering: shard mutex before the plan-memo mutex before the
    emulator's code-layout lock (disposal from eviction, and lazy linking
    in {!force}, happen with the shard mutex held), never the reverse.
    Compilation itself ({!compile_uncached}) runs with {e no} cache lock
    held so independent plans compile concurrently; only the
    predict-link-register sequence inside serializes on the layout lock. *)

open Qcomp_support
open Qcomp_engine

type key = {
  ck_fp : int64;  (** canonical plan (shape) fingerprint *)
  ck_backend : string;
  ck_target : string;
}

(** One parameter binding of an entry's shape: an immutable linked module
    whose parameter holes hold exactly [b_params]. Entries keep a short
    MRU list of these; a repeated literal vector reuses its instance
    (exact hit), a new vector re-links the artifact (shape hit + bind).
    Instances are immutable by design — patching a shared module's holes
    in place would race with a query mid-execution on the same module,
    even under the sequential driver (execution interleaves at quantum
    boundaries). [b_refs] counts in-flight queries executing this
    instance ({!force} [~claim:true] .. {!release}); the MRU trim skips
    instances with live references. *)
type bound = {
  b_params : Qcomp_backend.Artifact.param_value array;
  b_cm : Qcomp_backend.Backend.compiled_module;
  b_dispose : unit -> unit;
  mutable b_refs : int;
}

type entry = {
  ce_name : string;  (** query name (for re-codegen after a {!load}) *)
  ce_key : key;  (** the entry's home key — locates its shard *)
  ce_plan : Qcomp_plan.Algebra.t;
      (** the {e shape}: for parameterized queries, eligible literals have
          been replaced by [Expr.Param] holes ({!Qcomp_plan.Paramize}) *)
  ce_fp : int64;  (** canonical shape fingerprint (= key's [ck_fp]) *)
  ce_art : Qcomp_backend.Artifact.t option;
      (** relocatable artifact (parameter holes unbound); [None] only for
          back-ends that cannot produce one (interpreter) — those entries
          are never snapshot *)
  ce_backend : Qcomp_backend.Backend.t option;
      (** the compiling back-end, kept so an artifact-less (interpreter)
          entry can re-translate for a fresh parameter vector; [None] for
          snapshot-loaded entries, which always carry an artifact *)
  ce_consts : (string * int * int) list;
      (** (string, SSO struct address, body address or 0) literals the
          code generator baked into the artifact as immediates; {!load}
          re-materializes them at the same addresses *)
  ce_db_fp : int64;  (** {!Engine.layout_fingerprint} at compile time *)
  mutable ce_cq : Qcomp_codegen.Codegen.compiled option;
      (** shape codegen result, shared by every bound instance; re-derived
          through the plan memo on first {!force} after a {!load} *)
  mutable ce_bound : bound list;
      (** linked instances, most recently used first; one per distinct
          parameter vector (a single [[||]]-keyed instance for
          non-parameterized plans) *)
  mutable ce_fresh : bool;
      (** entry was just created by {!compile_uncached} and its initial
          instance not yet claimed — the creator's first {!force} is not a
          parameter-cache hit *)
  ce_compile_s : float;  (** modelled (simulated) compile seconds *)
  ce_code_bytes : int;  (** code bytes of one bound instance *)
  ce_pins : int ref;  (** in-flight queries holding this entry *)
  ce_evicted : bool ref;  (** evicted while pinned; free on last unpin *)
}

(** Parameter-cache counters, reported next to the LRU hit/miss stats.
    Only parameterized lookups (non-empty vectors) count here. *)
type param_stats = {
  ps_shape_hits : int;
      (** {!force} found the shape but not the vector: artifact re-linked
          with fresh holes — the compile was skipped, only a bind paid *)
  ps_exact_hits : int;
      (** {!force} found a live instance for the exact vector: no work *)
  ps_binds : int;  (** parameter bind-links performed (incl. initial) *)
  ps_bind_host_s : float;  (** host seconds spent in bind-links *)
}

(* One hash shard: an independent LRU plus the in-flight compile table,
   all guarded by [sh_mu]. Counters live per shard (mutated under the
   shard mutex) and are summed on read. *)
type shard = {
  sh_mu : Mutex.t;
  sh_cv : Condition.t;  (** signalled when an in-flight compile lands *)
  sh_modules : (key, entry) Lru.t;
  sh_inflight : (key, unit) Hashtbl.t;
  mutable sh_bytes_freed : int;  (** code bytes returned to the allocator *)
  mutable sh_max_entry_bytes : int;  (** largest module ever compiled here *)
  mutable sh_pin_underflows : int;  (** unbalanced unpins caught, ignored *)
  mutable sh_shape_hits : int;
  mutable sh_exact_hits : int;
  mutable sh_binds : int;
  mutable sh_bind_host_s : float;
  mutable sh_compiles : int;  (** back-end compiles actually run *)
  mutable sh_dedup_waits : int;  (** misses served by waiting on another
                                     domain's in-flight compile *)
}

type t = {
  plans_mu : Mutex.t;  (** guards [plans] only *)
  plans : (int64 * string, Qcomp_codegen.Codegen.compiled) Hashtbl.t;
  shards : shard array;
}

(* Deterministic shard pick: fingerprint xor a structural hash of the
   back-end name, so one plan's tiers spread across shards too. *)
let shard_of t (k : key) =
  let n = Array.length t.shards in
  if n = 1 then t.shards.(0)
  else
    let h = Int64.to_int k.ck_fp lxor Hashtbl.hash k.ck_backend in
    t.shards.((h land max_int) mod n)

let shard_of_entry t e = shard_of t e.ce_key

(* Most bound instances a single entry retains. Heavy literal skew (the
   Zipf workloads) concentrates on few vectors, so a short list holds the
   hot ones; the cold tail re-binds in microseconds. *)
let max_bound_instances = 8

(* Callers hold the shard mutex. A never-linked entry owns no code
   regions: freeing it must neither call dispose (there is nothing to
   release) nor count its bytes as freed — that drift is exactly what the
   overflow path of [load] used to get wrong. Each bound instance owns its
   own copy of the code, so each counts separately. *)
let dispose_bound sh b =
  sh.sh_bytes_freed <-
    sh.sh_bytes_freed + b.b_cm.Qcomp_backend.Backend.cm_code_size;
  b.b_dispose ()

let free sh e =
  List.iter (dispose_bound sh) e.ce_bound;
  e.ce_bound <- []

(* Drop instances beyond the retention cap, least recently used first,
   keeping any instance an in-flight query still references
   ([b_refs > 0]) regardless of its position — it is disposed by the
   trim after its {!release} drops the last reference. Every disposal is
   counted in [sh_bytes_freed]. Callers hold the shard mutex. *)
let trim sh e =
  if List.length e.ce_bound > max_bound_instances then begin
    let rec cut n = function
      | [] -> []
      | b :: rest ->
          if n > 0 then b :: cut (n - 1) rest
          else if b.b_refs > 0 then b :: cut 0 rest
          else begin
            dispose_bound sh b;
            cut 0 rest
          end
    in
    e.ce_bound <- cut max_bound_instances e.ce_bound
  end

(* LRU drop: dispose now, or defer until the last in-flight user unpins.
   Runs under the shard mutex (drops only happen inside a locked
   [Lru.add]). *)
let drop sh e = if !(e.ce_pins) > 0 then e.ce_evicted := true else free sh e

let make_shard ~capacity =
  let sh =
    {
      sh_mu = Mutex.create ();
      sh_cv = Condition.create ();
      sh_modules = Lru.create ~capacity;
      sh_inflight = Hashtbl.create 8;
      sh_bytes_freed = 0;
      sh_max_entry_bytes = 0;
      sh_pin_underflows = 0;
      sh_shape_hits = 0;
      sh_exact_hits = 0;
      sh_binds = 0;
      sh_bind_host_s = 0.0;
      sh_compiles = 0;
      sh_dedup_waits = 0;
    }
  in
  Lru.set_on_drop sh.sh_modules (fun e -> drop sh e);
  sh

let create_sharded ~capacity ~shards =
  if shards < 1 then
    invalid_arg "Code_cache.create_sharded: shards must be positive";
  if capacity < 1 then
    invalid_arg "Code_cache.create_sharded: capacity must be positive";
  (* ceil-divide so the aggregate capacity never shrinks below the ask *)
  let per = max 1 ((capacity + shards - 1) / shards) in
  {
    plans_mu = Mutex.create ();
    plans = Hashtbl.create 64;
    shards = Array.init shards (fun _ -> make_shard ~capacity:per);
  }

let create ~capacity = create_sharded ~capacity ~shards:1
let shard_count t = Array.length t.shards

(** Pin [e] against disposal while a query holds it. Every pin must be
    matched by an {!unpin} when the query finishes. *)
let pin t e =
  let sh = shard_of_entry t e in
  Mutex.protect sh.sh_mu (fun () -> incr e.ce_pins)

(** Drop one pin. An unpin without a matching pin is a caller bug that used
    to drive the count negative (and could later double-dispose a module a
    query was still running); it is now clamped at zero, counted in
    [ms_pin_underflows] and logged on first occurrence. *)
let unpin t e =
  let sh = shard_of_entry t e in
  Mutex.protect sh.sh_mu (fun () ->
      if !(e.ce_pins) <= 0 then begin
        sh.sh_pin_underflows <- sh.sh_pin_underflows + 1;
        if sh.sh_pin_underflows = 1 then
          Printf.eprintf
            "code_cache: unpin without matching pin (clamped at zero)\n%!"
      end
      else begin
        decr e.ce_pins;
        if !(e.ce_pins) = 0 then
          if !(e.ce_evicted) then begin
            e.ce_evicted := false;
            free sh e
          end
          else trim sh e
      end)

let key db ~backend plan =
  {
    ck_fp = Fingerprint.plan plan;
    ck_backend = Qcomp_backend.Backend.name backend;
    ck_target = db.Engine.target.Qcomp_vm.Target.name;
  }

(** Codegen once per (fingerprint, target); the memo is unbounded because
    codegen results are small compared to machine code. Atomic: concurrent
    callers for the same fingerprint get the {e same} codegen result, which
    the tier hot-swap relies on (one state layout per plan). Guarded by its
    own mutex (nested inside a shard mutex when called from {!force}). *)
let plan_ir t db ~fp ~name plan =
  Mutex.protect t.plans_mu (fun () ->
      let pk = (fp, db.Engine.target.Qcomp_vm.Target.name) in
      match Hashtbl.find_opt t.plans pk with
      | Some cq -> cq
      | None ->
          let cq = Engine.plan_to_ir db ~name plan in
          Hashtbl.replace t.plans pk cq;
          cq)

(** The live (codegen result, linked module, fresh-bind) triple for [e]
    under the parameter vector [params], linking the artifact against
    [db]'s layout as needed.

    - An instance already bound to exactly [params] is reused (an {e exact
      hit} — zero work, the caller charges nothing).
    - Otherwise the shape's artifact is re-linked with [params] patched
      into its holes (a {e shape hit} — the caller charges
      {!Costmodel.bind_seconds}, not the back-end compile), or, for
      artifact-less interpreter entries, the bytecode is re-translated with
      the constants inlined (same order of cost).
    - For entries {!load}ed from a snapshot the first call additionally
      re-runs codegen through the shared plan memo — never the back-end
      compile.

    [~claim:true] additionally takes a reference on the returned instance:
    it survives the MRU-overflow trim until the matching {!release}, so
    other queries churning fresh vectors on the same entry can never
    dispose a module this query is executing. The serving drivers claim
    every instance they run or park for a hot-swap.

    The returned [bool] is true when a fresh bind-link was paid. *)
let force t db ?(params = ([||] : Qcomp_backend.Artifact.param_value array))
    ?(claim = false) e =
  (* A holeless entry (a whole-plan compile some rung fell back to, with
     every literal baked) ignores the caller's vector: there is nothing to
     bind, and linking it is the pre-parameterization lazy link, not a
     parameter-cache event. *)
  let params =
    match e.ce_art with
    | Some art
      when Array.length art.Qcomp_backend.Artifact.a_params = 0
           && Array.length params > 0 ->
        [||]
    | _ -> params
  in
  let sh = shard_of_entry t e in
  Mutex.protect sh.sh_mu (fun () ->
      let cq =
        match e.ce_cq with
        | Some cq -> cq
        | None ->
            let cq = plan_ir t db ~fp:e.ce_fp ~name:e.ce_name e.ce_plan in
            e.ce_cq <- Some cq;
            cq
      in
      let parameterized = Array.length params > 0 in
      match List.find_opt (fun b -> b.b_params = params) e.ce_bound with
      | Some b ->
          (* MRU promotion keeps the executing instance at the head *)
          e.ce_bound <- b :: List.filter (fun x -> x != b) e.ce_bound;
          if claim then b.b_refs <- b.b_refs + 1;
          if parameterized then
            if e.ce_fresh then e.ce_fresh <- false
            else sh.sh_exact_hits <- sh.sh_exact_hits + 1;
          (cq, b.b_cm, false)
      | None ->
          let timing = Timing.create ~enabled:false () in
          let t0 = Timing.now () in
          let cm =
            match e.ce_art with
            | Some art ->
                Qcomp_backend.Backend.link_artifact ~params ~timing
                  ~emu:db.Engine.emu ~registry:db.Engine.registry
                  ~unwind:db.Engine.unwind art
            | None -> (
                match e.ce_backend with
                | Some backend ->
                    Qcomp_backend.Backend.compile_module backend ~params
                      ~timing ~emu:db.Engine.emu ~registry:db.Engine.registry
                      ~unwind:db.Engine.unwind
                      cq.Qcomp_codegen.Codegen.modul
                | None ->
                    invalid_arg
                      "Code_cache.force: entry has neither artifact nor \
                       back-end")
          in
          e.ce_bound <-
            {
              b_params = params;
              b_cm = cm;
              b_dispose = (fun () -> Engine.dispose_module db cm);
              b_refs = (if claim then 1 else 0);
            }
            :: e.ce_bound;
          e.ce_fresh <- false;
          if parameterized then begin
            sh.sh_shape_hits <- sh.sh_shape_hits + 1;
            sh.sh_binds <- sh.sh_binds + 1;
            sh.sh_bind_host_s <- sh.sh_bind_host_s +. (Timing.now () -. t0)
          end;
          (* overflow disposes only unreferenced instances; anything a
             query claimed survives until its release *)
          trim sh e;
          (cq, cm, true))

(** Drop the reference [force ~claim:true] took on the instance whose
    module is [cm], then re-apply the MRU-overflow trim — the point where
    an instance that outlived the cap only because a query was executing
    it is finally disposed (and counted in [ms_bytes_freed]). A module
    already disposed with its evicted entry is ignored. *)
let release t e cm =
  let sh = shard_of_entry t e in
  Mutex.protect sh.sh_mu (fun () ->
      match List.find_opt (fun b -> b.b_cm == cm) e.ce_bound with
      | Some b ->
          if b.b_refs > 0 then b.b_refs <- b.b_refs - 1;
          trim sh e
      | None -> ())

let find t k =
  let sh = shard_of t k in
  Mutex.protect sh.sh_mu (fun () -> Lru.find sh.sh_modules k)

(** Lookup that touches neither recency nor the hit/miss counters — for
    policies whose semantics say "no cache" (Static charges the full
    modelled compile every time, so a hit would be a lie in the printed
    hit-rate) and for the tier controller probing whether a stronger
    module is already resident without skewing the serving stats. *)
let find_nostat t k =
  let sh = shard_of t k in
  Mutex.protect sh.sh_mu (fun () -> Lru.peek sh.sh_modules k)

(* String literals the code generator baked into this plan's code, with
   the linear-memory addresses codegen allocated for them. Long strings
   also record the out-of-line body address. *)
let capture_consts db (cq : Qcomp_codegen.Codegen.compiled) =
  let mem = Engine.memory db in
  List.map
    (fun (s, addr) ->
      let body =
        if String.length s > Qcomp_runtime.Sso.inline_max then
          Int64.to_int (Qcomp_vm.Memory.load64 mem (addr + 8))
        else 0
      in
      (s, addr, body))
    cq.Qcomp_codegen.Codegen.const_strs

(** Compile without touching the LRU: a background compilation must not
    become visible to other queries before the scheduler says its
    (simulated) compile time has elapsed — the caller {!insert}s the entry
    at the completion event. No cache lock is held during back-end
    compilation, so independent plans compile concurrently on different
    domains; only the short predict-link-register window inside each
    back-end (and every code-registration/disposal) serializes on the
    layout lock.

    When the back-end supports relocatable output the artifact is compiled
    once and linked through the shared {!Backend.link_artifact} step; the
    artifact is retained on the entry so {!save} can snapshot it.

    For a parameterized shape, [params] is the triggering query's literal
    vector: the artifact itself stays unbound (holes open), and the entry
    is born with one bound instance for that vector. *)
let compile_uncached t db ~backend
    ?(params = ([||] : Qcomp_backend.Artifact.param_value array)) ~name plan =
  let k = key db ~backend plan in
  let cq = plan_ir t db ~fp:k.ck_fp ~name plan in
  let modul = cq.Qcomp_codegen.Codegen.modul in
  let timing = Timing.create ~enabled:false () in
  let art, cm =
    match Qcomp_backend.Backend.compile_artifact backend with
    | Some compile ->
        let art =
          compile ~timing ~target:db.Engine.target ~registry:db.Engine.registry
            modul
        in
        ( Some art,
          Qcomp_backend.Backend.link_artifact ~params ~timing
            ~emu:db.Engine.emu ~registry:db.Engine.registry
            ~unwind:db.Engine.unwind art )
    | None ->
        ( None,
          Qcomp_backend.Backend.compile_module backend ~params ~timing
            ~emu:db.Engine.emu ~registry:db.Engine.registry
            ~unwind:db.Engine.unwind modul )
  in
  let bytes = cm.Qcomp_backend.Backend.cm_code_size in
  let sh = shard_of t k in
  Mutex.protect sh.sh_mu (fun () ->
      if bytes > sh.sh_max_entry_bytes then sh.sh_max_entry_bytes <- bytes;
      sh.sh_compiles <- sh.sh_compiles + 1;
      if Array.length params > 0 then sh.sh_binds <- sh.sh_binds + 1);
  {
    ce_name = name;
    ce_key = k;
    ce_plan = plan;
    ce_fp = k.ck_fp;
    ce_art = art;
    ce_backend = Some backend;
    ce_consts = capture_consts db cq;
    ce_db_fp = Engine.layout_fingerprint db;
    ce_cq = Some cq;
    ce_bound =
      [
        {
          b_params = params;
          b_cm = cm;
          b_dispose = (fun () -> Engine.dispose_module db cm);
          b_refs = 0;
        };
      ];
    ce_fresh = true;
    ce_compile_s = Costmodel.compile_seconds ~backend:k.ck_backend modul;
    ce_code_bytes = bytes;
    ce_pins = ref 0;
    ce_evicted = ref false;
  }

let insert t k e =
  let sh = shard_of t k in
  Mutex.protect sh.sh_mu (fun () ->
      Lru.add sh.sh_modules k ~weight:e.ce_code_bytes e)

(** [get_or_compile t db ~backend ~name plan] is [(entry, hit)]: the cached
    module for the plan under [backend], compiling (and inserting) on miss.
    The returned [ce_compile_s] is the modelled cost — on a hit the caller
    decides whether to charge it (a serving system does not).

    Concurrent misses on one key are deduplicated through the shard's
    in-flight table: the first domain marks the key in flight and compiles
    outside the lock; racers wait on the shard's condition variable and
    pick the finished entry up from the LRU (counted in
    [ms_dedup_waits]) — the redundant back-end compile the old
    compile-then-lose-the-insert race paid is gone, and with it the
    disposal drift on the loser's instances.

    [~stats:false] keeps the lookup out of the hit/miss counters (Static
    mode's semantics are "no cache"). [~pin:true] pins the entry in the
    same critical section as the lookup/insert, so an eviction in the
    return window can never free it before the caller runs it. *)
let get_or_compile t db ~backend ?params ?(stats = true) ?(pin = false) ~name
    plan =
  let k = key db ~backend plan in
  let sh = shard_of t k in
  let lookup () =
    if stats then Lru.find sh.sh_modules k else Lru.peek sh.sh_modules k
  in
  Mutex.lock sh.sh_mu;
  let waited = ref false in
  let rec loop () =
    match lookup () with
    | Some e ->
        if pin then incr e.ce_pins;
        Mutex.unlock sh.sh_mu;
        (e, true)
    | None ->
        if Hashtbl.mem sh.sh_inflight k then begin
          if not !waited then begin
            sh.sh_dedup_waits <- sh.sh_dedup_waits + 1;
            waited := true
          end;
          Condition.wait sh.sh_cv sh.sh_mu;
          loop ()
        end
        else begin
          Hashtbl.replace sh.sh_inflight k ();
          Mutex.unlock sh.sh_mu;
          let e =
            try compile_uncached t db ~backend ?params ~name plan
            with exn ->
              Mutex.lock sh.sh_mu;
              Hashtbl.remove sh.sh_inflight k;
              Condition.broadcast sh.sh_cv;
              Mutex.unlock sh.sh_mu;
              raise exn
          in
          Mutex.lock sh.sh_mu;
          if pin then incr e.ce_pins;
          Lru.add sh.sh_modules k ~weight:e.ce_code_bytes e;
          Hashtbl.remove sh.sh_inflight k;
          Condition.broadcast sh.sh_cv;
          Mutex.unlock sh.sh_mu;
          (e, false)
        end
  in
  loop ()

let fold_shards t init f =
  Array.fold_left (fun acc sh -> Mutex.protect sh.sh_mu (fun () -> f acc sh)) init t.shards

let stats t =
  fold_shards t
    {
      Lru.hits = 0;
      misses = 0;
      evictions = 0;
      entries = 0;
      bytes = 0;
      bytes_evicted = 0;
    }
    (fun acc sh ->
      let s = Lru.stats sh.sh_modules in
      {
        Lru.hits = acc.Lru.hits + s.Lru.hits;
        misses = acc.Lru.misses + s.Lru.misses;
        evictions = acc.Lru.evictions + s.Lru.evictions;
        entries = acc.Lru.entries + s.Lru.entries;
        bytes = acc.Lru.bytes + s.Lru.bytes;
        bytes_evicted = acc.Lru.bytes_evicted + s.Lru.bytes_evicted;
      })

let param_stats t =
  fold_shards t
    { ps_shape_hits = 0; ps_exact_hits = 0; ps_binds = 0; ps_bind_host_s = 0.0 }
    (fun acc sh ->
      {
        ps_shape_hits = acc.ps_shape_hits + sh.sh_shape_hits;
        ps_exact_hits = acc.ps_exact_hits + sh.sh_exact_hits;
        ps_binds = acc.ps_binds + sh.sh_binds;
        ps_bind_host_s = acc.ps_bind_host_s +. sh.sh_bind_host_s;
      })

(** Sum of pins across live entries — zero when the server has quiesced. *)
let live_pins t =
  fold_shards t 0 (fun acc sh ->
      let n = ref acc in
      Lru.iter sh.sh_modules (fun e -> n := !n + !(e.ce_pins));
      !n)

type mem_stats = {
  ms_bytes_freed : int;  (** code bytes returned to the region allocator *)
  ms_max_entry_bytes : int;  (** largest single module compiled here *)
  ms_pin_underflows : int;  (** unbalanced unpins caught and clamped *)
  ms_backend_compiles : int;  (** back-end compiles actually run *)
  ms_dedup_waits : int;
      (** misses served by waiting on another domain's in-flight compile
          instead of compiling redundantly *)
}

let mem_stats t =
  fold_shards t
    {
      ms_bytes_freed = 0;
      ms_max_entry_bytes = 0;
      ms_pin_underflows = 0;
      ms_backend_compiles = 0;
      ms_dedup_waits = 0;
    }
    (fun acc sh ->
      {
        ms_bytes_freed = acc.ms_bytes_freed + sh.sh_bytes_freed;
        ms_max_entry_bytes = max acc.ms_max_entry_bytes sh.sh_max_entry_bytes;
        ms_pin_underflows = acc.ms_pin_underflows + sh.sh_pin_underflows;
        ms_backend_compiles = acc.ms_backend_compiles + sh.sh_compiles;
        ms_dedup_waits = acc.ms_dedup_waits + sh.sh_dedup_waits;
      })

let pp_stats fmt t =
  let s = stats t in
  let ms = mem_stats t in
  Format.fprintf fmt
    "hits %d  misses %d  hit-rate %.1f%%  entries %d  evictions %d  bytes %d  bytes-freed %d"
    s.Lru.hits s.Lru.misses
    (if s.Lru.hits + s.Lru.misses > 0 then
       100.0 *. float_of_int s.Lru.hits /. float_of_int (s.Lru.hits + s.Lru.misses)
     else 0.0)
    s.Lru.entries s.Lru.evictions s.Lru.bytes ms.ms_bytes_freed;
  if shard_count t > 1 || ms.ms_dedup_waits > 0 then
    Format.fprintf fmt "  shards %d  compiles %d  dedup-waits %d"
      (shard_count t) ms.ms_backend_compiles ms.ms_dedup_waits;
  let p = param_stats t in
  if p.ps_binds + p.ps_shape_hits + p.ps_exact_hits > 0 then
    Format.fprintf fmt
      "  param: shape-hits %d  exact-hits %d  binds %d  bind-time %.6fs"
      p.ps_shape_hits p.ps_exact_hits p.ps_binds p.ps_bind_host_s

(* ---------------- persistent snapshots ---------------- *)

(* Snapshot file, format version = Artifact.format_version:

     "QCSS" | u32 version | str target | u32 record count
            | u32 payload length | payload | i64 crc32c(payload)

   and each payload record:

     i64 key_v | i64 plan fingerprint | str backend | str name
     | i64 compile-seconds bits | i64 code bytes | i64 db layout fp
     | str plan (Wire codec) | u32 const count
     | { str s, i64 struct addr, i64 body addr } * | str artifact

   Records are written LRU-first so a load into any capacity re-creates
   the same recency order and overflow evicts the coldest entries. A
   sharded cache writes its shards in index order, each coldest-first —
   recency is preserved per shard (and exactly overall for the
   single-shard layout every deterministic run uses). Everything
   malformed — bad magic, other version, other target, length mismatch,
   checksum mismatch, key mismatch, layout mismatch, artifact corruption —
   raises [Invalid_argument]; a snapshot is either loaded exactly or not
   at all. *)

let snap_magic = "QCSS"

(* Back-end code-layout generation folded into each record's key. The
   stencil back-end's output is a function of its stencil library, so a
   library bump must invalidate old snapshots (a record patched from set N
   must never be re-linked by a process with set N+1); other back-ends are
   self-contained and stay at 0, leaving their keys unchanged. *)
let backend_code_version = function
  | "stencil" -> Qcomp_stencil.Stencil.library_version
  | _ -> 0

let crc_string s =
  let h = ref 0xC5_C5_C5L in
  String.iter (fun c -> h := Hashes.crc32c_byte !h (Char.code c)) s;
  !h

let add_str buf s =
  Buffer.add_int32_le buf (Int32.of_int (String.length s));
  Buffer.add_string buf s

(** Snapshot every artifact-bearing entry to [file] (atomically: written
    to a temp file and renamed). Entries whose back-end produced no
    relocatable artifact (the interpreter) are skipped — their modelled
    compile cost is microseconds, there is nothing worth persisting. *)
let save t file =
  let records =
    List.concat_map
      (fun sh ->
        Mutex.protect sh.sh_mu (fun () ->
            (* LRU-first: keys_mru is most-recent-first *)
            List.rev
              (List.filter_map
                 (fun k ->
                   match Lru.peek sh.sh_modules k with
                   | Some e when e.ce_art <> None -> Some (k, e)
                   | _ -> None)
                 (Lru.keys_mru sh.sh_modules))))
      (Array.to_list t.shards)
  in
  let payload = Buffer.create 65536 in
  let target = ref "" in
  List.iter
    (fun (k, e) ->
      target := k.ck_target;
      let art = Option.get e.ce_art in
      Buffer.add_int64_le payload
        (Fingerprint.key_v
           ~backend_version:(backend_code_version k.ck_backend)
           ~param_version:Qcomp_plan.Paramize.format_version
           ~version:Qcomp_backend.Artifact.format_version
           ~backend:k.ck_backend ~target:k.ck_target e.ce_plan);
      Buffer.add_int64_le payload e.ce_fp;
      add_str payload k.ck_backend;
      add_str payload e.ce_name;
      Buffer.add_int64_le payload (Int64.bits_of_float e.ce_compile_s);
      Buffer.add_int64_le payload (Int64.of_int e.ce_code_bytes);
      Buffer.add_int64_le payload e.ce_db_fp;
      add_str payload (Qcomp_plan.Wire.to_string e.ce_plan);
      Buffer.add_int32_le payload (Int32.of_int (List.length e.ce_consts));
      List.iter
        (fun (s, addr, body) ->
          add_str payload s;
          Buffer.add_int64_le payload (Int64.of_int addr);
          Buffer.add_int64_le payload (Int64.of_int body))
        e.ce_consts;
      add_str payload (Qcomp_backend.Artifact.serialize art))
    records;
  let payload = Buffer.contents payload in
  let buf = Buffer.create (String.length payload + 64) in
  Buffer.add_string buf snap_magic;
  Buffer.add_int32_le buf (Int32.of_int Qcomp_backend.Artifact.format_version);
  add_str buf !target;
  Buffer.add_int32_le buf (Int32.of_int (List.length records));
  Buffer.add_int32_le buf (Int32.of_int (String.length payload));
  Buffer.add_string buf payload;
  Buffer.add_int64_le buf (crc_string payload);
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  Buffer.output_buffer oc buf;
  close_out oc;
  Sys.rename tmp file

let corrupt what = invalid_arg ("Code_cache.load: " ^ what)

(** Re-materialize a snapshot's baked string literals at their original
    addresses: the artifacts carry those addresses as immediates, so the
    bytes must exist before any snapshot module runs. Claims go through
    {!Memory.claim}, which pins the spans above the current break — the
    reason loads must happen on a freshly built database (same
    deterministic [make_db], no queries served yet). The same struct may
    be named by several records (tiers share one codegen result); claims
    are deduplicated, and a conflicting duplicate is corruption. *)
let materialize_consts db claimed consts =
  let mem = Engine.memory db in
  List.iter
    (fun (s, addr, body) ->
      match Hashtbl.find_opt claimed addr with
      | Some s' ->
          if not (String.equal s s') then
            corrupt "two string constants claim one address"
      | None ->
          Qcomp_vm.Memory.claim mem ~addr ~size:Qcomp_runtime.Sso.struct_size
            ~align:16;
          let n = String.length s in
          Qcomp_vm.Memory.store mem ~addr ~size:4 (Int64.of_int n);
          if n <= Qcomp_runtime.Sso.inline_max then
            Qcomp_vm.Memory.store_bytes mem (addr + 4) s
          else begin
            if body = 0 then corrupt "long string constant without a body";
            Qcomp_vm.Memory.claim mem ~addr:body ~size:n ~align:8;
            Qcomp_vm.Memory.store_bytes mem body s;
            Qcomp_vm.Memory.store_bytes mem (addr + 4) (String.sub s 0 4);
            Qcomp_vm.Memory.store64 mem (addr + 8) (Int64.of_int body)
          end;
          Hashtbl.add claimed addr s)
    consts

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> corrupt e
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s

(** Load a snapshot written by {!save} into a fresh cache of [capacity]
    entries over [shards] hash shards (default 1). [db] must be the same
    deterministic database build the snapshot was taken against (checked
    via {!Engine.layout_fingerprint}) on the same target with the same
    runtime registry (checked per record and again by the linker). Entries
    are inserted coldest-first and {e unlinked}: the first cache hit pays
    the re-link, so loading is cheap even for snapshots far larger than
    [capacity] — the overflow simply evicts the coldest records with zero
    pins and zero spurious byte accounting. All corruption and
    version/layout mismatches raise [Invalid_argument]. *)
let load ~capacity ?(shards = 1) ~db file =
  let s = read_file file in
  let len = String.length s in
  let pos = ref 0 in
  let need n = if n < 0 || !pos + n > len then corrupt "truncated" in
  let u32 () =
    need 4;
    let v = Int32.to_int (String.get_int32_le s !pos) in
    pos := !pos + 4;
    if v < 0 then corrupt "negative length";
    v
  in
  let i64 () =
    need 8;
    let v = String.get_int64_le s !pos in
    pos := !pos + 8;
    v
  in
  let str () =
    let n = u32 () in
    need n;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  need 4;
  if not (String.equal (String.sub s 0 4) snap_magic) then corrupt "bad magic";
  pos := 4;
  let version = u32 () in
  if version <> Qcomp_backend.Artifact.format_version then
    corrupt
      (Printf.sprintf
         "snapshot format version %d, this build reads %d — recompile the \
          snapshot"
         version Qcomp_backend.Artifact.format_version);
  let target = str () in
  let live_target = db.Engine.target.Qcomp_vm.Target.name in
  if not (String.equal target live_target) then
    corrupt
      (Printf.sprintf "snapshot targets %s, this machine is %s" target
         live_target);
  let count = u32 () in
  let payload_len = u32 () in
  need (payload_len + 8);
  let payload = String.sub s !pos payload_len in
  pos := !pos + payload_len;
  let crc = i64 () in
  if !pos <> len then corrupt "trailing bytes";
  if not (Int64.equal crc (crc_string payload)) then
    corrupt "checksum mismatch";
  (* fresh cursor over the verified payload *)
  let pos = ref 0 in
  let need n = if n < 0 || !pos + n > payload_len then corrupt "truncated" in
  let u32 () =
    need 4;
    let v = Int32.to_int (String.get_int32_le payload !pos) in
    pos := !pos + 4;
    if v < 0 then corrupt "negative length";
    v
  in
  let i64 () =
    need 8;
    let v = String.get_int64_le payload !pos in
    pos := !pos + 8;
    v
  in
  let str () =
    let n = u32 () in
    need n;
    let v = String.sub payload !pos n in
    pos := !pos + n;
    v
  in
  let t = create_sharded ~capacity ~shards in
  let db_fp = Engine.layout_fingerprint db in
  let claimed = Hashtbl.create 32 in
  for _ = 1 to count do
    let kv = i64 () in
    let fp = i64 () in
    let backend = str () in
    let name = str () in
    let compile_s = Int64.float_of_bits (i64 ()) in
    let code_bytes = Int64.to_int (i64 ()) in
    let rec_db_fp = i64 () in
    let plan = Qcomp_plan.Wire.of_string (str ()) in
    let nconsts = u32 () in
    let consts =
      List.init nconsts (fun _ ->
          let cs = str () in
          let addr = Int64.to_int (i64 ()) in
          let body = Int64.to_int (i64 ()) in
          (cs, addr, body))
    in
    let art = Qcomp_backend.Artifact.deserialize (str ()) in
    (* the versioned key must reproduce from the decoded plan: any drift
       in format version, backend, target or plan encoding is structural
       corruption, not something to link anyway *)
    if
      not
        (Int64.equal kv
           (Fingerprint.key_v
              ~backend_version:(backend_code_version backend)
              ~param_version:Qcomp_plan.Paramize.format_version ~version
              ~backend ~target:live_target plan))
    then corrupt ("stale or corrupt record for query " ^ name);
    if not (Int64.equal fp (Fingerprint.plan plan)) then
      corrupt ("plan fingerprint mismatch for query " ^ name);
    if
      not
        (String.equal art.Qcomp_backend.Artifact.a_backend backend
        && String.equal art.Qcomp_backend.Artifact.a_target live_target)
    then corrupt ("artifact provenance mismatch for query " ^ name);
    if not (Int64.equal rec_db_fp db_fp) then
      corrupt
        (Printf.sprintf
           "database layout changed since the snapshot (query %s): %Lx vs %Lx"
           name rec_db_fp db_fp);
    if code_bytes < 0 then corrupt "negative code size";
    materialize_consts db claimed consts;
    let k = { ck_fp = fp; ck_backend = backend; ck_target = live_target } in
    let e =
      {
        ce_name = name;
        ce_key = k;
        ce_plan = plan;
        ce_fp = fp;
        ce_art = Some art;
        ce_backend = None;
        ce_consts = consts;
        ce_db_fp = rec_db_fp;
        ce_cq = None;
        ce_bound = [];
        ce_fresh = false;
        ce_compile_s = compile_s;
        ce_code_bytes = code_bytes;
        ce_pins = ref 0;
        ce_evicted = ref false;
      }
    in
    insert t k e
  done;
  if !pos <> payload_len then corrupt "trailing bytes";
  t
