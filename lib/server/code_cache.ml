(** Compiled-code cache: plan fingerprint -> back-end compiled module.

    Two levels, mirroring how the compilation pipeline splits:

    - a {e plan memo} keyed by [(fingerprint, target)] holding the
      code-generated query ({!Qcomp_codegen.Codegen.compiled}). All
      back-ends compiling the same plan share one codegen result, which is
      what makes hot-swapping tiers possible: every tier's module exposes
      the same function names over the same state layout.
    - an {e LRU module cache} keyed by [(fingerprint, backend, target)]
      holding the back-end's compiled module, its code size, and its
      modelled compile cost. This is the bounded, evicting level — machine
      code is the expensive artifact.

    Eviction releases the module's code regions back to the emulator's
    region allocator ({!Qcomp_backend.Backend.dispose} →
    {!Qcomp_vm.Emu.release_code}), so evicted code memory is actually
    reclaimed and recycled. Entries still referenced by an in-flight query
    are {e pinned}: their disposal is deferred until the last pin drops, so
    a query never executes freed code. [bytes_freed] counts what has been
    returned to the allocator; [Lru.bytes_evicted] remains the gross weight
    that left the LRU. *)

open Qcomp_engine

type key = {
  ck_fp : int64;  (** canonical plan fingerprint *)
  ck_backend : string;
  ck_target : string;
}

type entry = {
  ce_cq : Qcomp_codegen.Codegen.compiled;
  ce_cm : Qcomp_backend.Backend.compiled_module;
  ce_compile_s : float;  (** modelled (simulated) compile seconds *)
  ce_code_bytes : int;
  ce_dispose : unit -> unit;  (** release the module's code regions *)
  ce_pins : int ref;  (** in-flight queries holding this entry *)
  ce_evicted : bool ref;  (** evicted while pinned; free on last unpin *)
}

type t = {
  plans : (int64 * string, Qcomp_codegen.Codegen.compiled) Hashtbl.t;
  modules : (key, entry) Lru.t;
  mutable bytes_freed : int;  (** code bytes returned to the allocator *)
  mutable max_entry_bytes : int;  (** largest module ever compiled here *)
}

let free t e =
  t.bytes_freed <- t.bytes_freed + e.ce_code_bytes;
  e.ce_dispose ()

(* LRU drop: dispose now, or defer until the last in-flight user unpins. *)
let drop t e = if !(e.ce_pins) > 0 then e.ce_evicted := true else free t e

let create ~capacity =
  let t =
    {
      plans = Hashtbl.create 64;
      modules = Lru.create ~capacity;
      bytes_freed = 0;
      max_entry_bytes = 0;
    }
  in
  Lru.set_on_drop t.modules (fun e -> drop t e);
  t

(** Pin [e] against disposal while a query holds it. Every pin must be
    matched by an {!unpin} when the query finishes. *)
let pin e = incr e.ce_pins

let unpin t e =
  decr e.ce_pins;
  if !(e.ce_pins) <= 0 && !(e.ce_evicted) then begin
    e.ce_evicted := false;
    free t e
  end

let key db ~backend plan =
  {
    ck_fp = Fingerprint.plan plan;
    ck_backend = Qcomp_backend.Backend.name backend;
    ck_target = db.Engine.target.Qcomp_vm.Target.name;
  }

(** Codegen once per (fingerprint, target); the memo is unbounded because
    codegen results are small compared to machine code. *)
let plan_ir t db ~fp ~name plan =
  let pk = (fp, db.Engine.target.Qcomp_vm.Target.name) in
  match Hashtbl.find_opt t.plans pk with
  | Some cq -> cq
  | None ->
      let cq = Engine.plan_to_ir db ~name plan in
      Hashtbl.replace t.plans pk cq;
      cq

let find t k = Lru.find t.modules k

(** Compile without touching the LRU: a background compilation must not
    become visible to other queries before the scheduler says its
    (simulated) compile time has elapsed — the caller {!insert}s the entry
    at the completion event. *)
let compile_uncached t db ~backend ~name plan =
  let k = key db ~backend plan in
  let cq = plan_ir t db ~fp:k.ck_fp ~name plan in
  let modul = cq.Qcomp_codegen.Codegen.modul in
  let timing = Qcomp_support.Timing.create ~enabled:false () in
  let cm =
    Qcomp_backend.Backend.compile_module backend ~timing ~emu:db.Engine.emu
      ~registry:db.Engine.registry ~unwind:db.Engine.unwind modul
  in
  let bytes = cm.Qcomp_backend.Backend.cm_code_size in
  if bytes > t.max_entry_bytes then t.max_entry_bytes <- bytes;
  {
    ce_cq = cq;
    ce_cm = cm;
    ce_compile_s = Costmodel.compile_seconds ~backend:k.ck_backend modul;
    ce_code_bytes = bytes;
    ce_dispose = (fun () -> Engine.dispose_module db cm);
    ce_pins = ref 0;
    ce_evicted = ref false;
  }

let insert t k e = Lru.add t.modules k ~weight:e.ce_code_bytes e

(** [get_or_compile t db ~backend ~name plan] is [(entry, hit)]: the cached
    module for the plan under [backend], compiling (and inserting) on miss.
    The returned [ce_compile_s] is the modelled cost — on a hit the caller
    decides whether to charge it (a serving system does not). *)
let get_or_compile t db ~backend ~name plan =
  let k = key db ~backend plan in
  match Lru.find t.modules k with
  | Some e -> (e, true)
  | None ->
      let e = compile_uncached t db ~backend ~name plan in
      insert t k e;
      (e, false)

let stats t = Lru.stats t.modules

type mem_stats = {
  ms_bytes_freed : int;  (** code bytes returned to the region allocator *)
  ms_max_entry_bytes : int;  (** largest single module compiled here *)
}

let mem_stats t =
  { ms_bytes_freed = t.bytes_freed; ms_max_entry_bytes = t.max_entry_bytes }

let pp_stats fmt t =
  let s = Lru.stats t.modules in
  Format.fprintf fmt
    "hits %d  misses %d  hit-rate %.1f%%  entries %d  evictions %d  bytes %d  bytes-freed %d"
    s.Lru.hits s.Lru.misses
    (if s.Lru.hits + s.Lru.misses > 0 then
       100.0 *. float_of_int s.Lru.hits /. float_of_int (s.Lru.hits + s.Lru.misses)
     else 0.0)
    s.Lru.entries s.Lru.evictions s.Lru.bytes t.bytes_freed
