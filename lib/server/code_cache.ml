(** Compiled-code cache: plan fingerprint -> back-end compiled module.

    Two levels, mirroring how the compilation pipeline splits:

    - a {e plan memo} keyed by [(fingerprint, target)] holding the
      code-generated query ({!Qcomp_codegen.Codegen.compiled}). All
      back-ends compiling the same plan share one codegen result, which is
      what makes hot-swapping tiers possible: every tier's module exposes
      the same function names over the same state layout.
    - an {e LRU module cache} keyed by [(fingerprint, backend, target)]
      holding the back-end's compiled module, its code size, and its
      modelled compile cost. This is the bounded, evicting level — machine
      code is the expensive artifact.

    Eviction releases the module's code regions back to the emulator's
    region allocator ({!Qcomp_backend.Backend.dispose} →
    {!Qcomp_vm.Emu.release_code}), so evicted code memory is actually
    reclaimed and recycled. Entries still referenced by an in-flight query
    are {e pinned}: their disposal is deferred until the last pin drops, so
    a query never executes freed code. [bytes_freed] counts what has been
    returned to the allocator; [Lru.bytes_evicted] remains the gross weight
    that left the LRU.

    Every cache operation is serialized by one internal mutex, so the
    parallel serving pool can share a cache across worker domains. Lock
    ordering: the cache mutex is taken before the emulator's code-layout
    lock (disposal from eviction happens with the cache mutex held), never
    after it. Compilation itself ({!compile_uncached}) runs {e without} the
    cache mutex so independent plans compile concurrently; only the
    predict-link-register sequence inside serializes on the layout lock. *)

open Qcomp_engine

type key = {
  ck_fp : int64;  (** canonical plan fingerprint *)
  ck_backend : string;
  ck_target : string;
}

type entry = {
  ce_cq : Qcomp_codegen.Codegen.compiled;
  ce_cm : Qcomp_backend.Backend.compiled_module;
  ce_compile_s : float;  (** modelled (simulated) compile seconds *)
  ce_code_bytes : int;
  ce_dispose : unit -> unit;  (** release the module's code regions *)
  ce_pins : int ref;  (** in-flight queries holding this entry *)
  ce_evicted : bool ref;  (** evicted while pinned; free on last unpin *)
}

type t = {
  mu : Mutex.t;  (** serializes every access to the fields below *)
  plans : (int64 * string, Qcomp_codegen.Codegen.compiled) Hashtbl.t;
  modules : (key, entry) Lru.t;
  mutable bytes_freed : int;  (** code bytes returned to the allocator *)
  mutable max_entry_bytes : int;  (** largest module ever compiled here *)
  mutable pin_underflows : int;  (** unbalanced unpins caught and ignored *)
}

(* Callers hold [t.mu]. *)
let free t e =
  t.bytes_freed <- t.bytes_freed + e.ce_code_bytes;
  e.ce_dispose ()

(* LRU drop: dispose now, or defer until the last in-flight user unpins.
   Runs under [t.mu] (drops only happen inside locked [Lru.add]). *)
let drop t e = if !(e.ce_pins) > 0 then e.ce_evicted := true else free t e

let create ~capacity =
  let t =
    {
      mu = Mutex.create ();
      plans = Hashtbl.create 64;
      modules = Lru.create ~capacity;
      bytes_freed = 0;
      max_entry_bytes = 0;
      pin_underflows = 0;
    }
  in
  Lru.set_on_drop t.modules (fun e -> drop t e);
  t

(** Pin [e] against disposal while a query holds it. Every pin must be
    matched by an {!unpin} when the query finishes. *)
let pin t e = Mutex.protect t.mu (fun () -> incr e.ce_pins)

(** Drop one pin. An unpin without a matching pin is a caller bug that used
    to drive the count negative (and could later double-dispose a module a
    query was still running); it is now clamped at zero, counted in
    [ms_pin_underflows] and logged on first occurrence. *)
let unpin t e =
  Mutex.protect t.mu (fun () ->
      if !(e.ce_pins) <= 0 then begin
        t.pin_underflows <- t.pin_underflows + 1;
        if t.pin_underflows = 1 then
          Printf.eprintf
            "code_cache: unpin without matching pin (clamped at zero)\n%!"
      end
      else begin
        decr e.ce_pins;
        if !(e.ce_pins) = 0 && !(e.ce_evicted) then begin
          e.ce_evicted := false;
          free t e
        end
      end)

let key db ~backend plan =
  {
    ck_fp = Fingerprint.plan plan;
    ck_backend = Qcomp_backend.Backend.name backend;
    ck_target = db.Engine.target.Qcomp_vm.Target.name;
  }

(** Codegen once per (fingerprint, target); the memo is unbounded because
    codegen results are small compared to machine code. Atomic: concurrent
    callers for the same fingerprint get the {e same} codegen result, which
    the tier hot-swap relies on (one state layout per plan). *)
let plan_ir t db ~fp ~name plan =
  Mutex.protect t.mu (fun () ->
      let pk = (fp, db.Engine.target.Qcomp_vm.Target.name) in
      match Hashtbl.find_opt t.plans pk with
      | Some cq -> cq
      | None ->
          let cq = Engine.plan_to_ir db ~name plan in
          Hashtbl.replace t.plans pk cq;
          cq)

let find t k = Mutex.protect t.mu (fun () -> Lru.find t.modules k)

(** Lookup that touches neither recency nor the hit/miss counters — for
    policies whose semantics say "no cache" (Static charges the full
    modelled compile every time, so a hit would be a lie in the printed
    hit-rate) and for the tier controller probing whether a stronger
    module is already resident without skewing the serving stats. *)
let find_nostat t k = Mutex.protect t.mu (fun () -> Lru.peek t.modules k)

(** Compile without touching the LRU: a background compilation must not
    become visible to other queries before the scheduler says its
    (simulated) compile time has elapsed — the caller {!insert}s the entry
    at the completion event. Neither the cache mutex nor the emulator's
    layout lock is held during back-end compilation, so independent plans
    compile concurrently on different domains; only the short
    predict-link-register window inside each back-end (and every
    code-registration/disposal) serializes on the layout lock. *)
let compile_uncached t db ~backend ~name plan =
  let k = key db ~backend plan in
  let cq = plan_ir t db ~fp:k.ck_fp ~name plan in
  let modul = cq.Qcomp_codegen.Codegen.modul in
  let timing = Qcomp_support.Timing.create ~enabled:false () in
  let cm =
    Qcomp_backend.Backend.compile_module backend ~timing ~emu:db.Engine.emu
      ~registry:db.Engine.registry ~unwind:db.Engine.unwind modul
  in
  let bytes = cm.Qcomp_backend.Backend.cm_code_size in
  Mutex.protect t.mu (fun () ->
      if bytes > t.max_entry_bytes then t.max_entry_bytes <- bytes);
  {
    ce_cq = cq;
    ce_cm = cm;
    ce_compile_s = Costmodel.compile_seconds ~backend:k.ck_backend modul;
    ce_code_bytes = bytes;
    ce_dispose = (fun () -> Engine.dispose_module db cm);
    ce_pins = ref 0;
    ce_evicted = ref false;
  }

let insert t k e =
  Mutex.protect t.mu (fun () -> Lru.add t.modules k ~weight:e.ce_code_bytes e)

(** [get_or_compile t db ~backend ~name plan] is [(entry, hit)]: the cached
    module for the plan under [backend], compiling (and inserting) on miss.
    The returned [ce_compile_s] is the modelled cost — on a hit the caller
    decides whether to charge it (a serving system does not). Two domains
    racing on the same miss both compile, but only the first insert wins;
    the loser's module is disposed and the winner returned, so callers
    never hold two live modules for one key. (The serving pool additionally
    dedups in-flight compiles so this race stays rare.) *)
let get_or_compile t db ~backend ~name plan =
  let k = key db ~backend plan in
  match find t k with
  | Some e -> (e, true)
  | None -> (
      let e = compile_uncached t db ~backend ~name plan in
      let prior =
        Mutex.protect t.mu (fun () ->
            match Lru.peek t.modules k with
            | Some other -> Some other
            | None ->
                Lru.add t.modules k ~weight:e.ce_code_bytes e;
                None)
      in
      match prior with
      | Some other ->
          e.ce_dispose ();
          (other, true)
      | None -> (e, false))

let stats t = Mutex.protect t.mu (fun () -> Lru.stats t.modules)

(** Sum of pins across live entries — zero when the server has quiesced. *)
let live_pins t =
  Mutex.protect t.mu (fun () ->
      let n = ref 0 in
      Lru.iter t.modules (fun e -> n := !n + !(e.ce_pins));
      !n)

type mem_stats = {
  ms_bytes_freed : int;  (** code bytes returned to the region allocator *)
  ms_max_entry_bytes : int;  (** largest single module compiled here *)
  ms_pin_underflows : int;  (** unbalanced unpins caught and clamped *)
}

let mem_stats t =
  Mutex.protect t.mu (fun () ->
      {
        ms_bytes_freed = t.bytes_freed;
        ms_max_entry_bytes = t.max_entry_bytes;
        ms_pin_underflows = t.pin_underflows;
      })

let pp_stats fmt t =
  let s = stats t in
  let bytes_freed = (mem_stats t).ms_bytes_freed in
  Format.fprintf fmt
    "hits %d  misses %d  hit-rate %.1f%%  entries %d  evictions %d  bytes %d  bytes-freed %d"
    s.Lru.hits s.Lru.misses
    (if s.Lru.hits + s.Lru.misses > 0 then
       100.0 *. float_of_int s.Lru.hits /. float_of_int (s.Lru.hits + s.Lru.misses)
     else 0.0)
    s.Lru.entries s.Lru.evictions s.Lru.bytes bytes_freed
