(** Compiled-code cache: plan fingerprint -> back-end compiled module.

    An unbounded codegen memo keyed by [(fingerprint, target)] — shared
    across back-ends so tiers can hot-swap over one state layout — plus a
    bounded LRU of back-end modules keyed by
    [(fingerprint, backend, target)] with hit/miss/eviction/byte stats. *)

type key = {
  ck_fp : int64;  (** canonical plan fingerprint *)
  ck_backend : string;
  ck_target : string;
}

type entry = {
  ce_cq : Qcomp_codegen.Codegen.compiled;
  ce_cm : Qcomp_backend.Backend.compiled_module;
  ce_compile_s : float;  (** modelled (simulated) compile seconds *)
  ce_code_bytes : int;
}

type t

(** [create ~capacity] bounds the module LRU to [capacity] entries. *)
val create : capacity:int -> t

(** Cache key of [plan] compiled by [backend] for [db]'s target. *)
val key : Qcomp_engine.Engine.db -> backend:Qcomp_backend.Backend.t -> Qcomp_plan.Algebra.t -> key

(** LRU lookup (promotes, counts hit/miss). *)
val find : t -> key -> entry option

(** Codegen once per (fingerprint, target), memoized. *)
val plan_ir :
  t ->
  Qcomp_engine.Engine.db ->
  fp:int64 ->
  name:string ->
  Qcomp_plan.Algebra.t ->
  Qcomp_codegen.Codegen.compiled

(** Compile without touching the LRU (for background compilations that
    become visible only at their simulated completion event). *)
val compile_uncached :
  t ->
  Qcomp_engine.Engine.db ->
  backend:Qcomp_backend.Backend.t ->
  name:string ->
  Qcomp_plan.Algebra.t ->
  entry

val insert : t -> key -> entry -> unit

(** [(entry, hit)] — compiles and inserts on miss. *)
val get_or_compile :
  t ->
  Qcomp_engine.Engine.db ->
  backend:Qcomp_backend.Backend.t ->
  name:string ->
  Qcomp_plan.Algebra.t ->
  entry * bool

val stats : t -> Lru.stats
val pp_stats : Format.formatter -> t -> unit
