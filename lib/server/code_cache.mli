(** Compiled-code cache: shape fingerprint -> relocatable compiled artifact.

    An unbounded codegen memo keyed by [(fingerprint, target)] — shared
    across back-ends so tiers can hot-swap over one state layout — plus a
    bounded LRU keyed by [(fingerprint, backend, target)] holding each
    back-end's relocatable {!Qcomp_backend.Artifact.t} together with its
    lazily linked live modules, with hit/miss/eviction/byte stats.

    With parameterized-plan specialization the cached unit is a {e shape}:
    a plan whose eligible literals were replaced by parameter holes
    ({!Qcomp_plan.Paramize}). The artifact is compiled once per shape with
    holes unbound; every literal variant is served by a cheap bind-link
    ({!force} with a parameter vector). Entries keep a short MRU list of
    bound instances — repeated vectors are exact hits, new vectors shape
    hits — counted in {!param_stats}. Instances a query is executing can
    be {e claimed} ({!force} [~claim:true] .. {!release}): a claimed
    instance survives the MRU-overflow trim, so literal churn by other
    queries never disposes a module mid-execution.

    Because the cached unit is relocatable and unbound, a cache can be
    {!save}d to a snapshot file and {!load}ed by a freshly started server
    against a database with the same deterministic layout: warm queries
    then pay a microsecond re-link on first hit instead of back-end
    compile seconds, and one snapshot record serves every literal variant
    of its shape.

    Eviction {e reclaims} code memory: each bound instance's regions go
    back to the emulator's region allocator via
    {!Qcomp_backend.Backend.dispose}; never-linked snapshot entries own no
    code memory and free nothing. Entries held by in-flight queries must
    be {!pin}ned; a pinned entry that gets evicted is disposed only when
    its last {!unpin} arrives, so running code is never freed.

    Thread-safe and {e hash-sharded}: entries are distributed over
    independent LRU shards (keyed by fingerprint and back-end), each
    behind its own mutex, so worker domains hitting different plans never
    contend on one global lock. [{!create} ~capacity] is the single-shard
    configuration — exactly the previous behavior, including snapshot
    byte layout — and the only one the deterministic discrete-event
    driver uses; {!create_sharded} spreads the capacity over several
    shards for the parallel pool. Stats aggregate across shards on read.
    Concurrent misses on one key are deduplicated: the first domain
    compiles, racers wait on the shard's condition variable and reuse the
    result ({!get_or_compile}). Compilation runs outside the shard mutex
    (independent plans compile concurrently) under the emulator's
    code-layout lock; a shard mutex is always taken before the layout
    lock, never after. *)

type key = {
  ck_fp : int64;  (** canonical plan (shape) fingerprint *)
  ck_backend : string;
  ck_target : string;
}

(** One parameter binding of an entry's shape: an immutable linked module
    whose parameter holes hold exactly [b_params]. Instances are immutable
    by design — patching a shared module's holes in place would race with
    a query mid-execution on the same module. [b_refs] counts in-flight
    claims ({!force} [~claim:true]); the MRU trim never disposes an
    instance with live references. *)
type bound = {
  b_params : Qcomp_backend.Artifact.param_value array;
  b_cm : Qcomp_backend.Backend.compiled_module;
  b_dispose : unit -> unit;
  mutable b_refs : int;
}

type entry = {
  ce_name : string;  (** query name (for re-codegen after a {!load}) *)
  ce_key : key;  (** the entry's home key — locates its shard *)
  ce_plan : Qcomp_plan.Algebra.t;
      (** the {e shape}: for parameterized queries, eligible literals have
          been replaced by [Expr.Param] holes ({!Qcomp_plan.Paramize}) *)
  ce_fp : int64;  (** canonical shape fingerprint (= key's [ck_fp]) *)
  ce_art : Qcomp_backend.Artifact.t option;
      (** relocatable artifact (parameter holes unbound); [None] only for
          back-ends that cannot produce one (interpreter) — those entries
          are never snapshot *)
  ce_backend : Qcomp_backend.Backend.t option;
      (** the compiling back-end, kept so an artifact-less (interpreter)
          entry can re-translate for a fresh parameter vector; [None] for
          snapshot-loaded entries, which always carry an artifact *)
  ce_consts : (string * int * int) list;
      (** (string, SSO struct address, body address or 0) literals baked
          into the artifact as immediates *)
  ce_db_fp : int64;  (** {!Engine.layout_fingerprint} at compile time *)
  mutable ce_cq : Qcomp_codegen.Codegen.compiled option;
      (** shape codegen result, shared by every bound instance; re-derived
          through the plan memo on first {!force} after a {!load} *)
  mutable ce_bound : bound list;
      (** linked instances, most recently used first; one per distinct
          parameter vector (a single [[||]]-keyed instance for
          non-parameterized plans) *)
  mutable ce_fresh : bool;
      (** entry was just created by {!compile_uncached} and its initial
          instance not yet claimed — the creator's first {!force} is not a
          parameter-cache hit *)
  ce_compile_s : float;  (** modelled (simulated) compile seconds *)
  ce_code_bytes : int;  (** code bytes of one bound instance *)
  ce_pins : int ref;  (** in-flight queries holding this entry *)
  ce_evicted : bool ref;  (** evicted while pinned; free on last unpin *)
}

(** Parameter-cache counters, reported next to the LRU hit/miss stats.
    Only parameterized lookups (non-empty vectors) count here. *)
type param_stats = {
  ps_shape_hits : int;
      (** {!force} found the shape but not the vector: artifact re-linked
          with fresh holes — the compile was skipped, only a bind paid *)
  ps_exact_hits : int;
      (** {!force} found a live instance for the exact vector: no work *)
  ps_binds : int;  (** parameter bind-links performed (incl. initial) *)
  ps_bind_host_s : float;  (** host seconds spent in bind-links *)
}

type t

(** [create ~capacity] bounds the module LRU to [capacity] entries over a
    single shard — the deterministic configuration. *)
val create : capacity:int -> t

(** [create_sharded ~capacity ~shards] distributes [capacity] entries
    (ceil-divided, so the aggregate bound never shrinks) over [shards]
    hash shards, each with its own lock — for the parallel pool. Raises
    [Invalid_argument] unless both are positive. *)
val create_sharded : capacity:int -> shards:int -> t

val shard_count : t -> int

(** Cache key of [plan] compiled by [backend] for [db]'s target. *)
val key : Qcomp_engine.Engine.db -> backend:Qcomp_backend.Backend.t -> Qcomp_plan.Algebra.t -> key

(** LRU lookup (promotes, counts hit/miss). *)
val find : t -> key -> entry option

(** LRU lookup that touches neither recency nor the hit/miss counters —
    for Static mode (whose semantics are "no cache") and for tier-upgrade
    probes that must not pollute the serving hit-rate. *)
val find_nostat : t -> key -> entry option

(** The live (codegen result, module) pair for an entry bound to [params],
    plus whether this call created the instance (a {e fresh} bind the
    caller should charge {!Costmodel.bind_seconds} for). A matching bound
    instance is reused and MRU-promoted; otherwise the artifact is
    re-linked (or the back-end re-translates, for interpreter entries)
    with [params] in its holes. Entries created by {!compile_uncached}
    are born with their submitter's instance; {!load}ed entries pay a
    microsecond re-link — never a back-end compile — on the first call.
    [~claim:true] takes a reference on the returned instance so the
    MRU-overflow trim cannot dispose it while the query executes; drop it
    with {!release}. *)
val force :
  t ->
  Qcomp_engine.Engine.db ->
  ?params:Qcomp_backend.Artifact.param_value array ->
  ?claim:bool ->
  entry ->
  Qcomp_codegen.Codegen.compiled * Qcomp_backend.Backend.compiled_module * bool

(** Drop the claim {!force} [~claim:true] took on the instance whose
    module is [cm], then re-apply the MRU-overflow trim (disposing the
    instance if it outlived the cap only because of the claim). Ignored
    for modules already disposed with their evicted entry. *)
val release : t -> entry -> Qcomp_backend.Backend.compiled_module -> unit

(** Codegen once per (fingerprint, target), memoized. *)
val plan_ir :
  t ->
  Qcomp_engine.Engine.db ->
  fp:int64 ->
  name:string ->
  Qcomp_plan.Algebra.t ->
  Qcomp_codegen.Codegen.compiled

(** Compile without touching the LRU (for background compilations that
    become visible only at their simulated completion event). When the
    back-end supports relocatable output, the entry retains the artifact
    so {!save} can snapshot it. [params] binds the submitter's literal
    vector into the entry's initial instance. Must not be called with a
    shard mutex held. *)
val compile_uncached :
  t ->
  Qcomp_engine.Engine.db ->
  backend:Qcomp_backend.Backend.t ->
  ?params:Qcomp_backend.Artifact.param_value array ->
  name:string ->
  Qcomp_plan.Algebra.t ->
  entry

val insert : t -> key -> entry -> unit

(** [(entry, hit)] — compiles and inserts on miss. Concurrent misses on
    one key are deduplicated through a per-shard in-flight table: the
    first domain compiles, racers block on the shard's condition variable
    and return the finished entry as a hit (counted in
    [ms_dedup_waits] — no redundant back-end compile is ever run).
    [~stats:false] keeps the lookup out of the hit/miss counters;
    [~pin:true] pins the returned entry atomically with the
    lookup/insert, so an eviction cannot free it before the caller runs
    it. *)
val get_or_compile :
  t ->
  Qcomp_engine.Engine.db ->
  backend:Qcomp_backend.Backend.t ->
  ?params:Qcomp_backend.Artifact.param_value array ->
  ?stats:bool ->
  ?pin:bool ->
  name:string ->
  Qcomp_plan.Algebra.t ->
  entry * bool

(** Pin an entry against disposal while a query holds it. Every pin must
    be matched by an {!unpin}. *)
val pin : t -> entry -> unit

(** Drop one pin; if the entry was evicted while pinned and this was the
    last pin, its code regions are released now. An unpin without a
    matching pin is clamped at zero (never negative), counted in
    [ms_pin_underflows], and logged on first occurrence. *)
val unpin : t -> entry -> unit

(** Aggregated over all shards. *)
val stats : t -> Lru.stats

(** The run's parameter-cache counters (aggregated over all shards). *)
val param_stats : t -> param_stats

(** Sum of pins across live entries — zero once a server run quiesces. *)
val live_pins : t -> int

type mem_stats = {
  ms_bytes_freed : int;  (** code bytes returned to the region allocator *)
  ms_max_entry_bytes : int;  (** largest single module compiled here *)
  ms_pin_underflows : int;  (** unbalanced unpins caught and clamped *)
  ms_backend_compiles : int;  (** back-end compiles actually run *)
  ms_dedup_waits : int;
      (** misses served by waiting on another domain's in-flight compile
          instead of compiling redundantly *)
}

val mem_stats : t -> mem_stats
val pp_stats : Format.formatter -> t -> unit

(** {1 Persistent snapshots}

    A snapshot stores every artifact-bearing entry — relocatable code
    bytes, symbols, pending fixups (parameter holes included, unbound),
    baked string constants and the shape plan itself — under a
    CRC-32C-checksummed header carrying the artifact format version and
    target. Records are keyed by {!Fingerprint.key_v} (which also folds
    the parameter-format version), so a snapshot from another format
    version, back-end build or architecture fails key verification loudly
    instead of ever mis-linking. *)

(** [save t file] snapshots every artifact-bearing entry to [file]
    (written atomically via a temp file), coldest entry first so {!load}
    reconstructs the same recency order (per shard, in shard index order;
    exactly overall for the single-shard layout deterministic runs use).
    Interpreter entries (no artifact) are skipped. *)
val save : t -> string -> unit

(** [load ~capacity ?shards ~db file] is a fresh cache of [capacity]
    entries over [shards] hash shards (default 1) holding [file]'s
    records, unlinked — each entry re-links lazily on its first hit. [db]
    must be the same deterministic database build the snapshot was taken
    against (same target, same {!Engine.layout_fingerprint}); loading
    should happen right after the database is built, before any query
    runs, so the baked string constants can be re-materialized at their
    original addresses. If the snapshot holds more than [capacity] records
    the coldest overflow is evicted cleanly (no pins, no spurious byte
    accounting). Truncated, bit-flipped, version-mismatched or
    layout-mismatched snapshots raise [Invalid_argument] with a
    descriptive message. *)
val load :
  capacity:int -> ?shards:int -> db:Qcomp_engine.Engine.db -> string -> t
