(** Compiled-code cache: plan fingerprint -> back-end compiled module.

    An unbounded codegen memo keyed by [(fingerprint, target)] — shared
    across back-ends so tiers can hot-swap over one state layout — plus a
    bounded LRU of back-end modules keyed by
    [(fingerprint, backend, target)] with hit/miss/eviction/byte stats.

    Eviction {e reclaims} code memory: the dropped module's regions go back
    to the emulator's region allocator via
    {!Qcomp_backend.Backend.dispose}. Entries held by in-flight queries
    must be {!pin}ned; a pinned entry that gets evicted is disposed only
    when its last {!unpin} arrives, so running code is never freed.

    Thread-safe: every operation is serialized by an internal mutex, so the
    parallel serving pool shares one cache across worker domains.
    Compilation runs outside that mutex (independent plans compile
    concurrently) under the emulator's code-layout lock. *)

type key = {
  ck_fp : int64;  (** canonical plan fingerprint *)
  ck_backend : string;
  ck_target : string;
}

type entry = {
  ce_cq : Qcomp_codegen.Codegen.compiled;
  ce_cm : Qcomp_backend.Backend.compiled_module;
  ce_compile_s : float;  (** modelled (simulated) compile seconds *)
  ce_code_bytes : int;
  ce_dispose : unit -> unit;  (** release the module's code regions *)
  ce_pins : int ref;  (** in-flight queries holding this entry *)
  ce_evicted : bool ref;  (** evicted while pinned; free on last unpin *)
}

type t

(** [create ~capacity] bounds the module LRU to [capacity] entries. *)
val create : capacity:int -> t

(** Cache key of [plan] compiled by [backend] for [db]'s target. *)
val key : Qcomp_engine.Engine.db -> backend:Qcomp_backend.Backend.t -> Qcomp_plan.Algebra.t -> key

(** LRU lookup (promotes, counts hit/miss). *)
val find : t -> key -> entry option

(** LRU lookup that touches neither recency nor the hit/miss counters —
    for Static mode (whose semantics are "no cache") and for tier-upgrade
    probes that must not pollute the serving hit-rate. *)
val find_nostat : t -> key -> entry option

(** Codegen once per (fingerprint, target), memoized. *)
val plan_ir :
  t ->
  Qcomp_engine.Engine.db ->
  fp:int64 ->
  name:string ->
  Qcomp_plan.Algebra.t ->
  Qcomp_codegen.Codegen.compiled

(** Compile without touching the LRU (for background compilations that
    become visible only at their simulated completion event). *)
val compile_uncached :
  t ->
  Qcomp_engine.Engine.db ->
  backend:Qcomp_backend.Backend.t ->
  name:string ->
  Qcomp_plan.Algebra.t ->
  entry

val insert : t -> key -> entry -> unit

(** [(entry, hit)] — compiles and inserts on miss. Two domains racing on
    the same miss both compile; the insert loser's module is disposed and
    the winner's entry returned. *)
val get_or_compile :
  t ->
  Qcomp_engine.Engine.db ->
  backend:Qcomp_backend.Backend.t ->
  name:string ->
  Qcomp_plan.Algebra.t ->
  entry * bool

(** Pin an entry against disposal while a query holds it. Every pin must
    be matched by an {!unpin}. *)
val pin : t -> entry -> unit

(** Drop one pin; if the entry was evicted while pinned and this was the
    last pin, its code regions are released now. An unpin without a
    matching pin is clamped at zero (never negative), counted in
    [ms_pin_underflows], and logged on first occurrence. *)
val unpin : t -> entry -> unit

val stats : t -> Lru.stats

(** Sum of pins across live entries — zero once a server run quiesces. *)
val live_pins : t -> int

type mem_stats = {
  ms_bytes_freed : int;  (** code bytes returned to the region allocator *)
  ms_max_entry_bytes : int;  (** largest single module compiled here *)
  ms_pin_underflows : int;  (** unbalanced unpins caught and clamped *)
}

val mem_stats : t -> mem_stats
val pp_stats : Format.formatter -> t -> unit
