(** Deterministic compile-time model for the discrete-event scheduler.

    The serving simulator needs compile durations that are reproducible
    bit-for-bit across runs, so instead of feeding measured wall-clock
    (which varies run to run) it charges each background compilation a cost
    that is a pure function of the IR module's size and the back-end's
    per-function/per-instruction throughput. The coefficients are
    calibrated against this repo's measured compile-time totals over the
    TPC-DS-like workload (EXPERIMENTS.md, mirroring Table III of the
    paper): DirectEmit compiles a few times slower than the interpreter
    translates, Cranelift another ~20x slower, LLVM -O0 a further ~3x, LLVM
    -O2 ~10x beyond that, and GCC slowest of all. Execution time needs no
    model — the emulator's simulated cycles are already deterministic. *)

type coeff = {
  per_module : float;  (** fixed setup: context, module, symbol table [s] *)
  per_function : float;  (** per generated function [s] *)
  per_inst : float;  (** per Umbra-IR instruction [s] *)
}

(* Ordered cheap-to-expensive; the ratios matter more than the absolute
   values because every serving policy is charged from the same table. *)
let coeffs = function
  | "interpreter" -> { per_module = 1e-6; per_function = 2e-7; per_inst = 2e-8 }
  (* copy-and-patch: per-query work is blit + hole patching, an order of
     magnitude under DirectEmit's encode loop (BENCH_stencil.json) *)
  | "stencil" -> { per_module = 2e-7; per_function = 6e-8; per_inst = 7e-9 }
  | "directemit" -> { per_module = 2e-6; per_function = 6e-7; per_inst = 7e-8 }
  | "cranelift" -> { per_module = 1e-5; per_function = 5e-6; per_inst = 1.5e-6 }
  | "llvm-cheap" -> { per_module = 6e-5; per_function = 1.5e-5; per_inst = 4.5e-6 }
  | "llvm-opt" -> { per_module = 2e-4; per_function = 6e-5; per_inst = 4e-5 }
  | "gcc" -> { per_module = 1.5e-3; per_function = 2.5e-4; per_inst = 1e-4 }
  | other ->
      (* fail loud: a renamed or unregistered back-end silently getting
         mid-range coefficients would skew every simulated schedule *)
      invalid_arg ("Costmodel.coeffs: no coefficients for back-end " ^ other)

let module_size (m : Qcomp_ir.Func.modul) =
  let funcs = Qcomp_support.Vec.length m.Qcomp_ir.Func.funcs in
  let insts = ref 0 in
  Qcomp_support.Vec.iter
    (fun f -> insts := !insts + Qcomp_ir.Func.num_insts f)
    m.Qcomp_ir.Func.funcs;
  (funcs, !insts)

(** Simulated seconds to compile [m] with the named back-end. *)
let compile_seconds ~backend (m : Qcomp_ir.Func.modul) =
  let c = coeffs backend in
  let funcs, insts = module_size m in
  c.per_module
  +. (c.per_function *. float_of_int funcs)
  +. (c.per_inst *. float_of_int insts)

(** Simulated seconds to bind a parameter vector into an already-compiled
    shape: a re-link of the artifact that blits the text and patches a
    handful of 8-byte immediate holes. Three orders of magnitude under the
    cheapest back-end compile (the stencil generator's per-query work is
    itself mostly the same blit), so a shape hit is priced as near-free —
    the whole point of caching per shape instead of per query. *)
let bind_seconds = 2e-6

(* ---------------- execution-rate model ---------------- *)

(** The nominal clock every simulated duration is quoted at (the paper's
    2 GHz Xeon; {!Qcomp_engine.Engine.cycles_to_seconds} uses the same). *)
let clock_hz = 2.0e9

(** Relative execution throughput of code from the named back-end,
    normalized to the interpreter = 1.0: executing the same rows on a tier
    with rate [r] is modelled to cost [1/r] of the interpreter's cycles.
    Anchored on this repo's measured execution totals (bin/query_cycles
    over the TPC-H queries, recorded in EXPERIMENTS.md: compiled tiers run
    the bundled workloads ~2-3.7x faster than the bytecode interpreter),
    with the ladder tiers kept strictly monotone — each stronger rung is
    modelled slightly faster, as on the paper's Fig. 7 frontier — so the
    controller's ordering matches {!Qcomp_engine.Engine.tier_ladder} even
    where two tiers measure within noise of each other on aggregate.

    The tagged-probe hash table runtime shrank the cycles charged for the
    shared runtime calls all tiers pay equally, so the compiled-code
    fraction of a query grew and the compiled tiers' measured ratios rose
    a notch (the interpreter's own dispatch dominates its total either
    way); the stencil tier's stack round-trips track the runtime's share,
    leaving its ratio where it was. *)
let exec_rate = function
  | "interpreter" -> 1.0
  (* stencil code is slot-machine style — every operand round-trips the
     stack — so it beats the interpreter but not regalloc'd DirectEmit *)
  | "stencil" -> 1.8
  | "directemit" -> 3.15
  | "cranelift" -> 3.4
  | "llvm-cheap" -> 2.05
  | "llvm-opt" -> 3.65
  | "gcc" -> 2.2
  | other -> invalid_arg ("Costmodel.exec_rate: no rate for back-end " ^ other)

(** Projected seconds to finish the remaining rows on the tier whose
    observed cycles-per-row is [cpr]. *)
let projected_remaining_s ~cpr ~rows_remaining =
  float_of_int rows_remaining *. cpr /. clock_hz

(** [upgrade_gain ~cur ~next ~cpr ~rows_remaining ~compile_s] is the
    projected seconds saved by compiling [next] (at [compile_s], hidden on
    the background pool but still delaying the swap) and finishing there,
    versus staying on [cur] — the observation-driven form of the paper's
    compile-vs-execute tradeoff:

    stay = rows_remaining x cpr / clock
    go   = compile_s + stay x rate(cur)/rate(next)

    Positive means the upgrade pays. The background compile's host cost is
    not the query's problem; [compile_s] enters because no rows run on
    [next] until it lands, so the saving only applies to rows after that
    point — charging the full compile latency against the gain is the
    conservative bound (it assumes no overlap). *)
let upgrade_gain ~cur ~next ~cpr ~rows_remaining ~compile_s =
  let stay = projected_remaining_s ~cpr ~rows_remaining in
  let go = compile_s +. (stay *. (exec_rate cur /. exec_rate next)) in
  stay -. go

let upgrade_pays ~cur ~next ~cpr ~rows_remaining ~compile_s =
  upgrade_gain ~cur ~next ~cpr ~rows_remaining ~compile_s > 0.0

(** Pick the candidate (name, compile seconds) with the largest positive
    projected gain, scanning weakest-first so ties go to the cheaper
    compile. [None] when no upgrade pays. *)
let best_upgrade ~cur ~cpr ~rows_remaining candidates =
  List.fold_left
    (fun acc (next, compile_s) ->
      let g = upgrade_gain ~cur ~next ~cpr ~rows_remaining ~compile_s in
      if g <= 0.0 then acc
      else
        match acc with
        | Some (_, best) when best >= g -> acc
        | _ -> Some (next, g))
    None candidates
