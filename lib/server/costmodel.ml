(** Deterministic compile-time model for the discrete-event scheduler.

    The serving simulator needs compile durations that are reproducible
    bit-for-bit across runs, so instead of feeding measured wall-clock
    (which varies run to run) it charges each background compilation a cost
    that is a pure function of the IR module's size and the back-end's
    per-function/per-instruction throughput. The coefficients are
    calibrated against this repo's measured compile-time totals over the
    TPC-DS-like workload (EXPERIMENTS.md, mirroring Table III of the
    paper): DirectEmit compiles a few times slower than the interpreter
    translates, Cranelift another ~20x slower, LLVM -O0 a further ~3x, LLVM
    -O2 ~10x beyond that, and GCC slowest of all. Execution time needs no
    model — the emulator's simulated cycles are already deterministic. *)

type coeff = {
  per_module : float;  (** fixed setup: context, module, symbol table [s] *)
  per_function : float;  (** per generated function [s] *)
  per_inst : float;  (** per Umbra-IR instruction [s] *)
}

(* Ordered cheap-to-expensive; the ratios matter more than the absolute
   values because every serving policy is charged from the same table. *)
let coeffs = function
  | "interpreter" -> { per_module = 1e-6; per_function = 2e-7; per_inst = 2e-8 }
  | "directemit" -> { per_module = 2e-6; per_function = 6e-7; per_inst = 7e-8 }
  | "cranelift" -> { per_module = 1e-5; per_function = 5e-6; per_inst = 1.5e-6 }
  | "llvm-cheap" -> { per_module = 6e-5; per_function = 1.5e-5; per_inst = 4.5e-6 }
  | "llvm-opt" -> { per_module = 2e-4; per_function = 6e-5; per_inst = 4e-5 }
  | "gcc" -> { per_module = 1.5e-3; per_function = 2.5e-4; per_inst = 1e-4 }
  | _ ->
      (* unknown back-ends get mid-range coefficients rather than failing:
         the model only steers scheduling decisions *)
      { per_module = 1e-5; per_function = 5e-6; per_inst = 1.5e-6 }

let module_size (m : Qcomp_ir.Func.modul) =
  let funcs = Qcomp_support.Vec.length m.Qcomp_ir.Func.funcs in
  let insts = ref 0 in
  Qcomp_support.Vec.iter
    (fun f -> insts := !insts + Qcomp_ir.Func.num_insts f)
    m.Qcomp_ir.Func.funcs;
  (funcs, !insts)

(** Simulated seconds to compile [m] with the named back-end. *)
let compile_seconds ~backend (m : Qcomp_ir.Func.modul) =
  let c = coeffs backend in
  let funcs, insts = module_size m in
  c.per_module
  +. (c.per_function *. float_of_int funcs)
  +. (c.per_inst *. float_of_int insts)
