(** Deterministic compile-time model for the discrete-event scheduler.

    Charges each compilation a simulated duration that is a pure function
    of IR-module size and per-back-end throughput coefficients (calibrated
    against the repo's measured compile-time totals), so serving runs are
    reproducible bit-for-bit. *)

(** [(functions, instructions)] of an IR module. *)
val module_size : Qcomp_ir.Func.modul -> int * int

(** Simulated seconds to compile the module with the named back-end.
    Unknown names get mid-range coefficients. *)
val compile_seconds : backend:string -> Qcomp_ir.Func.modul -> float
