(** Deterministic compile-time model for the discrete-event scheduler.

    Charges each compilation a simulated duration that is a pure function
    of IR-module size and per-back-end throughput coefficients (calibrated
    against the repo's measured compile-time totals), so serving runs are
    reproducible bit-for-bit. *)

(** [(functions, instructions)] of an IR module. *)
val module_size : Qcomp_ir.Func.modul -> int * int

(** Simulated seconds to compile the module with the named back-end.
    @raise Invalid_argument on a name with no coefficient row — a renamed
    back-end must fail loud, not silently skew every schedule. *)
val compile_seconds : backend:string -> Qcomp_ir.Func.modul -> float

(** Simulated seconds to bind a parameter vector into a cached shape
    artifact (re-link: blit text + patch 8-byte holes) — three orders of
    magnitude under the cheapest compile, which is the whole point of
    shape-keyed caching. *)
val bind_seconds : float

(** {1 Execution-rate model — what the tier controller prices with} *)

(** Nominal simulated clock (2 GHz). *)
val clock_hz : float

(** Relative execution throughput of the named back-end's code,
    interpreter = 1.0; strictly monotone along
    {!Qcomp_engine.Engine.tier_ladder}.
    @raise Invalid_argument on an unknown name. *)
val exec_rate : string -> float

(** Projected seconds to finish [rows_remaining] rows at [cpr] observed
    cycles per row. *)
val projected_remaining_s : cpr:float -> rows_remaining:int -> float

(** Projected seconds saved by compiling [next] ([compile_s] of swap
    delay) and finishing there instead of staying on [cur]:
    [stay - (compile_s + stay * rate cur / rate next)]. *)
val upgrade_gain :
  cur:string ->
  next:string ->
  cpr:float ->
  rows_remaining:int ->
  compile_s:float ->
  float

(** Whether {!upgrade_gain} is positive. *)
val upgrade_pays :
  cur:string ->
  next:string ->
  cpr:float ->
  rows_remaining:int ->
  compile_s:float ->
  bool

(** The [(name, compile_s)] candidate with the largest positive gain;
    [None] when no upgrade pays. *)
val best_upgrade :
  cur:string ->
  cpr:float ->
  rows_remaining:int ->
  (string * float) list ->
  (string * float) option
