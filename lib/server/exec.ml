(** Resumable, morsel-wise execution of a compiled query, with hot-swap.

    {!Qcomp_engine.Engine.execute} runs a query's steps start-to-finish;
    a serving system instead needs to run {e one morsel at a time} so it
    can interleave queries on workers and switch back-ends mid-query. This
    module owns the per-execution state block and walks the step list one
    quantum per {!step} call: a [`Whole] step is one quantum, a [`Table]
    step is one quantum per morsel of rows. Every generated entry function
    takes [(state, from, to)] (Sec. II of the paper), which is exactly what
    makes the cut points free.

    Hot-swap relies on all back-ends compiling the {e same} codegen result:
    function names and the state-slot layout agree, so at any quantum
    boundary the remaining calls can be answered by a different back-end's
    module. {!swap} also re-applies the function-pointer fixups (e.g. sort
    comparators) so indirect calls through the state block target the new
    module from then on. *)

open Qcomp_engine
module Codegen = Qcomp_codegen.Codegen
module Backend = Qcomp_backend.Backend
module Memory = Qcomp_vm.Memory
module Emu = Qcomp_vm.Emu
module Table = Qcomp_storage.Table
module Htable = Qcomp_runtime.Htable
module Tuplebuf = Qcomp_runtime.Tuplebuf

(** One execution lane of a morsel-parallel pipeline body: a private copy
    of the state block whose sink slots point at lane-local objects, plus
    a scope capturing everything the lane allocates. Built at the body's
    first quantum, merged back and freed at its barrier. *)
type lane = {
  l_emu : Emu.t;  (** the scheduler's per-lane execution context *)
  l_scope : Memory.scope;
  l_state : int;
}

type t = {
  db : Engine.db;
  cq : Codegen.compiled;
  mutable cm : Backend.compiled_module;
  state : int;  (** VM address of the per-execution state block *)
  scope : Memory.scope;
      (** every linear-memory block this execution allocates (state block
          plus the runtime's buffers/arenas), recycled by {!dispose} *)
  sched : Morsel_sched.t option;
      (** lane pool for morsel-parallel pipeline bodies; [None] or one
          lane means every body runs serially *)
  mutable rest : Codegen.step list;  (** steps not yet finished *)
  mutable cursor : int;  (** next row within the head step, if morsel-driven *)
  mutable lanes : lane array;  (** live while a parallel body is mid-flight *)
  mutable cycles : int;
      (** simulated cycles consumed so far, summed over all lanes (total
          work — what the query is billed) *)
  mutable wall_cycles : int;
      (** simulated wall-clock cycles: parallel quanta contribute the max
          over lanes, so this is what virtual time advances by *)
  mutable instructions : int;
  mutable quanta : int;  (** total step calls issued *)
  mutable swapped_at : int option;  (** quantum index of the first hot-swap *)
  mutable rows_done : int;  (** scan rows consumed by [`Table] quanta *)
  mutable ewma_cpr : float option;
      (** EWMA of observed wall cycles per scan row on the {e current}
          tier; reset at every {!swap} so the estimate tracks the new code *)
  mutable disposed : bool;
}

(* Smoothing for the cycles-per-row observation: heavy enough that one
   skewed morsel (hash-table growth, a seek into a dense key range) does
   not whipsaw the tier controller, light enough to follow a phase change
   (build -> probe) within a few quanta. *)
let ewma_alpha = 0.3

let apply_fixups db state (cq : Codegen.compiled) cm =
  let mem = Engine.memory db in
  List.iter
    (fun (slot, fn) -> Memory.store64 mem (state + slot) (Backend.find_fn cm fn))
    cq.Codegen.fn_ptr_fixups

let start ?sched db (cq : Codegen.compiled) cm =
  let mem = Engine.memory db in
  let scope = Memory.new_scope () in
  let state =
    Memory.with_scope scope (fun () ->
        Memory.alloc mem ~align:16 cq.Codegen.state_size)
  in
  Memory.fill mem ~addr:state ~len:cq.Codegen.state_size '\000';
  apply_fixups db state cq cm;
  {
    db;
    cq;
    cm;
    state;
    scope;
    sched;
    rest = cq.Codegen.steps;
    cursor = 0;
    lanes = [||];
    cycles = 0;
    wall_cycles = 0;
    instructions = 0;
    quanta = 0;
    swapped_at = None;
    rows_done = 0;
    ewma_cpr = None;
    disposed = false;
  }

let finished t = t.rest = []

let free_lanes t =
  let mem = Engine.memory t.db in
  Array.iter (fun l -> Memory.free_scope mem l.l_scope) t.lanes;
  t.lanes <- [||]

(** Recycle every linear-memory block this execution allocated (the state
    block and everything the runtime carved during its quanta). Call once
    the output rows have been read — the blocks are zeroed and reused, so
    any later access through the execution is a bug. Idempotent. *)
let dispose t =
  if not t.disposed then begin
    t.disposed <- true;
    free_lanes t;
    Memory.free_scope (Engine.memory t.db) t.scope
  end

(** Switch the remaining quanta to [cm] (same codegen result, different
    back-end). Only legal between quanta — the emulator is not running. *)
let swap t cm =
  if not (finished t) then begin
    t.cm <- cm;
    apply_fixups t.db t.state t.cq cm;
    if t.swapped_at = None then t.swapped_at <- Some t.quanta;
    (* the observation tracked the old tier's code; start afresh *)
    t.ewma_cpr <- None
  end

let observe_rows t ~rows ~wall_dc =
  if rows > 0 then begin
    t.rows_done <- t.rows_done + rows;
    let sample = float_of_int wall_dc /. float_of_int rows in
    t.ewma_cpr <-
      (match t.ewma_cpr with
      | None -> Some sample
      | Some e -> Some ((ewma_alpha *. sample) +. ((1.0 -. ewma_alpha) *. e)))
  end

(* ---------------- morsel-parallel pipeline bodies ----------------

   Two-phase execution of a parallel body (the partition-then-merge shape
   DuckDB/Velox use, and Umbra's exact-size build):

   1. parallel phase — every lane gets a private state-block copy whose
      sink slots are redirected to lane-local hash tables / row buffers;
      lanes run the *same* compiled body function over disjoint morsels,
      writing only lane-local objects (reads of earlier pipelines' tables
      are shared and read-only).
   2. barrier — the main context merges lane sinks back: join tables are
      republished as one exact-size global table from the now-known
      cardinality (no growth during the merge inserts), aggregate tables
      are combined by a *generated* merge function (partial aggregates
      need combine semantics, not blits), row buffers are concatenated in
      lane order. Lane scopes are then freed. *)

let init_lanes t sched (s : Codegen.step) =
  let mem = Engine.memory t.db in
  let n = Morsel_sched.lanes sched in
  t.lanes <-
    Array.init n (fun i ->
        let l_scope = Memory.new_scope () in
        let l_state =
          Memory.with_scope l_scope (fun () ->
              let st = Memory.alloc mem ~align:16 t.cq.Codegen.state_size in
              Memory.blit mem ~src:t.state ~dst:st
                ~len:t.cq.Codegen.state_size;
              List.iter
                (fun (sink : Codegen.sink) ->
                  match sink with
                  | Codegen.Sink_ht { ht_slot; ht_payload; ht_merge = _ } ->
                      let glob =
                        Int64.to_int (Memory.load64 mem (t.state + ht_slot))
                      in
                      let hint = max 16 (Htable.capacity mem glob / n) in
                      let ht, c =
                        Htable.create mem
                          ~profile:(Htable.profile_of mem glob)
                          ~payload_size:ht_payload ~capacity_hint:hint ()
                      in
                      Emu.charge t.db.Engine.emu c;
                      Memory.store64 mem (st + ht_slot) (Int64.of_int ht)
                  | Codegen.Sink_buf { buf_slot; buf_row } ->
                      let buf =
                        Tuplebuf.create mem ~row_size:buf_row
                          ~capacity_hint:64
                      in
                      Emu.charge t.db.Engine.emu 150;
                      Memory.store64 mem (st + buf_slot) (Int64.of_int buf))
                s.Codegen.sinks;
              st)
        in
        { l_emu = Morsel_sched.lane_emu sched i; l_scope; l_state })

(** Barrier: fold every lane's sinks back into the global objects, on the
    main context (serial single-threaded cleanup work). *)
let merge_lanes t (s : Codegen.step) =
  let mem = Engine.memory t.db in
  let emu = t.db.Engine.emu in
  List.iter
    (fun (sink : Codegen.sink) ->
      match sink with
      | Codegen.Sink_ht { ht_slot; ht_payload; ht_merge = None } ->
          (* join build: exact-size global table from the known
             cardinality, then one insert+blit per materialized entry *)
          let total =
            Array.fold_left
              (fun acc l ->
                acc
                + Htable.count mem
                    (Int64.to_int (Memory.load64 mem (l.l_state + ht_slot))))
              0 t.lanes
          in
          let glob = Int64.to_int (Memory.load64 mem (t.state + ht_slot)) in
          let dst, c =
            Htable.create mem
              ~profile:(Htable.profile_of mem glob)
              ~payload_size:ht_payload
              ~capacity_hint:(Htable.exact_capacity total) ()
          in
          Emu.charge emu c;
          Array.iter
            (fun l ->
              let src =
                Int64.to_int (Memory.load64 mem (l.l_state + ht_slot))
              in
              Emu.charge emu (Htable.merge_into mem ~dst ~src))
            t.lanes;
          Memory.store64 mem (t.state + ht_slot) (Int64.of_int dst)
      | Codegen.Sink_ht { ht_slot; ht_merge = Some fn; _ } ->
          (* aggregate table: generated combine function, lane by lane *)
          let addr = Int64.to_int (Backend.find_fn t.cm fn) in
          Array.iter
            (fun l ->
              let src = Memory.load64 mem (l.l_state + ht_slot) in
              ignore
                (Emu.call emu ~addr
                   ~args:[| Int64.of_int t.state; src; 0L |]))
            t.lanes
      | Codegen.Sink_buf { buf_slot; _ } ->
          (* row buffer: concatenate in lane order (morsels are assigned
             round-robin, so lane order approximates scan order; ordering
             operators sort downstream anyway) *)
          let dst = Int64.to_int (Memory.load64 mem (t.state + buf_slot)) in
          Array.iter
            (fun l ->
              let src =
                Int64.to_int (Memory.load64 mem (l.l_state + buf_slot))
              in
              Emu.charge emu (Tuplebuf.concat_into mem ~dst ~src))
            t.lanes)
    s.Codegen.sinks;
  free_lanes t

(** One quantum of a morsel-parallel body: claim [lanes * morsel] rows,
    fan them out over the lanes, and on depletion run the merge barrier.
    Returns (wall dc, total dc, instruction delta, rows consumed,
    depleted). *)
let parallel_quantum t sched (s : Codegen.step) tbl ~morsel =
  let addr = Int64.to_int (Backend.find_fn t.cm s.Codegen.fn_name) in
  let n = Morsel_sched.lanes sched in
  let msz = max 1 morsel in
  let rows = Table.rows (Engine.table t.db tbl) in
  let lo = min t.cursor rows in
  let hi = min (lo + (msz * n)) rows in
  t.cursor <- hi;
  let c0 = Emu.cycles t.db.Engine.emu in
  let i0 = Emu.instructions_executed t.db.Engine.emu in
  if t.lanes = [||] && hi > lo then init_lanes t sched s;
  let per_lane =
    if hi <= lo then [||]
    else begin
      let run_lane emu l lo hi =
        Memory.with_scope l.l_scope (fun () ->
            ignore
              (Emu.call emu ~addr
                 ~args:
                   [| Int64.of_int l.l_state; Int64.of_int lo; Int64.of_int hi |]))
      in
      if Morsel_sched.parallel sched then begin
        (* dynamic claim: fast lanes steal the remaining morsels *)
        let cl = Morsel_sched.claim ~lo ~hi ~size:msz in
        Morsel_sched.map sched (fun i ->
            let emu = Morsel_sched.lane_emu sched i in
            let l = t.lanes.(i) in
            let c0 = Emu.cycles emu and i0 = Emu.instructions_executed emu in
            let rec drain () =
              match Morsel_sched.take cl with
              | None -> ()
              | Some (mlo, mhi) ->
                  run_lane emu l mlo mhi;
                  drain ()
            in
            drain ();
            (Emu.cycles emu - c0, Emu.instructions_executed emu - i0))
      end
      else
        (* deterministic static split: lane i gets the i-th contiguous
           morsel of this quantum's claim *)
        Morsel_sched.map sched (fun i ->
            let emu = Morsel_sched.lane_emu sched i in
            let l = t.lanes.(i) in
            let llo = min (lo + (i * msz)) hi in
            let lhi = min (llo + msz) hi in
            let c0 = Emu.cycles emu and i0 = Emu.instructions_executed emu in
            if lhi > llo then run_lane emu l llo lhi;
            (Emu.cycles emu - c0, Emu.instructions_executed emu - i0))
    end
  in
  let depleted = hi >= rows in
  if depleted && t.lanes <> [||] then
    Memory.with_scope t.scope (fun () -> merge_lanes t s);
  let main_dc = Emu.cycles t.db.Engine.emu - c0 in
  let main_di = Emu.instructions_executed t.db.Engine.emu - i0 in
  let wall =
    Array.fold_left (fun m (dc, _) -> max m dc) 0 per_lane + main_dc
  in
  let total =
    Array.fold_left (fun a (dc, _) -> a + dc) 0 per_lane + main_dc
  in
  let di =
    Array.fold_left (fun a (_, n) -> a + n) 0 per_lane + main_di
  in
  (wall, total, di, hi - lo, depleted)

(** Run one quantum: the whole head step if [`Whole], else the next rows
    of it — [morsel] rows serially, or [lanes * morsel] rows fanned out
    over the scheduler's lanes when the body is parallelizable. Returns
    the simulated wall-clock cycles it cost (what virtual time advances
    by); total work is accumulated in {!cycles}. *)
let step t ~morsel =
  match t.rest with
  | [] -> `Done
  | s :: rest ->
      let parallel_sched =
        match (t.sched, s.Codegen.range) with
        | Some sched, `Table tbl
          when Morsel_sched.lanes sched > 1
               && s.Codegen.par_safe && s.Codegen.sinks <> [] ->
            Some (sched, tbl)
        | _ -> None
      in
      let wall_dc, total_dc, di, rows, depleted =
        match parallel_sched with
        | Some (sched, tbl) -> parallel_quantum t sched s tbl ~morsel
        | None ->
            let addr = Backend.find_fn t.cm s.Codegen.fn_name in
            let lo, hi, depleted =
              match s.Codegen.range with
              | `Whole -> (0L, 0L, true)
              | `Table tbl ->
                  let rows = Table.rows (Engine.table t.db tbl) in
                  let lo = min t.cursor rows in
                  let hi = min (lo + max 1 morsel) rows in
                  t.cursor <- hi;
                  (Int64.of_int lo, Int64.of_int hi, hi >= rows)
            in
            let c0 = Emu.cycles t.db.Engine.emu in
            let i0 = Emu.instructions_executed t.db.Engine.emu in
            Memory.with_scope t.scope (fun () ->
                ignore
                  (Emu.call t.db.Engine.emu ~addr:(Int64.to_int addr)
                     ~args:[| Int64.of_int t.state; lo; hi |]));
            let dc = Emu.cycles t.db.Engine.emu - c0 in
            let di = Emu.instructions_executed t.db.Engine.emu - i0 in
            let rows =
              match s.Codegen.range with
              | `Table _ -> Int64.to_int hi - Int64.to_int lo
              | `Whole -> 0
            in
            (dc, dc, di, rows, depleted)
      in
      t.cycles <- t.cycles + total_dc;
      t.wall_cycles <- t.wall_cycles + wall_dc;
      t.instructions <- t.instructions + di;
      t.quanta <- t.quanta + 1;
      (match s.Codegen.range with
      | `Table _ -> observe_rows t ~rows ~wall_dc
      | `Whole -> ());
      if depleted then begin
        t.rest <- rest;
        t.cursor <- 0
      end;
      `Ran wall_dc

(** Drive the execution to completion; [on_quantum] observes each quantum's
    cycle cost (the serving scheduler advances virtual time there). *)
let run_to_end ?(on_quantum = fun _ -> ()) t ~morsel =
  let rec loop () =
    match step t ~morsel with
    | `Done -> ()
    | `Ran dc ->
        on_quantum dc;
        loop ()
  in
  loop ()

(** Materialized output rows; meaningful once {!finished}. *)
let rows t = Engine.read_output t.db t.cq ~state:t.state

let result t : Engine.result =
  let rows = rows t in
  {
    Engine.rows;
    exec_cycles = t.cycles;
    exec_instructions = t.instructions;
    output_count = List.length rows;
  }

let cycles t = t.cycles
let wall_cycles t = t.wall_cycles
let quanta t = t.quanta
let swapped_at t = t.swapped_at
let rows_done t = t.rows_done

(** Scan rows the remaining [`Table] steps still have to produce — the
    head step's unconsumed tail plus every untouched scan. [`Whole] steps
    (prepare, sort, aggregate rescan) contribute nothing; their cost is
    folded into the cycles-per-row observation instead. *)
let rows_remaining t =
  let step_rows cursor (s : Codegen.step) =
    match s.Codegen.range with
    | `Whole -> 0
    | `Table tbl -> max 0 (Table.rows (Engine.table t.db tbl) - cursor)
  in
  match t.rest with
  | [] -> 0
  | head :: rest ->
      step_rows t.cursor head
      + List.fold_left (fun acc s -> acc + step_rows 0 s) 0 rest

(** Smoothed cycles per scan row observed on the current tier; [None]
    until a row-producing quantum has run since the last {!swap}. *)
let observed_cpr t = t.ewma_cpr

(** The IR module behind this execution — what a stronger tier would
    compile, hence what the upgrade estimator prices. *)
let ir_module t = t.cq.Codegen.modul
