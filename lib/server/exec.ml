(** Resumable, morsel-wise execution of a compiled query, with hot-swap.

    {!Qcomp_engine.Engine.execute} runs a query's steps start-to-finish;
    a serving system instead needs to run {e one morsel at a time} so it
    can interleave queries on workers and switch back-ends mid-query. This
    module owns the per-execution state block and walks the step list one
    quantum per {!step} call: a [`Whole] step is one quantum, a [`Table]
    step is one quantum per morsel of rows. Every generated entry function
    takes [(state, from, to)] (Sec. II of the paper), which is exactly what
    makes the cut points free.

    Hot-swap relies on all back-ends compiling the {e same} codegen result:
    function names and the state-slot layout agree, so at any quantum
    boundary the remaining calls can be answered by a different back-end's
    module. {!swap} also re-applies the function-pointer fixups (e.g. sort
    comparators) so indirect calls through the state block target the new
    module from then on. *)

open Qcomp_engine
module Codegen = Qcomp_codegen.Codegen
module Backend = Qcomp_backend.Backend
module Memory = Qcomp_vm.Memory
module Emu = Qcomp_vm.Emu
module Table = Qcomp_storage.Table

type t = {
  db : Engine.db;
  cq : Codegen.compiled;
  mutable cm : Backend.compiled_module;
  state : int;  (** VM address of the per-execution state block *)
  scope : Memory.scope;
      (** every linear-memory block this execution allocates (state block
          plus the runtime's buffers/arenas), recycled by {!dispose} *)
  mutable rest : Codegen.step list;  (** steps not yet finished *)
  mutable cursor : int;  (** next row within the head step, if morsel-driven *)
  mutable cycles : int;  (** simulated cycles consumed so far *)
  mutable instructions : int;
  mutable quanta : int;  (** total step calls issued *)
  mutable swapped_at : int option;  (** quantum index of the first hot-swap *)
  mutable rows_done : int;  (** scan rows consumed by [`Table] quanta *)
  mutable ewma_cpr : float option;
      (** EWMA of observed cycles per scan row on the {e current} tier;
          reset at every {!swap} so the estimate tracks the new code *)
  mutable disposed : bool;
}

(* Smoothing for the cycles-per-row observation: heavy enough that one
   skewed morsel (hash-table growth, a seek into a dense key range) does
   not whipsaw the tier controller, light enough to follow a phase change
   (build -> probe) within a few quanta. *)
let ewma_alpha = 0.3

let apply_fixups db state (cq : Codegen.compiled) cm =
  let mem = Engine.memory db in
  List.iter
    (fun (slot, fn) -> Memory.store64 mem (state + slot) (Backend.find_fn cm fn))
    cq.Codegen.fn_ptr_fixups

let start db (cq : Codegen.compiled) cm =
  let mem = Engine.memory db in
  let scope = Memory.new_scope () in
  let state =
    Memory.with_scope scope (fun () ->
        Memory.alloc mem ~align:16 cq.Codegen.state_size)
  in
  Memory.fill mem ~addr:state ~len:cq.Codegen.state_size '\000';
  apply_fixups db state cq cm;
  {
    db;
    cq;
    cm;
    state;
    scope;
    rest = cq.Codegen.steps;
    cursor = 0;
    cycles = 0;
    instructions = 0;
    quanta = 0;
    swapped_at = None;
    rows_done = 0;
    ewma_cpr = None;
    disposed = false;
  }

let finished t = t.rest = []

(** Recycle every linear-memory block this execution allocated (the state
    block and everything the runtime carved during its quanta). Call once
    the output rows have been read — the blocks are zeroed and reused, so
    any later access through the execution is a bug. Idempotent. *)
let dispose t =
  if not t.disposed then begin
    t.disposed <- true;
    Memory.free_scope (Engine.memory t.db) t.scope
  end

(** Switch the remaining quanta to [cm] (same codegen result, different
    back-end). Only legal between quanta — the emulator is not running. *)
let swap t cm =
  if not (finished t) then begin
    t.cm <- cm;
    apply_fixups t.db t.state t.cq cm;
    if t.swapped_at = None then t.swapped_at <- Some t.quanta;
    (* the observation tracked the old tier's code; start afresh *)
    t.ewma_cpr <- None
  end

(** Run one quantum: the whole head step if [`Whole], else the next
    [morsel] rows of it. Returns the simulated cycles it cost. *)
let step t ~morsel =
  match t.rest with
  | [] -> `Done
  | s :: rest ->
      let addr = Backend.find_fn t.cm s.Codegen.fn_name in
      let lo, hi, depleted =
        match s.Codegen.range with
        | `Whole -> (0L, 0L, true)
        | `Table tbl ->
            let rows = Table.rows (Engine.table t.db tbl) in
            let lo = min t.cursor rows in
            let hi = min (lo + max 1 morsel) rows in
            t.cursor <- hi;
            (Int64.of_int lo, Int64.of_int hi, hi >= rows)
      in
      let c0 = Emu.cycles t.db.Engine.emu in
      let i0 = Emu.instructions_executed t.db.Engine.emu in
      Memory.with_scope t.scope (fun () ->
          ignore
            (Emu.call t.db.Engine.emu ~addr:(Int64.to_int addr)
               ~args:[| Int64.of_int t.state; lo; hi |]));
      let dc = Emu.cycles t.db.Engine.emu - c0 in
      t.cycles <- t.cycles + dc;
      t.instructions <- t.instructions + (Emu.instructions_executed t.db.Engine.emu - i0);
      t.quanta <- t.quanta + 1;
      (match s.Codegen.range with
      | `Table _ ->
          let rows = Int64.to_int hi - Int64.to_int lo in
          if rows > 0 then begin
            t.rows_done <- t.rows_done + rows;
            let sample = float_of_int dc /. float_of_int rows in
            t.ewma_cpr <-
              (match t.ewma_cpr with
              | None -> Some sample
              | Some e -> Some ((ewma_alpha *. sample) +. ((1.0 -. ewma_alpha) *. e)))
          end
      | `Whole -> ());
      if depleted then begin
        t.rest <- rest;
        t.cursor <- 0
      end;
      `Ran dc

(** Drive the execution to completion; [on_quantum] observes each quantum's
    cycle cost (the serving scheduler advances virtual time there). *)
let run_to_end ?(on_quantum = fun _ -> ()) t ~morsel =
  let rec loop () =
    match step t ~morsel with
    | `Done -> ()
    | `Ran dc ->
        on_quantum dc;
        loop ()
  in
  loop ()

(** Materialized output rows; meaningful once {!finished}. *)
let rows t = Engine.read_output t.db t.cq ~state:t.state

let result t : Engine.result =
  let rows = rows t in
  {
    Engine.rows;
    exec_cycles = t.cycles;
    exec_instructions = t.instructions;
    output_count = List.length rows;
  }

let cycles t = t.cycles
let quanta t = t.quanta
let swapped_at t = t.swapped_at
let rows_done t = t.rows_done

(** Scan rows the remaining [`Table] steps still have to produce — the
    head step's unconsumed tail plus every untouched scan. [`Whole] steps
    (prepare, sort, aggregate rescan) contribute nothing; their cost is
    folded into the cycles-per-row observation instead. *)
let rows_remaining t =
  let step_rows cursor (s : Codegen.step) =
    match s.Codegen.range with
    | `Whole -> 0
    | `Table tbl -> max 0 (Table.rows (Engine.table t.db tbl) - cursor)
  in
  match t.rest with
  | [] -> 0
  | head :: rest ->
      step_rows t.cursor head
      + List.fold_left (fun acc s -> acc + step_rows 0 s) 0 rest

(** Smoothed cycles per scan row observed on the current tier; [None]
    until a row-producing quantum has run since the last {!swap}. *)
let observed_cpr t = t.ewma_cpr

(** The IR module behind this execution — what a stronger tier would
    compile, hence what the upgrade estimator prices. *)
let ir_module t = t.cq.Codegen.modul
