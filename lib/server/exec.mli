(** Resumable, morsel-wise execution of a compiled query, with hot-swap
    between back-ends at quantum boundaries.

    All back-ends compile the same codegen result (same function names,
    same state layout), so after {!swap} the remaining quanta are answered
    by the new module; function-pointer fixups in the state block are
    re-applied. *)

type t

(** Allocate and initialize a fresh execution of [cq] using [cm]'s code.
    With [sched] (and more than one lane), parallelizable pipeline bodies
    fan their morsels out over the scheduler's lanes and merge lane-local
    sinks at a barrier when the body's scan depletes. *)
val start :
  ?sched:Morsel_sched.t ->
  Qcomp_engine.Engine.db ->
  Qcomp_codegen.Codegen.compiled ->
  Qcomp_backend.Backend.compiled_module ->
  t

val finished : t -> bool

(** Switch the remaining quanta to another back-end's module for the same
    codegen result. Only legal between quanta. *)
val swap : t -> Qcomp_backend.Backend.compiled_module -> unit

(** Run one quantum ([`Whole] step, [morsel] rows of a serial [`Table]
    step, or [lanes * morsel] rows of a morsel-parallel body); returns its
    simulated {e wall-clock} cycle cost (parallel quanta: max over lanes
    plus the barrier). *)
val step : t -> morsel:int -> [ `Ran of int | `Done ]

(** Drive to completion; [on_quantum] observes each quantum's cycles. *)
val run_to_end : ?on_quantum:(int -> unit) -> t -> morsel:int -> unit

(** Materialized output rows; meaningful once {!finished}. *)
val rows : t -> Qcomp_engine.Engine.cell array list

(** Result record matching {!Qcomp_engine.Engine.execute}'s shape. *)
val result : t -> Qcomp_engine.Engine.result

(** Total simulated work: cycles summed over all lanes (what the query is
    billed). *)
val cycles : t -> int

(** Simulated wall-clock cycles: parallel quanta contribute the max over
    lanes, so [wall_cycles <= cycles] with intra-query parallelism on. *)
val wall_cycles : t -> int

val quanta : t -> int

(** Quantum index of the first hot-swap, if any. *)
val swapped_at : t -> int option

(** {1 Observation — what the tier controller reads} *)

(** Scan rows consumed by [`Table] quanta so far. *)
val rows_done : t -> int

(** Scan rows the remaining [`Table] steps still have to produce. *)
val rows_remaining : t -> int

(** Smoothed (EWMA) cycles per scan row observed on the current tier;
    [None] until a row-producing quantum has run since the last {!swap}. *)
val observed_cpr : t -> float option

(** The IR module behind this execution (what an upgrade would compile). *)
val ir_module : t -> Qcomp_ir.Func.modul

(** {1 Reclamation} *)

(** Recycle every linear-memory block this execution allocated (state
    block, tuple buffers, hash-table arenas, string bodies). Call after
    the output rows have been read; idempotent. *)
val dispose : t -> unit
