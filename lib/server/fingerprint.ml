(** Canonical plan fingerprints for the compiled-code cache.

    A fingerprint is a structural 64-bit hash of a physical plan built from
    the {!Qcomp_support.Hashes} primitives (the same CRC-32C/long-mul-fold
    mix generated query code uses for value hashing). Structurally equal
    plans — however they were constructed — hash identically, which is what
    lets a serving system recognise a repeated query; any difference in
    operator shape, column references, constants, types or table names
    changes the hash. *)

open Qcomp_support
open Qcomp_plan

(* Every node mixes a small constructor tag before its payload so that
   e.g. [Filter (Scan t, p)] and [Project (Scan t, [p])] cannot collide by
   concatenating identical payloads. *)

let tag h t = Hashes.combine h (Hashes.hash64 (Int64.of_int t))
let int h v = Hashes.combine h (Hashes.hash64 (Int64.of_int v))
let i64 h v = Hashes.combine h (Hashes.hash64 v)

let str h s =
  let sh = ref 7L in
  String.iter (fun c -> sh := Hashes.crc32c_byte !sh (Char.code c)) s;
  (* include the length so "" in adjacent positions stays unambiguous *)
  i64 (int h (String.length s)) !sh

let sqlty h (t : Sqlty.t) =
  match t with
  | Sqlty.Int32 -> tag h 1
  | Sqlty.Int64 -> tag h 2
  | Sqlty.Date -> tag h 3
  | Sqlty.Decimal s -> int (tag h 4) s
  | Sqlty.Str -> tag h 5
  | Sqlty.Bool -> tag h 6

let pred_tag = function
  | Expr.Eq -> 1
  | Expr.Ne -> 2
  | Expr.Lt -> 3
  | Expr.Le -> 4
  | Expr.Gt -> 5
  | Expr.Ge -> 6

let rec expr h (e : Expr.t) =
  match e with
  | Expr.Col i -> int (tag h 10) i
  | Expr.Const_int (ty, v) -> i64 (sqlty (tag h 11) ty) v
  | Expr.Const_str s -> str (tag h 12) s
  | Expr.Add (a, b) -> expr (expr (tag h 13) a) b
  | Expr.Sub (a, b) -> expr (expr (tag h 14) a) b
  | Expr.Mul (a, b) -> expr (expr (tag h 15) a) b
  | Expr.Div (a, b) -> expr (expr (tag h 16) a) b
  | Expr.Neg a -> expr (tag h 17) a
  | Expr.Cmp (p, a, b) -> expr (expr (int (tag h 18) (pred_tag p)) a) b
  | Expr.And (a, b) -> expr (expr (tag h 19) a) b
  | Expr.Or (a, b) -> expr (expr (tag h 20) a) b
  | Expr.Not a -> expr (tag h 21) a
  | Expr.Like (a, p) -> str (expr (tag h 22) a) p
  | Expr.Between (v, lo, hi) -> expr (expr (expr (tag h 23) v) lo) hi
  | Expr.Case (whens, els) ->
      let h =
        List.fold_left (fun h (w, t) -> expr (expr (tag h 24) w) t) h whens
      in
      expr (tag h 25) els
  | Expr.Cast (a, ty) -> sqlty (expr (tag h 26) a) ty
  | Expr.Param (ty, i) -> int (sqlty (tag h 27) ty) i

let exprs h es = List.fold_left expr (int h (List.length es)) es

let agg h (a : Algebra.agg) =
  match a with
  | Algebra.Count_star -> tag h 40
  | Algebra.Sum e -> expr (tag h 41) e
  | Algebra.Min e -> expr (tag h 42) e
  | Algebra.Max e -> expr (tag h 43) e
  | Algebra.Avg e -> expr (tag h 44) e

let rec plan_h h (p : Algebra.t) =
  match p with
  | Algebra.Scan { table; filter } -> (
      let h = str (tag h 60) table in
      match filter with None -> tag h 61 | Some f -> expr (tag h 62) f)
  | Algebra.Filter { input; pred } -> expr (plan_h (tag h 63) input) pred
  | Algebra.Project { input; exprs = es } -> exprs (plan_h (tag h 64) input) es
  | Algebra.Hash_join { build; probe; build_keys; probe_keys } ->
      let h = plan_h (tag h 65) build in
      let h = plan_h h probe in
      exprs (exprs h build_keys) probe_keys
  | Algebra.Group_by { input; keys; aggs } ->
      let h = exprs (plan_h (tag h 66) input) keys in
      List.fold_left agg (int h (List.length aggs)) aggs
  | Algebra.Order_by { input; keys; limit } ->
      let h = plan_h (tag h 67) input in
      let h =
        List.fold_left
          (fun h (e, dir) ->
            expr (tag h (match dir with Algebra.Asc -> 68 | Algebra.Desc -> 69)) e)
          (int h (List.length keys))
          keys
      in
      (match limit with None -> tag h 70 | Some n -> int (tag h 71) n)
  | Algebra.Limit { input; n } -> int (plan_h (tag h 72) input) n

let plan p = plan_h 0x51C0DE_CAFEL p

(** Versioned snapshot key: the plan fingerprint with the snapshot format
    version, back-end name and target folded into the seed. Any of them
    changing (an artifact format bump, a different code generator, another
    architecture) yields a different key, so a stale or foreign snapshot
    record can never be looked up — rejection is structural, not a
    comparison someone must remember to write.

    [backend_version] is the back-end's own code-layout generation, for
    back-ends whose output depends on state built outside the query (the
    stencil back-end's library: a record patched from stencil set N must
    never be accepted by a process with set N+1). Back-ends without such
    state use the default 0, keeping their keys unchanged.

    [param_version] is the parameter-extraction format generation
    ({!Qcomp_plan.Paramize.format_version}): snapshot records store
    {e shapes} (plans with parameter holes), so a change to which literals
    are extracted or how holes are numbered silently changes what a stored
    artifact means — old records must stop matching, not bind garbage. *)
let key_v ?(backend_version = 0) ?(param_version = 0) ~version ~backend ~target
    p =
  plan_h
    (str
       (int
          (int (int (tag 0x51C0DE_CAFEL 80) version) backend_version)
          param_version)
       (backend ^ "/" ^ target))
    p
