(** Canonical plan fingerprints for the compiled-code cache.

    Structurally equal plans hash identically; any change to operator
    shape, column references, constants, types or table names changes the
    hash. Fingerprints are the cache identity of a query, so a serving
    system recognises repeats without ever comparing plans directly. *)

(** Structural 64-bit fingerprint of a physical plan. *)
val plan : Qcomp_plan.Algebra.t -> int64
