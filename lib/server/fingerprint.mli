(** Canonical plan fingerprints for the compiled-code cache.

    Structurally equal plans hash identically; any change to operator
    shape, column references, constants, types or table names changes the
    hash. Fingerprints are the cache identity of a query, so a serving
    system recognises repeats without ever comparing plans directly. *)

(** Structural 64-bit fingerprint of a physical plan. *)
val plan : Qcomp_plan.Algebra.t -> int64

(** Versioned snapshot key: {!plan} with the snapshot format [version],
    the back-end name and the target name folded into the seed. Used as
    the lookup identity of code-cache snapshot records so that a snapshot
    written by an older artifact format (or another back-end/architecture)
    is rejected with a clear error, never mis-linked. *)
val key_v :
  ?backend_version:int ->
  ?param_version:int ->
  version:int ->
  backend:string ->
  target:string ->
  Qcomp_plan.Algebra.t ->
  int64
