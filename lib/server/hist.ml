(** Log-bucketed latency histogram.

    Fixed bucket layout: a floor bucket for everything under one
    microsecond, then [buckets_per_octave] geometric buckets per factor of
    two up to ~17 minutes, then one overflow bucket. The layout is static
    so two histograms (e.g. one per worker domain) merge by adding
    counters, and the same recorded values always land in the same buckets
    — a same-seed serving run reproduces the histogram bit-for-bit.

    The histogram is the streaming summary (bounded memory no matter how
    many queries a run serves); the serving report's headline
    p50/p95/p99 numbers are computed exactly from the full latency list by
    {!Report.percentile} and the histogram's {!percentile} (which returns
    the bucket's upper bound, a <=19% overestimate) is the scalable
    stand-in the bucket dump in [BENCH_load.json] is checked against. *)

let floor_s = 1e-6
let buckets_per_octave = 4
let octaves = 30

(* floor + range + overflow *)
let nbuckets = 2 + (buckets_per_octave * octaves)

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable max : float;
}

let create () = { counts = Array.make nbuckets 0; n = 0; sum = 0.0; max = 0.0 }

let bucket_of v =
  if v < floor_s then 0
  else
    let i =
      1
      + int_of_float
          (float_of_int buckets_per_octave *. (Float.log (v /. floor_s) /. Float.log 2.0))
    in
    min (nbuckets - 1) (max 1 i)

(* Upper bound of bucket [i]: the floor for bucket 0, then quarter-powers
   of two. The overflow bucket reports infinity. *)
let upper i =
  if i = 0 then floor_s
  else if i = nbuckets - 1 then infinity
  else floor_s *. (2.0 ** (float_of_int i /. float_of_int buckets_per_octave))

let lower i = if i = 0 then 0.0 else upper (i - 1)

let add t v =
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v > t.max then t.max <- v

let count t = t.n
let max_value t = t.max
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let merge a b =
  let m = create () in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.n <- a.n + b.n;
  m.sum <- a.sum +. b.sum;
  m.max <- Float.max a.max b.max;
  m

(** Nearest-rank percentile resolved to its bucket's upper bound: an
    overestimate of at most one bucket width (2^(1/4), <19%), never an
    underestimate — the conservative direction for a latency objective. *)
let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let rank =
      Stdlib.max 1
        (Stdlib.min t.n (int_of_float (ceil (p *. float_of_int t.n))))
    in
    let acc = ref 0 in
    let found = ref (nbuckets - 1) in
    (try
       Array.iteri
         (fun i c ->
           acc := !acc + c;
           if !acc >= rank then begin
             found := i;
             raise Exit
           end)
         t.counts
     with Exit -> ());
    (* the overflow bucket has no finite upper bound; the recorded max is
       the tightest true statement about it *)
    if !found = nbuckets - 1 then t.max else upper !found
  end

(** Non-empty buckets as [(lower, upper, count)], ascending. *)
let buckets t =
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then out := (lower i, upper i, t.counts.(i)) :: !out
  done;
  !out

let pp fmt t =
  if t.n = 0 then Format.fprintf fmt "empty"
  else begin
    Format.fprintf fmt "n %d  mean %.6fs  max %.6fs " t.n (mean t) t.max;
    List.iter
      (fun (lo, hi, c) ->
        if hi = infinity then Format.fprintf fmt " [%.2e,inf):%d" lo c
        else Format.fprintf fmt " [%.2e,%.2e):%d" lo hi c)
      (buckets t)
  end
