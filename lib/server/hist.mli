(** Log-bucketed latency histogram with a fixed, merge-compatible bucket
    layout: one floor bucket under a microsecond, four geometric buckets
    per factor of two up to ~17 minutes, one overflow bucket. Same values
    always land in the same buckets, so same-seed serving runs reproduce
    the histogram bit-for-bit and per-domain histograms merge by adding
    counters. *)

type t

val create : unit -> t

(** Record one value (seconds). *)
val add : t -> float -> unit

val count : t -> int
val max_value : t -> float
val mean : t -> float

(** Counter-wise sum of two histograms (neither input is modified). *)
val merge : t -> t -> t

(** Nearest-rank percentile resolved to its bucket's upper bound — an
    overestimate of at most one bucket width (<19%), never an
    underestimate. [percentile t 0.5] on an empty histogram is 0. *)
val percentile : t -> float -> float

(** Non-empty buckets as [(lower, upper, count)], ascending; the overflow
    bucket's upper bound is [infinity]. *)
val buckets : t -> (float * float * int) list

val pp : Format.formatter -> t -> unit
