(** Bounded LRU map with hit/miss/eviction/byte accounting.

    O(1) find/add via a hash table over nodes of an intrusive doubly-linked
    list ordered most- to least-recently used. [find] promotes; [add]
    evicts from the tail until the entry count is back under capacity.
    Each entry carries a caller-supplied weight (bytes for the code cache)
    so the cache can report how much it holds and how much it has thrown
    away. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable weight : int;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;  (** total weight of live entries *)
  bytes_evicted : int;  (** total weight of everything evicted so far *)
}

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (** most recently used *)
  mutable tail : ('k, 'v) node option;  (** least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable bytes : int;
  mutable bytes_evicted : int;
  mutable on_drop : 'v -> unit;
      (** called whenever a value leaves the map: eviction or replacement *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  {
    capacity;
    tbl = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    bytes = 0;
    bytes_evicted = 0;
    on_drop = ignore;
  }

(** Install the drop callback. It fires for every value that leaves the
    map — tail eviction and value replacement by {!add} — so owners of
    out-of-band resources (the code cache's compiled modules) can release
    them exactly once per residency. *)
let set_on_drop t f = t.on_drop <- f

let length t = Hashtbl.length t.tbl

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      t.hits <- t.hits + 1;
      promote t n;
      Some n.value
  | None ->
      t.misses <- t.misses + 1;
      None

(** Peek without touching recency or hit/miss counters. *)
let mem t k = Hashtbl.mem t.tbl k

(** Value peek without touching recency or the hit/miss counters. *)
let peek t k = Option.map (fun n -> n.value) (Hashtbl.find_opt t.tbl k)

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.key;
      t.evictions <- t.evictions + 1;
      t.bytes <- t.bytes - n.weight;
      t.bytes_evicted <- t.bytes_evicted + n.weight;
      t.on_drop n.value

let add t k ?(weight = 0) v =
  (match Hashtbl.find_opt t.tbl k with
  | Some n ->
      t.bytes <- t.bytes - n.weight + weight;
      let old = n.value in
      n.value <- v;
      n.weight <- weight;
      promote t n;
      (* re-adding the same value must not drop it *)
      if not (old == v) then t.on_drop old
  | None ->
      let n = { key = k; value = v; weight; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_front t n;
      t.bytes <- t.bytes + weight);
  while length t > t.capacity do
    evict_tail t
  done

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = length t;
    bytes = t.bytes;
    bytes_evicted = t.bytes_evicted;
  }

(** Apply [f] to every live value, most- to least-recently used, without
    touching recency or the counters. *)
let iter t f =
  let rec walk = function
    | None -> ()
    | Some n ->
        f n.value;
        walk n.next
  in
  walk t.head

(** Keys from most- to least-recently used (test/debug aid). *)
let keys_mru t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk (n.key :: acc) n.next
  in
  walk [] t.head
