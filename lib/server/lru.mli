(** Bounded LRU map with hit/miss/eviction/byte accounting.

    The recency structure backing {!Code_cache}: O(1) find/add, eviction
    from the least-recently-used end once the entry count exceeds capacity,
    and a caller-supplied per-entry weight so byte totals can be reported. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;  (** total weight of live entries *)
  bytes_evicted : int;  (** total weight of everything evicted so far *)
}

(** [create ~capacity] holds at most [capacity] entries. Raises
    [Invalid_argument] if [capacity < 1]. *)
val create : capacity:int -> ('k, 'v) t

(** [set_on_drop t f] installs a callback fired for every value leaving
    the map — tail eviction and value replacement by {!add} (but not
    re-adding the physically identical value). Owners of out-of-band
    resources use it to release them exactly once per residency. *)
val set_on_drop : ('k, 'v) t -> ('v -> unit) -> unit

val length : ('k, 'v) t -> int

(** [find t k] promotes [k] to most-recently-used and counts a hit; absent
    keys count a miss. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** Presence test that touches neither recency nor the hit/miss counters. *)
val mem : ('k, 'v) t -> 'k -> bool

(** Value peek that touches neither recency nor the hit/miss counters. *)
val peek : ('k, 'v) t -> 'k -> 'v option

(** [add t k ?weight v] inserts or replaces, promotes to front, then evicts
    least-recently-used entries until back under capacity. *)
val add : ('k, 'v) t -> 'k -> ?weight:int -> 'v -> unit

val stats : ('k, 'v) t -> stats

(** [iter t f] applies [f] to every live value, most- to least-recently
    used; touches neither recency nor the counters. *)
val iter : ('k, 'v) t -> ('v -> unit) -> unit

(** Keys from most- to least-recently used (test/debug aid). *)
val keys_mru : ('k, 'v) t -> 'k list
