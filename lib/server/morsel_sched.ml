(** Intra-query morsel dispatcher: a small pool of execution lanes that a
    resumable execution ({!Exec}) fans pipeline bodies out over.

    Each lane is a fresh {!Qcomp_vm.Emu.context} over the worker's shared
    machine — own registers, flags and cycle counters over shared linear
    memory and the shared code layout — so lanes can run the same compiled
    pipeline function concurrently on disjoint morsels.

    Two modes:
    - simulated (default): lanes run sequentially on the calling domain in
      lane order. Deterministic; wall-clock cycles are modeled as the
      max over lanes by the caller. This is what the discrete-event server
      driver uses.
    - parallel: lanes 1.. run on freshly spawned domains while the caller
      runs lane 0 (the real-domain pool driver). Morsels are then claimed
      dynamically from a shared counter (work stealing-ish: a lane whose
      morsels filter down to little work simply claims more). *)

open Qcomp_vm
module Engine = Qcomp_engine.Engine

type t = {
  db : Engine.db;
  lanes : int;
  emus : Emu.t array;
  parallel : bool;
}

let create ?(parallel = false) (db : Engine.db) ~lanes =
  if lanes < 1 then invalid_arg "Morsel_sched.create: lanes < 1";
  (* contexts are created once and reused across queries: each owns a
     permanent VM stack carved out of linear memory *)
  let emus = Array.init lanes (fun _ -> Emu.context db.Engine.emu) in
  { db; lanes; emus; parallel }

let lanes t = t.lanes
let parallel t = t.parallel
let lane_emu t i = t.emus.(i)

(** Run [f] on every lane index — concurrently on real domains in parallel
    mode (caller takes lane 0), sequentially in lane order otherwise. A
    lane's exception is re-raised only after every lane has finished, so a
    trapping query cannot orphan a domain. *)
let map t (f : int -> 'a) : 'a array =
  if (not t.parallel) || t.lanes = 1 then Array.init t.lanes f
  else begin
    let wrap i () = try Ok (f i) with e -> Error e in
    let doms =
      Array.init (t.lanes - 1) (fun i -> Domain.spawn (wrap (i + 1)))
    in
    let r0 = wrap 0 () in
    let rs = Array.append [| r0 |] (Array.map Domain.join doms) in
    Array.map (function Ok v -> v | Error e -> raise e) rs
  end

(** Shared morsel claim over a row range: lanes [take] disjoint
    [size]-row morsels until the range drains. *)
type claim = { next : int Atomic.t; hi : int; size : int }

let claim ~lo ~hi ~size =
  if size <= 0 then invalid_arg "Morsel_sched.claim: size <= 0";
  { next = Atomic.make lo; hi; size }

let take c =
  let lo = Atomic.fetch_and_add c.next c.size in
  if lo >= c.hi then None else Some (lo, min (lo + c.size) c.hi)
