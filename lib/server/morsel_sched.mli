(** Intra-query morsel dispatcher: execution lanes (one
    {!Qcomp_vm.Emu.context} each over the worker's shared machine) that
    {!Exec} fans morsel-parallel pipeline bodies out over. *)

open Qcomp_vm

type t

(** [create ?parallel db ~lanes] builds a lane pool over [db]'s machine.
    With [parallel:false] (default) lanes run sequentially on the calling
    domain — deterministic, for the discrete-event driver; with
    [parallel:true] lanes 1.. run on spawned domains while the caller runs
    lane 0. Lane contexts are permanent: create one scheduler per worker
    and reuse it across queries. Raises [Invalid_argument] on [lanes < 1]. *)
val create : ?parallel:bool -> Qcomp_engine.Engine.db -> lanes:int -> t

val lanes : t -> int
val parallel : t -> bool

(** The lane's private execution context (shared memory and code). *)
val lane_emu : t -> int -> Emu.t

(** Run [f] on every lane index; parallel mode spawns domains for lanes
    1.. and re-raises a lane's exception only after all lanes finished. *)
val map : t -> (int -> 'a) -> 'a array

(** Shared morsel claim over a row range, for dynamic (work-stealing-ish)
    assignment: lanes [take] disjoint morsels until the range drains. *)
type claim

val claim : lo:int -> hi:int -> size:int -> claim
val take : claim -> (int * int) option
