(** Domain-based parallel serving: real OS-thread workers over one shared
    database, code cache and emulated machine.

    This is the production-shaped counterpart of the discrete-event
    scheduler in {!Server} (which remains the deterministic test double).
    Each worker domain owns a {!Qcomp_engine.Engine.domain_view} — a fresh
    {!Qcomp_vm.Emu.context} over the shared memory and code registries — so
    query execution is genuinely concurrent: registers, flags and cycle
    counters are per-domain, while compiled code, the module cache and the
    runtime dispatch table are shared and mutex-guarded.

    Traffic is {e open-loop}: a feeder domain releases each request at its
    arrival timestamp (wall-clock, offset from run start) into a bounded
    multi-tenant {!Admission} queue — arrivals do not wait for free
    workers, exactly like clients that keep sending regardless of server
    load. When the queue is at its [admission_cap] the request is {e shed}
    (rejected and counted) instead of growing server state without bound.
    Workers block on a condition variable while the queue is empty — an
    idle pool burns no host CPU — and dequeue tenant-fair round-robin.

    Policies mirror the simulator:
    - {b Static}: every query runs the fixed back-end, compiling on its
      worker on a cache miss (the modelled compile charge is still reported
      per query).
    - {b Cached}: adaptive back-end fronted by the shared {!Code_cache};
      misses compile in the foreground, deduplicated across domains by the
      cache's per-shard in-flight table so a burst of identical plans
      compiles once and the rest wait.
    - {b Tiered}: queries start on interpreter bytecode immediately; the
      strong back-end compiles on dedicated background compile domains, and
      at the next morsel boundary after the module lands the execution
      hot-swaps.

    What stays deterministic under parallelism: per-query rows and
    checksums (results are independent of allocation addresses and domain
    interleaving), the set of compiled modules, and the final live-code
    accounting when the cache does not evict. What becomes wall-clock:
    arrival/start/finish/latency metrics, cache hit/miss counts under
    racing misses, shed decisions under an admission cap (queue occupancy
    depends on worker speed), and in Tiered mode the swap point (and hence
    the tier0/tier1 quanta split and exact cycle counts). Differential
    tests therefore compare the {e multiset} of (name, rows, checksum),
    and use a cap at least the stream length when they need zero sheds.

    Lock ordering: the pool mutex is the outermost; {!Code_cache}'s shard
    mutexes and the emulator's layout/registry locks nest inside it (the
    cache also takes its shard mutexes with no pool mutex held — the
    nesting is one-directional, never shard-then-pool). Entries are pinned
    in the same cache critical section as the lookup or insert, so an
    eviction in the return window can never free in-flight code; the bound
    instance a query executes is additionally {e claimed}
    ({!Code_cache.force} [~claim:true]) so another query's literal churn
    cannot dispose it mid-execution. *)

open Qcomp_support
open Qcomp_engine

type mode =
  | Static of Qcomp_backend.Backend.t
  | Cached
  | Tiered

let mode_name = function
  | Static b -> "static:" ^ Qcomp_backend.Backend.name b
  | Cached -> "cached"
  | Tiered -> "tiered"

type config = {
  workers : int;  (** execution workers *)
  compile_slots : int;  (** background compile pool size (Tiered) *)
  morsel : int;  (** rows per execution quantum *)
  cache_capacity : int;  (** module-cache entries *)
  mode : mode;
  reopt : bool;
      (** Tiered only: pick upgrades from observed cycles-per-row at
          morsel boundaries (including second upgrades) instead of the
          one-shot pre-execution estimate *)
  paramize : bool;
      (** Cached/Tiered: normalize incoming plans into (shape, parameter
          vector) so every literal variant of a template shares one cache
          entry; variants after the first pay a microsecond bind instead
          of a compile. Static mode always stays exact. *)
  mean_gap_s : float;  (** mean inter-arrival gap; 0 = all arrive at t=0 *)
  seed : int64;  (** drives the arrival process *)
  admission_cap : int option;
      (** bound on admission-queue occupancy; arrivals beyond it are shed
          (rejected, counted, reported). [None] = unbounded *)
  tenants : int;  (** tenant FIFOs in the admission queue (fair dequeue) *)
  cache_shards : int;
      (** hash shards of the code cache (when the driver creates it);
          1 = the deterministic single-lock layout *)
  intra : int;
      (** intra-query lanes per worker: parallelizable pipeline bodies fan
          each quantum's morsels out over this many execution lanes
          ({!Morsel_sched}); 1 = serial bodies, the classic behavior *)
}

let default_config =
  {
    workers = 4;
    compile_slots = 2;
    morsel = 512;
    cache_capacity = 64;
    mode = Tiered;
    reopt = false;
    paramize = true;
    mean_gap_s = 0.0005;
    seed = 42L;
    admission_cap = None;
    tenants = 1;
    cache_shards = 1;
    intra = 1;
  }

(** Split [plan] into its cache identity: the {e shape} (eligible literals
    replaced by {!Qcomp_plan.Expr.Param} holes) and the extracted literal
    vector in the back-ends' binding representation. Static mode and
    [paramize = false] keep the plan exact; a plan with nothing eligible is
    its own shape with an empty vector, which downstream degenerates to the
    pre-parameterization behavior. *)
let normalize_query config plan =
  let exact = (plan, ([||] : Qcomp_backend.Artifact.param_value array)) in
  match config.mode with
  | Static _ -> exact
  | Cached | Tiered ->
      if not config.paramize then exact
      else
        let shape, vals = Qcomp_plan.Paramize.normalize plan in
        if Array.length vals = 0 then exact
        else
          ( shape,
            Array.map
              (function
                | Qcomp_plan.Paramize.V_int (_, v) ->
                    Qcomp_backend.Artifact.Pv_int v
                | Qcomp_plan.Paramize.V_str s ->
                    Qcomp_backend.Artifact.Pv_str s)
              vals )

(** Shared by both drivers so a bad field fails the same way everywhere —
    previously [workers] raised while [compile_slots] was silently clamped
    to 1, which masked misconfiguration. *)
let validate_config ~driver c =
  let need name v =
    if v < 1 then
      invalid_arg (Printf.sprintf "%s: %s must be positive" driver name)
  in
  need "workers" c.workers;
  need "compile_slots" c.compile_slots;
  need "morsel" c.morsel;
  need "cache_capacity" c.cache_capacity;
  need "tenants" c.tenants;
  need "cache_shards" c.cache_shards;
  need "intra" c.intra;
  match c.admission_cap with
  | Some cap -> need "admission_cap" cap
  | None -> ()

(* The one canonical declaration of the per-query metric record lives in
   {!Report}; both drivers only alias it. *)
type query_metrics = Report.query_metrics

let qm_latency = Report.qm_latency

(** One timed request of the open-loop workload: release [rq_name]/[rq_plan]
    at [rq_arrival] seconds after run start, tagged with the submitting
    tenant. Both drivers consume the same request list, so a traffic trace
    generated once replays identically against the deterministic scheduler
    and the wall-clock pool. *)
type request = {
  rq_name : string;
  rq_plan : Qcomp_plan.Algebra.t;
  rq_arrival : float;  (** seconds after run start *)
  rq_tenant : int;
}

(** The legacy closed-list arrival process as a request list: exponential
    gaps with mean [config.mean_gap_s] drawn from [config.seed] (all at
    t=0 when the gap is zero), single tenant. Exactly the draws
    {!Server.run} has always made, so wrapping a plain stream through this
    changes no deterministic report. *)
let requests_of_stream config stream =
  let rng = Rng.create config.seed in
  let t = ref 0.0 in
  List.map
    (fun (name, plan) ->
      if config.mean_gap_s > 0.0 then
        t := !t +. (-.config.mean_gap_s *. log (1.0 -. Rng.float rng));
      { rq_name = name; rq_plan = plan; rq_arrival = !t; rq_tenant = 0 })
    stream

type qstate = {
  q_name : string;
  q_plan : Qcomp_plan.Algebra.t;  (** the shape when parameterized *)
  q_params : Qcomp_backend.Artifact.param_value array;
      (** this query's literal vector; [[||]] for exact plans *)
  q_exact : Qcomp_plan.Algebra.t;
      (** the original plan with literals in place — what rungs that
          cannot bind parameter holes compile (whole-plan fallback) *)
  q_arrival : float;  (** seconds after run start (the request's stamp) *)
  q_tenant : int;
  mutable q_start : float;
  mutable q_first_s : float option;  (** enqueue -> first-row, once known *)
  mutable q_compile_s : float;
  mutable q_cache_hit : bool;
  (* the back-end currently executing the query's quanta, and the full
     tier path in reverse; only the owning worker writes these *)
  mutable q_cur_tier : string;
  mutable q_tiers : string list;
  (* an upgrade (background compile or parked swap) is in flight; the
     controller makes no new decision until the swap is consumed *)
  mutable q_upgrading : bool;
  (* a finished background compile parks the (tier name, entry) here
     (already pinned for this query, under the pool mutex); the owning
     worker consumes it at the next quantum boundary *)
  q_swap : (string * Code_cache.entry) option Atomic.t;
  mutable q_switch_s : float option;
  mutable q_started_tier0 : bool;
  (* every cache entry this query touches stays pinned until it finishes *)
  mutable q_pinned : Code_cache.entry list;
  (* bound instances this query claimed via [force ~claim:true]; released
     on finish. Only the owning worker touches this list. *)
  mutable q_claims : (Code_cache.entry * Qcomp_backend.Backend.compiled_module) list;
  mutable q_done : bool;  (** written/read under the pool mutex *)
}

(** [run_requests ?cache db ~domains config requests] serves the timed
    [requests] open-loop. *)
let run_requests ?cache db ~domains config requests =
  if domains < 1 then invalid_arg "Pool.run: domains must be positive";
  validate_config ~driver:"Pool.run" config;
  let cache =
    match cache with
    | Some c -> c
    | None ->
        Code_cache.create_sharded ~capacity:config.cache_capacity
          ~shards:config.cache_shards
  in
  let mu = Mutex.create () in
  (* work available / feeder finished; workers block here when idle *)
  let work_cv = Condition.create () in
  let feeder_done = ref false in
  let admission : qstate Admission.t =
    Admission.create ?cap:config.admission_cap ~tenants:config.tenants ()
  in
  let sheds = ref [] in
  (* background (Tiered strong-tier) compiles in flight: key -> waiting
     queries; doubles as the dedup table for the compile queue *)
  let pending : (Code_cache.key, qstate list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let compile_jobs : (Engine.db -> unit) Queue.t = Queue.create () in
  let compile_cv = Condition.create () in
  let compile_closed = ref false in
  let done_q = ref [] in
  let first_error = ref None in
  let record_error exn =
    Mutex.protect mu (fun () ->
        if !first_error = None then first_error := Some exn)
  in
  let t0 = Timing.now () in
  (* Callers hold [mu]. *)
  let pin_locked q e =
    Code_cache.pin cache e;
    q.q_pinned <- e :: q.q_pinned
  in
  let unpin_all_locked q =
    q.q_done <- true;
    (* claims first: release may dispose an over-cap instance, which must
       happen while its entry is still pinned-or-live *)
    List.iter (fun (e, cm) -> Code_cache.release cache e cm) q.q_claims;
    q.q_claims <- [];
    List.iter (fun e -> Code_cache.unpin cache e) q.q_pinned;
    q.q_pinned <- []
  in
  (* Foreground lookup-or-compile. Cross-domain dedup and the
     pin-with-lookup atomicity both live in the cache now (per-shard
     in-flight table + [~pin]); the pool just records the pin for the
     end-of-query unpin. [stats:false] keeps the lookup out of the
     hit/miss counters (Static mode's semantics are "no cache"). *)
  let get_entry ?(stats = true) q view ~backend ~name plan =
    let e, hit =
      Code_cache.get_or_compile cache view ~backend ~params:q.q_params ~stats
        ~pin:true ~name plan
    in
    Mutex.protect mu (fun () -> q.q_pinned <- e :: q.q_pinned);
    (e, hit)
  in
  (* Background compile body, run on a compile domain. The compiling
     domain holds a creation pin across the insert so the entry cannot be
     evicted-and-freed before waiters pin it. *)
  let bg_compile ~backend ~params ~name plan k view =
    let e =
      Code_cache.compile_uncached cache view ~backend ~params ~name plan
    in
    Mutex.protect mu (fun () ->
        Code_cache.pin cache e;
        Code_cache.insert cache k e;
        let waiters =
          match Hashtbl.find_opt pending k with Some w -> !w | None -> []
        in
        Hashtbl.remove pending k;
        List.iter
          (fun q ->
            (* a query that drained on tier 0 must not pin (nobody would
               unpin) nor park a swap *)
            if not q.q_done then begin
              pin_locked q e;
              Atomic.set q.q_swap (Some (k.Code_cache.ck_backend, e))
            end)
          waiters;
        Code_cache.unpin cache e)
  in
  let submit_bg q ~backend ~params ~name plan k =
    Mutex.protect mu (fun () ->
        match Hashtbl.find_opt pending k with
        | Some waiters -> waiters := q :: !waiters
        | None ->
            Hashtbl.replace pending k (ref [ q ]);
            Queue.push (bg_compile ~backend ~params ~name plan k) compile_jobs;
            Condition.signal compile_cv)
  in
  (* The observation-driven tier controller, consulted after each quantum
     in reopt mode. One upgrade in flight at a time: the next decision
     waits until the parked swap is consumed, so a second upgrade (e.g.
     directemit -> cranelift) only triggers once the first tier's own
     observed rate still leaves a paying candidate. An already-resident
     stronger module costs nothing to adopt, so it is priced at zero. *)
  let consider_upgrade q view ex =
    if (not q.q_upgrading) && not (Exec.finished ex) then
      match Exec.observed_cpr ex with
      | None -> ()
      | Some cpr -> (
          let rows_remaining = Exec.rows_remaining ex in
          if rows_remaining > 0 then
            let cands =
              List.map
                (fun (nm, b) ->
                  (* a rung that cannot bind parameter holes falls back to
                     compiling the exact whole plan (per-query keyed) —
                     observed work justified spending real compile time, so
                     the strong back-ends stay reachable *)
                  let plan, params =
                    if
                      Array.length q.q_params > 0
                      && not (Qcomp_backend.Backend.supports_params b)
                    then (q.q_exact, [||])
                    else (q.q_plan, q.q_params)
                  in
                  let k = Code_cache.key view ~backend:b plan in
                  let compile_s =
                    match Code_cache.find_nostat cache k with
                    | Some _ -> 0.0
                    | None ->
                        Costmodel.compile_seconds ~backend:nm
                          (Exec.ir_module ex)
                  in
                  (nm, b, k, plan, params, compile_s))
                (Engine.stronger_than view q.q_cur_tier)
            in
            match
              Costmodel.best_upgrade ~cur:q.q_cur_tier ~cpr ~rows_remaining
                (List.map (fun (nm, _, _, _, _, c) -> (nm, c)) cands)
            with
            | None -> ()
            | Some (nm, _) ->
                let _, backend, k, plan, params, _ =
                  List.find (fun (n, _, _, _, _, _) -> String.equal n nm) cands
                in
                q.q_upgrading <- true;
                let cached =
                  Mutex.protect mu (fun () ->
                      match Code_cache.find cache k with
                      | Some e ->
                          pin_locked q e;
                          Some e
                      | None -> None)
                in
                (match cached with
                | Some e -> Atomic.set q.q_swap (Some (nm, e))
                | None -> submit_bg q ~backend ~params ~name:q.q_name plan k))
  in
  (* Execute [q] to completion starting on [e]'s module, hot-swapping at a
     quantum boundary if a background compile parks a stronger one. *)
  let run_exec q view sched (e : Code_cache.entry) =
    let cq, cm, fresh =
      Code_cache.force cache view ~params:q.q_params ~claim:true e
    in
    q.q_claims <- (e, cm) :: q.q_claims;
    if fresh && Array.length q.q_params > 0 then
      q.q_compile_s <- q.q_compile_s +. Costmodel.bind_seconds;
    let ex = Exec.start ?sched view cq cm in
    Fun.protect ~finally:(fun () -> Exec.dispose ex) @@ fun () ->
    let reopt = config.reopt && config.mode = Tiered in
    let rec loop () =
      (match Atomic.exchange q.q_swap None with
      | Some (nm, se) when not (Exec.finished ex) ->
          let _, scm, sfresh =
            Code_cache.force cache view ~params:q.q_params ~claim:true se
          in
          q.q_claims <- (se, scm) :: q.q_claims;
          if sfresh && Array.length q.q_params > 0 then
            q.q_compile_s <- q.q_compile_s +. Costmodel.bind_seconds;
          Exec.swap ex scm;
          q.q_cur_tier <- nm;
          q.q_tiers <- nm :: q.q_tiers;
          q.q_upgrading <- false;
          if q.q_switch_s = None then
            q.q_switch_s <- Some (Timing.now () -. t0 -. q.q_start)
      | _ -> ());
      match Exec.step ex ~morsel:config.morsel with
      | `Done ->
          if q.q_first_s = None then
            q.q_first_s <- Some (Timing.now () -. t0 -. q.q_arrival)
      | `Ran _ ->
          if q.q_first_s = None then
            q.q_first_s <- Some (Timing.now () -. t0 -. q.q_arrival);
          if reopt then consider_upgrade q view ex;
          loop ()
    in
    loop ();
    let r = Exec.result ex in
    let tier0, tier1 =
      match Exec.swapped_at ex with
      | Some at -> (at, Exec.quanta ex - at)
      | None ->
          if q.q_started_tier0 then (Exec.quanta ex, 0) else (0, Exec.quanta ex)
    in
    let finish = Timing.now () -. t0 in
    let qm =
      {
        Report.qm_name = q.q_name;
        qm_fp = Fingerprint.plan q.q_plan;
        qm_backend = q.q_cur_tier;
        qm_arrival = q.q_arrival;
        qm_start = q.q_start;
        qm_finish = finish;
        qm_compile_s = q.q_compile_s;
        qm_cache_hit = q.q_cache_hit;
        qm_switch_s = q.q_switch_s;
        qm_quanta_tier0 = tier0;
        qm_quanta_tier1 = tier1;
        qm_tiers = List.rev q.q_tiers;
        qm_exec_cycles = r.Engine.exec_cycles;
        qm_rows = r.Engine.output_count;
        qm_checksum =
          (* with intra-query lanes the barrier merge emits rows in lane
             order, not sequential insert order: checksum the sorted
             multiset so the sum is lane-count-invariant *)
          (if config.intra > 1 then
             Engine.checksum (List.sort compare r.Engine.rows)
           else Engine.checksum r.Engine.rows);
        qm_tenant = q.q_tenant;
        qm_first_s =
          (match q.q_first_s with
          | Some s -> s
          | None -> finish -. q.q_arrival);
      }
    in
    Mutex.protect mu (fun () ->
        unpin_all_locked q;
        done_q := qm :: !done_q)
  in
  (* Tier-0 start on interpreter bytecode (shared by the static-estimate
     and observation-driven Tiered paths). *)
  let start_tier0 q view =
    let ie, ihit =
      get_entry q view ~backend:Engine.interpreter ~name:q.q_name q.q_plan
    in
    if not ihit then q.q_compile_s <- ie.Code_cache.ce_compile_s;
    q.q_started_tier0 <- true;
    q.q_cur_tier <- "interpreter";
    q.q_tiers <- [ "interpreter" ];
    ie
  in
  let exec_query q view sched =
    q.q_start <- Timing.now () -. t0;
    match config.mode with
    | Static backend ->
        (* no cache semantics: charge the full modelled compile every time
           (the module itself is memoized host-side) and keep the lookups
           out of the hit/miss stats — a printed hit-rate would be a lie *)
        let e, _hit =
          get_entry ~stats:false q view ~backend ~name:q.q_name q.q_plan
        in
        q.q_cur_tier <- Qcomp_backend.Backend.name backend;
        q.q_tiers <- [ q.q_cur_tier ];
        q.q_compile_s <- e.Code_cache.ce_compile_s;
        run_exec q view sched e
    | Cached ->
        let bname, backend = Engine.adaptive_backend view q.q_plan in
        let bname, backend =
          (* parameterized shapes route to the strongest rung that can
             bind holes; others would recompile per literal vector *)
          if Array.length q.q_params > 0 then
            Engine.clamp_param_capable view bname
          else (bname, backend)
        in
        q.q_cur_tier <- bname;
        q.q_tiers <- [ bname ];
        let e, hit = get_entry q view ~backend ~name:q.q_name q.q_plan in
        q.q_cache_hit <- hit;
        if not hit then q.q_compile_s <- e.Code_cache.ce_compile_s;
        run_exec q view sched e
    | Tiered when config.reopt -> (
        (* observation-driven: no pre-execution estimate. Start on the
           strongest already-resident rung (free), else on interpreter
           bytecode; the controller upgrades from observed cycles. The
           ladder probe is stat-free — scanning every rung per query would
           otherwise drown the hit-rate in bookkeeping misses. *)
        let resident =
          List.find_map
            (fun (nm, b) ->
              if String.equal nm "interpreter" then None
              else
                (* non-param rungs cache the whole-plan fallback under the
                   exact plan's key *)
                let plan =
                  if
                    Array.length q.q_params > 0
                    && not (Qcomp_backend.Backend.supports_params b)
                  then q.q_exact
                  else q.q_plan
                in
                let k = Code_cache.key view ~backend:b plan in
                Mutex.protect mu (fun () ->
                    match Code_cache.find_nostat cache k with
                    | Some e ->
                        pin_locked q e;
                        Some (nm, e)
                    | None -> None))
            (List.rev (Engine.tier_ladder view))
        in
        match resident with
        | Some (nm, e) ->
            q.q_cache_hit <- true;
            q.q_cur_tier <- nm;
            q.q_tiers <- [ nm ];
            run_exec q view sched e
        | None ->
            let ie = start_tier0 q view in
            run_exec q view sched ie)
    | Tiered -> (
        let bname, backend = Engine.adaptive_backend view q.q_plan in
        let bname, backend =
          if Array.length q.q_params > 0 then
            Engine.clamp_param_capable view bname
          else (bname, backend)
        in
        if bname = "interpreter" then begin
          (* nothing stronger to tier to: serve straight from bytecode *)
          let e, hit =
            get_entry q view ~backend:Engine.interpreter ~name:q.q_name
              q.q_plan
          in
          q.q_cache_hit <- hit;
          q.q_started_tier0 <- true;
          q.q_cur_tier <- "interpreter";
          q.q_tiers <- [ "interpreter" ];
          if not hit then q.q_compile_s <- e.Code_cache.ce_compile_s;
          run_exec q view sched e
        end
        else
          let k = Code_cache.key view ~backend q.q_plan in
          let strong =
            Mutex.protect mu (fun () ->
                match Code_cache.find cache k with
                | Some e ->
                    pin_locked q e;
                    Some e
                | None -> None)
          in
          match strong with
          | Some e ->
              (* strong code already cached: start on it outright *)
              q.q_cache_hit <- true;
              q.q_cur_tier <- bname;
              q.q_tiers <- [ bname ];
              run_exec q view sched e
          | None ->
              (* tier 0 now, strong tier on the background compile pool *)
              let ie = start_tier0 q view in
              submit_bg q ~backend ~params:q.q_params ~name:q.q_name q.q_plan k;
              run_exec q view sched ie)
  in
  (* The feeder releases requests open-loop at their arrival stamps: shed
     or admit at the stamp, independent of worker progress. Sleeping
     between releases (instead of workers polling a pre-filled queue) is
     what lets idle workers block. *)
  let feeder () =
    let ordered =
      List.stable_sort
        (fun a b -> compare a.rq_arrival b.rq_arrival)
        requests
    in
    List.iter
      (fun rq ->
        let dt = t0 +. rq.rq_arrival -. Timing.now () in
        if dt > 0.0 then Unix.sleepf dt;
        let shape, params = normalize_query config rq.rq_plan in
        let q =
          {
            q_name = rq.rq_name;
            q_plan = shape;
            q_params = params;
            q_exact = rq.rq_plan;
            q_arrival = rq.rq_arrival;
            q_tenant = rq.rq_tenant;
            q_start = 0.0;
            q_first_s = None;
            q_compile_s = 0.0;
            q_cache_hit = false;
            q_cur_tier = "";
            q_tiers = [];
            q_upgrading = false;
            q_swap = Atomic.make None;
            q_switch_s = None;
            q_started_tier0 = false;
            q_pinned = [];
            q_claims = [];
            q_done = false;
          }
        in
        Mutex.protect mu (fun () ->
            if Admission.offer admission ~tenant:rq.rq_tenant q then
              Condition.signal work_cv
            else
              sheds :=
                {
                  Report.sh_name = rq.rq_name;
                  sh_tenant = rq.rq_tenant;
                  sh_arrival = rq.rq_arrival;
                }
                :: !sheds))
      ordered;
    Mutex.protect mu (fun () ->
        feeder_done := true;
        Condition.broadcast work_cv)
  in
  (* Workers block on [work_cv] while the queue is empty — no mutex
     polling, no spinning: an idle pool burns no host CPU. They exit when
     the feeder has finished and the queue has drained. *)
  let worker () =
    let view = Engine.domain_view db in
    (* intra-query lanes nest inside the worker: its queries fan morsels
       out over [intra] further domains at parallelizable pipeline bodies *)
    let sched =
      if config.intra > 1 then
        Some (Morsel_sched.create ~parallel:true view ~lanes:config.intra)
      else None
    in
    let rec loop () =
      Mutex.lock mu;
      let rec next () =
        match Admission.take admission with
        | Some q ->
            Mutex.unlock mu;
            Some q
        | None ->
            if !feeder_done then begin
              Mutex.unlock mu;
              None
            end
            else begin
              Condition.wait work_cv mu;
              next ()
            end
      in
      match next () with
      | None -> ()
      | Some q ->
          (try exec_query q view sched
           with exn ->
             record_error exn;
             Mutex.protect mu (fun () -> unpin_all_locked q));
          loop ()
    in
    loop ()
  in
  (* Compile domains drain the background queue to empty even after the
     workers finish, so a run leaves the cache in the same warmed state the
     simulator would (every submitted compile lands). *)
  let compile_worker () =
    let view = Engine.domain_view db in
    let rec loop () =
      Mutex.lock mu;
      let rec take () =
        if not (Queue.is_empty compile_jobs) then Some (Queue.pop compile_jobs)
        else if !compile_closed then None
        else begin
          Condition.wait compile_cv mu;
          take ()
        end
      in
      match take () with
      | None -> Mutex.unlock mu
      | Some job ->
          Mutex.unlock mu;
          (try job view with exn -> record_error exn);
          loop ()
    in
    loop ()
  in
  let n_compile = match config.mode with Tiered -> config.compile_slots | _ -> 0 in
  let compilers = List.init n_compile (fun _ -> Domain.spawn compile_worker) in
  let feeder_d = Domain.spawn feeder in
  let workers = List.init domains (fun _ -> Domain.spawn worker) in
  Domain.join feeder_d;
  List.iter Domain.join workers;
  Mutex.protect mu (fun () ->
      compile_closed := true;
      Condition.broadcast compile_cv);
  List.iter Domain.join compilers;
  (match !first_error with Some exn -> raise exn | None -> ());
  let queries = List.rev !done_q in
  Report.assemble db cache
    ~mode:(mode_name config.mode)
    ~makespan:(Timing.now () -. t0)
    ~sheds:(List.rev !sheds)
    ~queue_peak:(Admission.peak admission)
    queries

let run ?cache db ~domains config stream =
  run_requests ?cache db ~domains config (requests_of_stream config stream)
