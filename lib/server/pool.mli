(** Domain-based parallel serving: real OS-thread workers over one shared
    database, code cache and emulated machine.

    The production-shaped counterpart of the discrete-event scheduler in
    {!Server} (the deterministic test double). An open-loop feeder domain
    releases requests at their arrival stamps into a bounded multi-tenant
    {!Admission} queue (arrivals beyond the cap are shed and counted);
    worker domains block on a condition variable while the queue is empty
    and execute queries concurrently, each through its own
    {!Qcomp_engine.Engine.domain_view}; compiled code, the module cache and
    the runtime dispatch table are shared and lock-guarded. Per-query rows
    and checksums are deterministic (independent of interleaving); timing
    metrics — and shed decisions under a cap — are wall-clock. *)

type mode =
  | Static of Qcomp_backend.Backend.t
  | Cached
  | Tiered

val mode_name : mode -> string

type config = {
  workers : int;  (** execution workers *)
  compile_slots : int;  (** background compile pool size (Tiered) *)
  morsel : int;  (** rows per execution quantum *)
  cache_capacity : int;  (** module-cache entries *)
  mode : mode;
  reopt : bool;
      (** Tiered only: pick upgrades from observed cycles-per-row at
          morsel boundaries (including second upgrades) instead of the
          one-shot pre-execution estimate *)
  paramize : bool;
      (** normalize incoming plans into (shape, literal vector) so the code
          cache is keyed per shape rather than per query; [Static] mode
          always serves exact plans regardless *)
  mean_gap_s : float;  (** mean inter-arrival gap; 0 = all arrive at t=0 *)
  seed : int64;  (** drives the arrival process *)
  admission_cap : int option;
      (** bound on admission-queue occupancy; arrivals beyond it are shed
          (rejected, counted, reported). [None] = unbounded *)
  tenants : int;  (** tenant FIFOs in the admission queue (fair dequeue) *)
  cache_shards : int;
      (** hash shards of the code cache (when the driver creates it);
          1 = the deterministic single-lock layout *)
  intra : int;
      (** intra-query lanes per worker: parallelizable pipeline bodies fan
          each quantum's morsels out over this many execution lanes
          ({!Morsel_sched}); 1 = serial bodies, the classic behavior *)
}

(** Tiered (static estimate), 4 workers, 2 compile slots, 512-row morsels,
    unbounded admission, 1 tenant, 1 cache shard. *)
val default_config : config

(** Raise [Invalid_argument] unless [workers], [compile_slots], [morsel],
    [cache_capacity], [tenants], [cache_shards] and (when given)
    [admission_cap] are all positive; [driver] prefixes the message. Both
    serving drivers validate with this, so misconfiguration fails the same
    way everywhere instead of being silently clamped. *)
val validate_config : driver:string -> config -> unit

(** Split an incoming plan into its shape (eligible literals replaced by
    {!Qcomp_plan.Expr.Param} holes) and the extracted literal vector in the
    back-ends' binding representation. [Static] mode and
    [paramize = false] keep the plan exact ([([||])] vector); a plan with
    nothing eligible is its own shape with an empty vector. Shared by both
    serving drivers so normalization can never drift between them. *)
val normalize_query :
  config ->
  Qcomp_plan.Algebra.t ->
  Qcomp_plan.Algebra.t * Qcomp_backend.Artifact.param_value array

(** Alias of the one canonical metric record, {!Report.query_metrics};
    read the fields through {!Report}. *)
type query_metrics = Report.query_metrics

val qm_latency : query_metrics -> float

(** One timed request of an open-loop workload: release
    [rq_name]/[rq_plan] at [rq_arrival] seconds after run start, tagged
    with the submitting tenant. Both drivers consume the same request
    list, so a traffic trace generated once replays identically against
    the deterministic scheduler and the wall-clock pool. *)
type request = {
  rq_name : string;
  rq_plan : Qcomp_plan.Algebra.t;
  rq_arrival : float;  (** seconds after run start *)
  rq_tenant : int;
}

(** The legacy closed-list arrival process as a request list: exponential
    gaps with mean [config.mean_gap_s] drawn from [config.seed] (all at
    t=0 when the gap is zero), single tenant — exactly the draws
    {!Server.run} has always made on a plain stream. *)
val requests_of_stream :
  config -> (string * Qcomp_plan.Algebra.t) list -> request list

(** [run_requests ?cache db ~domains config requests] serves the timed
    [requests] open-loop on [domains] worker domains (plus
    [config.compile_slots] background compile domains in Tiered mode): a
    feeder domain admits (or sheds, at [config.admission_cap]) each
    request at its arrival stamp, idle workers block until work arrives.
    Returns the full report — per-query metrics in completion order,
    sheds in arrival order, queue peak, tail latencies — assembled by the
    same {!Report.assemble} the discrete-event driver uses (timing
    metrics here are wall-clock). The first exception raised by any query
    is re-raised after all domains join; completed queries keep their
    metrics and every pin and claim is released either way. *)
val run_requests :
  ?cache:Code_cache.t ->
  Qcomp_engine.Engine.db ->
  domains:int ->
  config ->
  request list ->
  Report.t

(** [run ?cache db ~domains config stream] is
    [run_requests ?cache db ~domains config
     (requests_of_stream config stream)]. *)
val run :
  ?cache:Code_cache.t ->
  Qcomp_engine.Engine.db ->
  domains:int ->
  config ->
  (string * Qcomp_plan.Algebra.t) list ->
  Report.t
