(** Domain-based parallel serving: real OS-thread workers over one shared
    database, code cache and emulated machine.

    The production-shaped counterpart of the discrete-event scheduler in
    {!Server} (the deterministic test double). Worker domains execute
    queries concurrently, each through its own
    {!Qcomp_engine.Engine.domain_view}; compiled code, the module cache and
    the runtime dispatch table are shared and lock-guarded. Per-query rows
    and checksums are deterministic (independent of interleaving); timing
    metrics are wall-clock. *)

type mode =
  | Static of Qcomp_backend.Backend.t
  | Cached
  | Tiered

val mode_name : mode -> string

type config = {
  workers : int;  (** execution workers *)
  compile_slots : int;  (** background compile pool size (Tiered) *)
  morsel : int;  (** rows per execution quantum *)
  cache_capacity : int;  (** module-cache entries *)
  mode : mode;
  reopt : bool;
      (** Tiered only: pick upgrades from observed cycles-per-row at
          morsel boundaries (including second upgrades) instead of the
          one-shot pre-execution estimate *)
  paramize : bool;
      (** normalize incoming plans into (shape, literal vector) so the code
          cache is keyed per shape rather than per query; [Static] mode
          always serves exact plans regardless *)
  mean_gap_s : float;  (** mean inter-arrival gap; 0 = all arrive at t=0 *)
  seed : int64;  (** drives the arrival process *)
}

(** Tiered (static estimate), 4 workers, 2 compile slots, 512-row morsels. *)
val default_config : config

(** Raise [Invalid_argument] unless [workers], [compile_slots], [morsel]
    and [cache_capacity] are all positive; [driver] prefixes the message.
    Both serving drivers validate with this, so misconfiguration fails the
    same way everywhere instead of being silently clamped. *)
val validate_config : driver:string -> config -> unit

(** Split an incoming plan into its shape (eligible literals replaced by
    {!Qcomp_plan.Expr.Param} holes) and the extracted literal vector in the
    back-ends' binding representation. [Static] mode and
    [paramize = false] keep the plan exact ([([||])] vector); a plan with
    nothing eligible is its own shape with an empty vector. Shared by both
    serving drivers so normalization can never drift between them. *)
val normalize_query :
  config ->
  Qcomp_plan.Algebra.t ->
  Qcomp_plan.Algebra.t * Qcomp_backend.Artifact.param_value array

type query_metrics = Report.query_metrics = {
  qm_name : string;
  qm_fp : int64;
  qm_backend : string;  (** back-end that finished the query *)
  qm_arrival : float;
  qm_start : float;
  qm_finish : float;
  qm_compile_s : float;  (** foreground compile charged on the worker *)
  qm_cache_hit : bool;  (** strong-tier module came from the cache *)
  qm_switch_s : float option;  (** time of the first hot-swap since start *)
  qm_quanta_tier0 : int;
  qm_quanta_tier1 : int;
  qm_tiers : string list;
      (** back-ends the query executed on, in order (length > 2 means the
          controller upgraded more than once) *)
  qm_exec_cycles : int;
  qm_rows : int;
  qm_checksum : int64;
}

val qm_latency : query_metrics -> float

(** [run ?cache db ~domains config stream] serves [stream] on [domains]
    worker domains (plus [config.compile_slots] background compile domains
    in Tiered mode) and returns the full report — per-query metrics in
    completion order plus the aggregates, assembled by the same
    {!Report.assemble} the discrete-event driver uses (timing metrics here
    are wall-clock). The first exception raised by any query is re-raised
    after all domains join; completed queries keep their metrics and every
    pin is released either way. *)
val run :
  ?cache:Code_cache.t ->
  Qcomp_engine.Engine.db ->
  domains:int ->
  config ->
  (string * Qcomp_plan.Algebra.t) list ->
  Report.t
