(** Serving-run reports: per-query metrics and the aggregated summary.

    The one place report shape and assembly live. Both serving drivers —
    the deterministic discrete-event scheduler ({!Server.run}) and the
    domain-parallel pool ({!Pool.run}) — produce their per-query
    {!query_metrics} in completion order and fold them through
    {!assemble}, so the two drivers can never drift apart in what they
    measure or how latency percentiles, throughput, cache and memory
    accounting are computed. *)

open Qcomp_engine

type query_metrics = {
  qm_name : string;
  qm_fp : int64;
  qm_backend : string;  (** back-end that finished the query *)
  qm_arrival : float;
  qm_start : float;
  qm_finish : float;
  qm_compile_s : float;  (** foreground compile charged on the worker *)
  qm_cache_hit : bool;  (** strong-tier module came from the cache *)
  qm_switch_s : float option;  (** time of the first hot-swap since start *)
  qm_quanta_tier0 : int;
  qm_quanta_tier1 : int;
  qm_tiers : string list;
      (** back-ends the query executed on, in order (length > 2 means the
          controller upgraded more than once) *)
  qm_exec_cycles : int;
  qm_rows : int;
  qm_checksum : int64;
  qm_tenant : int;  (** traffic-generator tenant tag (0 single-tenant) *)
  qm_first_s : float;
      (** enqueue -> first-row latency: arrival to the end of the quantum
          that produced the first morsel of output *)
}

let qm_latency q = q.qm_finish -. q.qm_arrival

(** A query the admission queue rejected at its cap: name, tenant and
    arrival time — enough to account for it and (under the deterministic
    driver) to assert the exact shed set. *)
type shed = { sh_name : string; sh_tenant : int; sh_arrival : float }

type t = {
  r_mode : string;
  r_queries : query_metrics list;  (** completion order *)
  r_makespan : float;  (** time of the last completion *)
  r_total_latency : float;  (** sum of per-query latencies *)
  r_mean_latency : float;
  r_p50_latency : float;
  r_p95_latency : float;
  r_p99_latency : float;
  r_max_latency : float;
  r_p50_first_row : float;  (** enqueue -> first-row percentiles *)
  r_p95_first_row : float;
  r_p99_first_row : float;
  r_compile_stall_s : float;
      (** total foreground compile seconds charged on workers — time
          queries stalled waiting on a compile instead of executing *)
  r_throughput : float;  (** completed queries per second *)
  r_switchovers : int;
  r_sheds : shed list;  (** rejected at the admission cap, arrival order *)
  r_queue_peak : int;  (** admission-queue occupancy high-water mark *)
  r_lat_hist : Hist.t;  (** end-to-end latency histogram *)
  r_first_hist : Hist.t;  (** first-row latency histogram *)
  r_cache : Lru.stats;
  r_bytes_freed : int;  (** code bytes returned to the region allocator *)
  r_live_code_bytes : int;  (** resident generated code at end of run *)
  r_peak_code_bytes : int;  (** high-water mark of resident code *)
  r_live_data_bytes : int;
      (** linear-memory data bytes still allocated at end of run (tables,
          stacks, module GOTs — per-query blocks must all be recycled) *)
  r_peak_data_bytes : int;  (** high-water mark of allocated data bytes *)
  r_freed_data_bytes : int;  (** cumulative data bytes recycled *)
  r_shape_hits : int;
      (** parameterized lookups that found the shape's artifact cached but
          had to bind a new literal vector *)
  r_exact_hits : int;
      (** parameterized lookups that found an already-bound instance for the
          exact literal vector *)
  r_binds : int;  (** parameter-vector bind (re-link) operations *)
  r_bind_s : float;  (** modelled seconds spent binding parameter vectors ([r_binds] x {!Costmodel.bind_seconds}, deterministic like every other report duration) *)
}

(* Nearest-rank percentile over an ascending array. *)
let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
      let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) idx))

let assemble db cache ~mode ~makespan ?(sheds = []) ?(queue_peak = 0) queries =
  let lats = Array.of_list (List.map qm_latency queries) in
  Array.sort compare lats;
  let firsts = Array.of_list (List.map (fun q -> q.qm_first_s) queries) in
  Array.sort compare firsts;
  let n = List.length queries in
  let total_latency = Array.fold_left ( +. ) 0.0 lats in
  let lat_hist = Hist.create () in
  Array.iter (Hist.add lat_hist) lats;
  let first_hist = Hist.create () in
  Array.iter (Hist.add first_hist) firsts;
  {
    r_mode = mode;
    r_queries = queries;
    r_makespan = makespan;
    r_total_latency = total_latency;
    r_mean_latency = (if n > 0 then total_latency /. float_of_int n else 0.0);
    r_p50_latency = percentile lats 0.50;
    r_p95_latency = percentile lats 0.95;
    r_p99_latency = percentile lats 0.99;
    r_max_latency =
      (if Array.length lats > 0 then lats.(Array.length lats - 1) else 0.0);
    r_p50_first_row = percentile firsts 0.50;
    r_p95_first_row = percentile firsts 0.95;
    r_p99_first_row = percentile firsts 0.99;
    r_compile_stall_s =
      List.fold_left (fun acc q -> acc +. q.qm_compile_s) 0.0 queries;
    r_throughput = (if makespan > 0.0 then float_of_int n /. makespan else 0.0);
    r_switchovers =
      List.length (List.filter (fun q -> q.qm_switch_s <> None) queries);
    r_sheds = sheds;
    r_queue_peak = queue_peak;
    r_lat_hist = lat_hist;
    r_first_hist = first_hist;
    r_cache = Code_cache.stats cache;
    r_bytes_freed = (Code_cache.mem_stats cache).Code_cache.ms_bytes_freed;
    r_live_code_bytes = Qcomp_vm.Emu.live_code_bytes db.Engine.emu;
    r_peak_code_bytes = Qcomp_vm.Emu.peak_code_bytes db.Engine.emu;
    r_live_data_bytes = Qcomp_vm.Memory.live_data_bytes (Engine.memory db);
    r_peak_data_bytes = Qcomp_vm.Memory.peak_data_bytes (Engine.memory db);
    r_freed_data_bytes = Qcomp_vm.Memory.freed_data_bytes (Engine.memory db);
    r_shape_hits = (Code_cache.param_stats cache).Code_cache.ps_shape_hits;
    r_exact_hits = (Code_cache.param_stats cache).Code_cache.ps_exact_hits;
    r_binds = (Code_cache.param_stats cache).Code_cache.ps_binds;
    (* modelled, not ps_bind_host_s: report durations must be
       byte-identical across same-seed runs *)
    r_bind_s =
      float_of_int (Code_cache.param_stats cache).Code_cache.ps_binds
      *. Costmodel.bind_seconds;
  }

let pp_query fmt q =
  Format.fprintf fmt
    "%-8s %-12s lat %9.6fs  compile %9.6fs  %s%s%s  rows %5d  cycles %9d  sum %016Lx"
    q.qm_name q.qm_backend (qm_latency q) q.qm_compile_s
    (if q.qm_cache_hit then "hit " else "miss")
    (match q.qm_switch_s with
    | Some s -> Format.asprintf "  swap@%.6fs (%d+%d quanta)" s q.qm_quanta_tier0 q.qm_quanta_tier1
    | None -> "")
    (if List.length q.qm_tiers > 1 then
       "  tiers " ^ String.concat "->" q.qm_tiers
     else "")
    q.qm_rows q.qm_exec_cycles q.qm_checksum

let pp ?(per_query = false) fmt r =
  Format.fprintf fmt "mode %-18s queries %d@." r.r_mode (List.length r.r_queries);
  if per_query then
    List.iter (fun q -> Format.fprintf fmt "  %a@." pp_query q) r.r_queries;
  Format.fprintf fmt
    "  makespan %.6fs  total-latency %.6fs  mean %.6fs  p50 %.6fs  p95 %.6fs  max %.6fs@."
    r.r_makespan r.r_total_latency r.r_mean_latency r.r_p50_latency
    r.r_p95_latency r.r_max_latency;
  Format.fprintf fmt "  throughput %.1f q/s  switchovers %d@." r.r_throughput
    r.r_switchovers;
  Format.fprintf fmt
    "  tail: p99 %.6fs  first-row p50 %.6fs  p95 %.6fs  p99 %.6fs  compile-stall %.6fs@."
    r.r_p99_latency r.r_p50_first_row r.r_p95_first_row r.r_p99_first_row
    r.r_compile_stall_s;
  if r.r_sheds <> [] || r.r_queue_peak > 0 then
    Format.fprintf fmt "  admission: shed %d  queue-peak %d@."
      (List.length r.r_sheds) r.r_queue_peak;
  let s = r.r_cache in
  Format.fprintf fmt
    "  cache: hits %d  misses %d  hit-rate %.1f%%  entries %d  evictions %d  bytes %d (evicted %d)@."
    s.Lru.hits s.Lru.misses
    (if s.Lru.hits + s.Lru.misses > 0 then
       100.0 *. float_of_int s.Lru.hits /. float_of_int (s.Lru.hits + s.Lru.misses)
     else 0.0)
    s.Lru.entries s.Lru.evictions s.Lru.bytes s.Lru.bytes_evicted;
  Format.fprintf fmt "  code-mem: live %d  peak %d  freed %d@."
    r.r_live_code_bytes r.r_peak_code_bytes r.r_bytes_freed;
  Format.fprintf fmt "  data-mem: live %d  peak %d  freed %d@."
    r.r_live_data_bytes r.r_peak_data_bytes r.r_freed_data_bytes;
  if r.r_shape_hits + r.r_exact_hits + r.r_binds > 0 then
    Format.fprintf fmt
      "  param: shape-hits %d  exact-hits %d  binds %d  bind-time %.6fs@."
      r.r_shape_hits r.r_exact_hits r.r_binds r.r_bind_s
