(** Serving-run reports: per-query metrics and the aggregated summary.

    Both serving drivers — the deterministic discrete-event scheduler
    ({!Server.run}) and the domain-parallel pool ({!Pool.run}) — fold
    their completion-order metrics through {!assemble}, so the two can
    never drift apart in what they measure or how latency percentiles,
    throughput, cache and memory accounting are computed. *)

type query_metrics = {
  qm_name : string;
  qm_fp : int64;
  qm_backend : string;  (** back-end that finished the query *)
  qm_arrival : float;
  qm_start : float;
  qm_finish : float;
  qm_compile_s : float;  (** foreground compile charged on the worker *)
  qm_cache_hit : bool;  (** strong-tier module came from the cache *)
  qm_switch_s : float option;  (** time of the first hot-swap since start *)
  qm_quanta_tier0 : int;
  qm_quanta_tier1 : int;
  qm_tiers : string list;
      (** back-ends the query executed on, in order (length > 2 means the
          controller upgraded more than once) *)
  qm_exec_cycles : int;
  qm_rows : int;
  qm_checksum : int64;
  qm_tenant : int;  (** traffic-generator tenant tag (0 single-tenant) *)
  qm_first_s : float;
      (** enqueue -> first-row latency: arrival to the end of the quantum
          that produced the first morsel of output *)
}

val qm_latency : query_metrics -> float

(** A query the admission queue rejected at its cap. *)
type shed = { sh_name : string; sh_tenant : int; sh_arrival : float }

type t = {
  r_mode : string;
  r_queries : query_metrics list;  (** completion order *)
  r_makespan : float;  (** time of the last completion *)
  r_total_latency : float;  (** sum of per-query latencies *)
  r_mean_latency : float;
  r_p50_latency : float;
  r_p95_latency : float;
  r_p99_latency : float;
  r_max_latency : float;
  r_p50_first_row : float;  (** enqueue -> first-row percentiles *)
  r_p95_first_row : float;
  r_p99_first_row : float;
  r_compile_stall_s : float;
      (** total foreground compile seconds charged on workers — time
          queries stalled waiting on a compile instead of executing *)
  r_throughput : float;  (** completed queries per second *)
  r_switchovers : int;
  r_sheds : shed list;  (** rejected at the admission cap, arrival order *)
  r_queue_peak : int;  (** admission-queue occupancy high-water mark *)
  r_lat_hist : Hist.t;  (** end-to-end latency histogram *)
  r_first_hist : Hist.t;  (** first-row latency histogram *)
  r_cache : Lru.stats;
  r_bytes_freed : int;  (** code bytes returned to the region allocator *)
  r_live_code_bytes : int;  (** resident generated code at end of run *)
  r_peak_code_bytes : int;  (** high-water mark of resident code *)
  r_live_data_bytes : int;
      (** linear-memory data bytes still allocated at end of run (tables,
          stacks, module GOTs — per-query blocks must all be recycled) *)
  r_peak_data_bytes : int;  (** high-water mark of allocated data bytes *)
  r_freed_data_bytes : int;  (** cumulative data bytes recycled *)
  r_shape_hits : int;
      (** parameterized lookups that found the shape's artifact cached but
          had to bind a new literal vector *)
  r_exact_hits : int;
      (** parameterized lookups that found an already-bound instance for the
          exact literal vector *)
  r_binds : int;  (** parameter-vector bind (re-link) operations *)
  r_bind_s : float;  (** modelled seconds spent binding parameter vectors ([r_binds] x {!Costmodel.bind_seconds}, deterministic like every other report duration) *)
}

(** Fold completion-order metrics plus end-of-run cache and memory state
    into the summary. [mode] is the display name of the serving policy;
    [sheds] (arrival order) and [queue_peak] come from the driver's
    admission queue. *)
val assemble :
  Qcomp_engine.Engine.db ->
  Code_cache.t ->
  mode:string ->
  makespan:float ->
  ?sheds:shed list ->
  ?queue_peak:int ->
  query_metrics list ->
  t

val pp_query : Format.formatter -> query_metrics -> unit
val pp : ?per_query:bool -> Format.formatter -> t -> unit
