(** Deterministic multi-worker query serving with tiered execution.

    A serving run is one discrete-event cascade over {!Sim}'s virtual
    clock: queries arrive on a deterministic (seeded) arrival process —
    or, via {!run_requests}, on an arbitrary pre-generated timed request
    trace — pass the bounded multi-tenant {!Admission} queue (arrivals
    beyond the cap are shed, deterministically: shed decisions depend only
    on virtual-time queue occupancy), wait for one of [workers] execution
    workers, and run morsel-by-morsel through {!Exec}. Three policies:

    - {b Static}: one fixed back-end; every query pays that back-end's full
      (modelled) compile time on its worker, then executes. This is the
      paper's per-back-end compile+execute tradeoff (Table III) replayed as
      a serving policy.
    - {b Cached}: the back-end chosen by {!Qcomp_engine.Engine.adaptive_backend},
      fronted by the fingerprint-keyed {!Code_cache} — a cache hit skips
      the compile charge entirely.
    - {b Tiered}: queries start executing immediately on interpreter
      bytecode while the adaptive ("strong") back-end compiles in the
      background on a bounded compile pool; at the next morsel boundary
      after the (simulated) compile completes, the execution hot-swaps to
      the compiled code. A cache hit on the strong module starts on it
      outright. This is the Umbra/Ma-et-al. hybrid: interpreter latency to
      first result, compiled-code throughput for the bulk.

    All durations are deterministic — modelled compile seconds
    ({!Costmodel}) and emulated execution cycles — so two runs with the
    same seed produce byte-identical reports, shed sets included. Host
    wall-clock never enters the virtual timeline. *)

open Qcomp_support
open Qcomp_engine

(* The mode/config/metrics types live in {!Pool} (the parallel driver must
   not depend on this module); re-exported here so callers keep writing
   [Server.Tiered], [Server.default_config] etc. *)
type mode = Pool.mode =
  | Static of Qcomp_backend.Backend.t
  | Cached
  | Tiered

let mode_name = Pool.mode_name

type config = Pool.config = {
  workers : int;  (** execution workers *)
  compile_slots : int;  (** background compile pool size (Tiered) *)
  morsel : int;  (** rows per execution quantum *)
  cache_capacity : int;  (** module-cache entries *)
  mode : mode;
  reopt : bool;
      (** Tiered only: pick upgrades from observed cycles-per-row at
          morsel boundaries (including second upgrades) instead of the
          one-shot pre-execution estimate *)
  paramize : bool;
      (** Cached/Tiered: normalize incoming plans into (shape, parameter
          vector) so every literal variant of a template shares one cache
          entry; variants after the first pay a microsecond bind instead
          of a compile. Static mode always stays exact. *)
  mean_gap_s : float;  (** mean inter-arrival gap; 0 = all arrive at t=0 *)
  seed : int64;  (** drives the arrival process *)
  admission_cap : int option;
      (** bound on admission-queue occupancy; arrivals beyond it are shed
          (rejected, counted, reported). [None] = unbounded *)
  tenants : int;  (** tenant FIFOs in the admission queue (fair dequeue) *)
  cache_shards : int;
      (** hash shards of the code cache (when the driver creates it);
          the discrete-event driver always serves from shard layout 1 —
          sharding only pays under real parallelism *)
  intra : int;
      (** intra-query lanes: parallelizable pipeline bodies fan each
          quantum's morsels out over this many execution lanes. The
          discrete-event driver models them (lanes run sequentially,
          virtual time advances by the max over lanes), so speedups are
          deterministic; 1 = serial bodies *)
}

let default_config = Pool.default_config

(* The metric and report records have exactly one declaration, in
   {!Report}; both drivers alias it so the shapes can never drift. *)
type query_metrics = Report.query_metrics

let qm_latency = Report.qm_latency

type request = Pool.request = {
  rq_name : string;
  rq_plan : Qcomp_plan.Algebra.t;
  rq_arrival : float;  (** seconds after run start *)
  rq_tenant : int;
}

type report = Report.t

(* ---------------- the event machine ---------------- *)

type qstate = {
  q_name : string;
  q_plan : Qcomp_plan.Algebra.t;  (** the shape when parameterized *)
  q_params : Qcomp_backend.Artifact.param_value array;
      (** this query's literal vector; [[||]] for exact plans *)
  q_exact : Qcomp_plan.Algebra.t;
      (** the original plan with literals in place — what rungs that
          cannot bind parameter holes compile (whole-plan fallback) *)
  q_arrival : float;
  q_tenant : int;
  mutable q_start : float;
  mutable q_first_s : float option;  (** enqueue -> first-row, once known *)
  mutable q_compile_s : float;
  mutable q_cache_hit : bool;
  (* the back-end currently executing the query's quanta, and the full
     tier path in reverse *)
  mutable q_cur_tier : string;
  mutable q_tiers : string list;
  (* an upgrade (background compile or parked swap) is in flight; the
     controller makes no new decision until the swap is consumed *)
  mutable q_upgrading : bool;
  (* a finished background compile parks the (tier name, entry) here; the
     next quantum event applies the swap before running *)
  mutable q_swap_ready : (string * Code_cache.entry) option;
  mutable q_switch_s : float option;
  mutable q_started_tier0 : bool;  (** first quantum ran interpreter code *)
  (* every cache entry this query touches is pinned until it finishes, so
     eviction can never free code that is still executing or parked for a
     hot-swap *)
  mutable q_pinned : Code_cache.entry list;
  (* bound instances this query claimed via [force ~claim:true]; released
     on finish so literal churn by interleaved queries cannot trim away a
     module mid-execution *)
  mutable q_claims : (Code_cache.entry * Qcomp_backend.Backend.compiled_module) list;
  mutable q_done : bool;
}

(** Serve the timed [requests] as one deterministic discrete-event
    cascade: each request is offered to the admission queue at its virtual
    arrival time (shed at the cap — deterministically, since occupancy is
    a pure function of the event history), dequeued tenant-fair, executed
    morsel-by-morsel. *)
let run_requests_events ?cache db config requests =
  Pool.validate_config ~driver:"Server.run" config;
  let sim = Sim.create () in
  (* one simulated lane pool for the whole run: quanta never overlap in
     virtual time, so every execution can share the lanes' Emu contexts *)
  let sched =
    if config.intra > 1 then
      Some (Morsel_sched.create ~parallel:false db ~lanes:config.intra)
    else None
  in
  let cache =
    match cache with
    | Some c -> c
    | None -> Code_cache.create ~capacity:config.cache_capacity
  in
  let admission : qstate Admission.t =
    Admission.create ?cap:config.admission_cap ~tenants:config.tenants ()
  in
  let sheds = ref [] in
  let free_workers = ref config.workers in
  let free_slots = ref config.compile_slots in
  let compile_jobs = Queue.create () in
  (* in-flight background compiles: key -> callbacks awaiting the entry *)
  let pending : (Code_cache.key, (Code_cache.entry -> unit) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let done_q = ref [] in
  let pin_entry q e =
    Code_cache.pin cache e;
    q.q_pinned <- e :: q.q_pinned
  in
  let finish_metrics q (ex : Exec.t) =
    q.q_done <- true;
    (* claims before pins: release may dispose an over-cap instance, which
       must happen while its entry is still live *)
    List.iter (fun (e, cm) -> Code_cache.release cache e cm) q.q_claims;
    q.q_claims <- [];
    List.iter (fun e -> Code_cache.unpin cache e) q.q_pinned;
    q.q_pinned <- [];
    let r = Exec.result ex in
    (* rows are materialized; recycle the execution's linear-memory blocks
       (state block, tuple buffers, hash-table arenas) *)
    Exec.dispose ex;
    let tier0, tier1 =
      match Exec.swapped_at ex with
      | Some at -> (at, Exec.quanta ex - at)
      | None ->
          if q.q_started_tier0 then (Exec.quanta ex, 0) else (0, Exec.quanta ex)
    in
    let finish = Sim.now sim in
    done_q :=
      {
        Report.qm_name = q.q_name;
        qm_fp = Fingerprint.plan q.q_plan;
        qm_backend = q.q_cur_tier;
        qm_arrival = q.q_arrival;
        qm_start = q.q_start;
        qm_finish = finish;
        qm_compile_s = q.q_compile_s;
        qm_cache_hit = q.q_cache_hit;
        qm_switch_s = q.q_switch_s;
        qm_quanta_tier0 = tier0;
        qm_quanta_tier1 = tier1;
        qm_tiers = List.rev q.q_tiers;
        qm_exec_cycles = r.Engine.exec_cycles;
        qm_rows = r.Engine.output_count;
        qm_checksum =
          (* with intra-query lanes the barrier merge emits rows in lane
             order, not sequential insert order: checksum the sorted
             multiset so the sum is lane-count-invariant *)
          (if config.intra > 1 then
             Engine.checksum (List.sort compare r.Engine.rows)
           else Engine.checksum r.Engine.rows);
        qm_tenant = q.q_tenant;
        qm_first_s =
          (match q.q_first_s with
          | Some s -> s
          | None -> finish -. q.q_arrival);
      }
      :: !done_q
  in
  (* the compile pool: bounded slots draining a FIFO of jobs; the host
     compilation runs when the slot is acquired, but the result becomes
     visible (cache insert + waiter callbacks) only at the simulated
     completion event *)
  let rec pump_compiles () =
    while !free_slots > 0 && not (Queue.is_empty compile_jobs) do
      decr free_slots;
      let job = Queue.pop compile_jobs in
      job ()
    done
  and submit_bg_compile ~backend ~params ~name plan (k : Code_cache.key)
      (on_ready : Code_cache.entry -> unit) =
    match Hashtbl.find_opt pending k with
    | Some waiters -> waiters := on_ready :: !waiters
    | None ->
        let waiters = ref [ on_ready ] in
        Hashtbl.replace pending k waiters;
        Queue.push
          (fun () ->
            let e =
              Code_cache.compile_uncached cache db ~backend ~params ~name plan
            in
            Sim.after sim e.Code_cache.ce_compile_s (fun () ->
                Code_cache.insert cache k e;
                Hashtbl.remove pending k;
                List.iter (fun f -> f e) (List.rev !waiters);
                incr free_slots;
                pump_compiles ()))
          compile_jobs;
        pump_compiles ()
  in
  let rec dispatch () =
    if !free_workers > 0 then
      match Admission.take admission with
      | None -> ()
      | Some q ->
          decr free_workers;
          start_query q;
          dispatch ()
  and start_tier0 q =
    (* tier-0 start on interpreter bytecode, shared by the static-estimate
       and observation-driven Tiered paths; returns the entry and the
       foreground translate charge *)
    let ie, ihit =
      Code_cache.get_or_compile cache db ~backend:Engine.interpreter
        ~params:q.q_params ~name:q.q_name q.q_plan
    in
    pin_entry q ie;
    let icost = if ihit then 0.0 else ie.Code_cache.ce_compile_s in
    q.q_compile_s <- icost;
    q.q_started_tier0 <- true;
    q.q_cur_tier <- "interpreter";
    q.q_tiers <- [ "interpreter" ];
    (ie, icost)
  and start_query q =
    q.q_start <- Sim.now sim;
    match config.mode with
    | Static backend ->
        (* no cache semantics: charge the full modelled compile every time
           (the module itself is memoized host-side, which changes no
           simulated duration — the code is identical) and keep the lookup
           out of the hit/miss stats, where a hit would belie the charge *)
        let k = Code_cache.key db ~backend q.q_plan in
        let e =
          match Code_cache.find_nostat cache k with
          | Some e -> e
          | None ->
              let e =
                Code_cache.compile_uncached cache db ~backend ~name:q.q_name
                  q.q_plan
              in
              Code_cache.insert cache k e;
              e
        in
        pin_entry q e;
        q.q_cur_tier <- Qcomp_backend.Backend.name backend;
        q.q_tiers <- [ q.q_cur_tier ];
        q.q_compile_s <- e.Code_cache.ce_compile_s;
        Sim.after sim e.Code_cache.ce_compile_s (fun () -> begin_exec q e)
    | Cached ->
        let bname, backend = Engine.adaptive_backend db q.q_plan in
        let bname, backend =
          (* parameterized shapes route to the strongest rung that can
             bind holes; others would recompile per literal vector *)
          if Array.length q.q_params > 0 then
            Engine.clamp_param_capable db bname
          else (bname, backend)
        in
        let k = Code_cache.key db ~backend q.q_plan in
        q.q_cur_tier <- bname;
        q.q_tiers <- [ bname ];
        (match Code_cache.find cache k with
        | Some e ->
            pin_entry q e;
            q.q_cache_hit <- true;
            begin_exec q e
        | None ->
            let e =
              Code_cache.compile_uncached cache db ~backend ~params:q.q_params
                ~name:q.q_name q.q_plan
            in
            Code_cache.insert cache k e;
            pin_entry q e;
            q.q_compile_s <- e.Code_cache.ce_compile_s;
            Sim.after sim e.Code_cache.ce_compile_s (fun () -> begin_exec q e))
    | Tiered when config.reopt -> (
        (* observation-driven: no pre-execution estimate. Start on the
           strongest already-resident rung (free), else on interpreter
           bytecode; the controller upgrades from observed cycles. The
           ladder probe is stat-free. *)
        let resident =
          List.find_map
            (fun (nm, b) ->
              if String.equal nm "interpreter" then None
              else
                (* non-param rungs cache the whole-plan fallback under the
                   exact plan's key *)
                let plan =
                  if
                    Array.length q.q_params > 0
                    && not (Qcomp_backend.Backend.supports_params b)
                  then q.q_exact
                  else q.q_plan
                in
                let k = Code_cache.key db ~backend:b plan in
                match Code_cache.find_nostat cache k with
                | Some e ->
                    pin_entry q e;
                    Some (nm, e)
                | None -> None)
            (List.rev (Engine.tier_ladder db))
        in
        match resident with
        | Some (nm, e) ->
            q.q_cache_hit <- true;
            q.q_cur_tier <- nm;
            q.q_tiers <- [ nm ];
            begin_exec q e
        | None ->
            let ie, icost = start_tier0 q in
            Sim.after sim icost (fun () -> begin_exec q ie))
    | Tiered -> (
        let bname, backend = Engine.adaptive_backend db q.q_plan in
        let bname, backend =
          if Array.length q.q_params > 0 then
            Engine.clamp_param_capable db bname
          else (bname, backend)
        in
        if bname = "interpreter" then begin
          (* nothing stronger to tier to: serve straight from bytecode *)
          let e, hit =
            Code_cache.get_or_compile cache db ~backend:Engine.interpreter
              ~params:q.q_params ~name:q.q_name q.q_plan
          in
          pin_entry q e;
          q.q_cache_hit <- hit;
          q.q_started_tier0 <- true;
          q.q_cur_tier <- "interpreter";
          q.q_tiers <- [ "interpreter" ];
          if hit then begin_exec q e
          else begin
            q.q_compile_s <- e.Code_cache.ce_compile_s;
            Sim.after sim e.Code_cache.ce_compile_s (fun () -> begin_exec q e)
          end
        end
        else
          let k = Code_cache.key db ~backend q.q_plan in
          match Code_cache.find cache k with
          | Some e ->
              (* strong code already cached: start on it outright *)
              pin_entry q e;
              q.q_cache_hit <- true;
              q.q_cur_tier <- bname;
              q.q_tiers <- [ bname ];
              begin_exec q e
          | None ->
              (* tier 0 now, strong tier in the background *)
              let ie, icost = start_tier0 q in
              submit_bg_compile ~backend ~params:q.q_params ~name:q.q_name
                q.q_plan k (fun e ->
                  (* the query may have drained on tier 0 before the strong
                     compile landed; a done query must not pin (nobody
                     would unpin) nor park a swap *)
                  if not q.q_done then begin
                    pin_entry q e;
                    q.q_swap_ready <- Some (k.Code_cache.ck_backend, e)
                  end);
              Sim.after sim icost (fun () -> begin_exec q ie))
  and begin_exec q (e : Code_cache.entry) =
    let cq, cm, fresh =
      Code_cache.force cache db ~params:q.q_params ~claim:true e
    in
    q.q_claims <- (e, cm) :: q.q_claims;
    let ex = Exec.start ?sched db cq cm in
    if fresh && Array.length q.q_params > 0 then begin
      (* a fresh parameter bind is charged on the virtual clock, priced
         near-free next to any back-end compile *)
      q.q_compile_s <- q.q_compile_s +. Costmodel.bind_seconds;
      Sim.after sim Costmodel.bind_seconds (fun () -> quantum q ex)
    end
    else quantum q ex
  (* The observation-driven tier controller, consulted at each morsel
     boundary in reopt mode (the swap, if any, was applied just before, so
     a fresh tier starts with no observation and sits out one quantum).
     One upgrade in flight at a time; an already-resident stronger module
     is priced at zero compile seconds and parks immediately. *)
  and consider_upgrade q ex =
    if (not q.q_upgrading) && not (Exec.finished ex) then
      match Exec.observed_cpr ex with
      | None -> ()
      | Some cpr -> (
          let rows_remaining = Exec.rows_remaining ex in
          if rows_remaining > 0 then
            let cands =
              List.map
                (fun (nm, b) ->
                  (* a rung that cannot bind parameter holes falls back to
                     compiling the exact whole plan (per-query keyed) —
                     observed work justified spending real compile time, so
                     the strong back-ends stay reachable *)
                  let plan, params =
                    if
                      Array.length q.q_params > 0
                      && not (Qcomp_backend.Backend.supports_params b)
                    then (q.q_exact, [||])
                    else (q.q_plan, q.q_params)
                  in
                  let k = Code_cache.key db ~backend:b plan in
                  let compile_s =
                    match Code_cache.find_nostat cache k with
                    | Some _ -> 0.0
                    | None ->
                        Costmodel.compile_seconds ~backend:nm
                          (Exec.ir_module ex)
                  in
                  (nm, b, k, plan, params, compile_s))
                (Engine.stronger_than db q.q_cur_tier)
            in
            match
              Costmodel.best_upgrade ~cur:q.q_cur_tier ~cpr ~rows_remaining
                (List.map (fun (nm, _, _, _, _, c) -> (nm, c)) cands)
            with
            | None -> ()
            | Some (nm, _) ->
                let _, backend, k, plan, params, _ =
                  List.find (fun (n, _, _, _, _, _) -> String.equal n nm) cands
                in
                q.q_upgrading <- true;
                (match Code_cache.find cache k with
                | Some e ->
                    pin_entry q e;
                    q.q_swap_ready <- Some (nm, e)
                | None ->
                    submit_bg_compile ~backend ~params ~name:q.q_name plan k
                      (fun e ->
                        if not q.q_done then begin
                          pin_entry q e;
                          q.q_swap_ready <- Some (nm, e)
                        end)))
  and quantum q ex =
    (* entering a quantum event means the previous quantum just completed:
       if it was the first, its output morsel marks first-row latency *)
    if q.q_first_s = None && Exec.quanta ex > 0 then
      q.q_first_s <- Some (Sim.now sim -. q.q_arrival);
    (match q.q_swap_ready with
    | Some (nm, e) when not (Exec.finished ex) ->
        let _, cm, sfresh =
          Code_cache.force cache db ~params:q.q_params ~claim:true e
        in
        q.q_claims <- (e, cm) :: q.q_claims;
        if sfresh && Array.length q.q_params > 0 then
          q.q_compile_s <- q.q_compile_s +. Costmodel.bind_seconds;
        Exec.swap ex cm;
        q.q_cur_tier <- nm;
        q.q_tiers <- nm :: q.q_tiers;
        q.q_upgrading <- false;
        if q.q_switch_s = None then
          q.q_switch_s <- Some (Sim.now sim -. q.q_start);
        q.q_swap_ready <- None
    | _ -> ());
    if config.reopt && config.mode = Tiered then consider_upgrade q ex;
    match Exec.step ex ~morsel:config.morsel with
    | `Done ->
        finish_metrics q ex;
        incr free_workers;
        dispatch ()
    | `Ran dc -> Sim.after sim (Engine.cycles_to_seconds dc) (fun () -> quantum q ex)
  in
  (* each request is offered at its virtual arrival time: shed-or-admit
     depends only on queue occupancy at that instant, so same trace, same
     cap -> same sheds, byte-identical reports *)
  List.iter
    (fun rq ->
      let shape, params = Pool.normalize_query config rq.rq_plan in
      let q =
        {
          q_name = rq.rq_name;
          q_plan = shape;
          q_params = params;
          q_exact = rq.rq_plan;
          q_arrival = rq.rq_arrival;
          q_tenant = rq.rq_tenant;
          q_start = 0.0;
          q_first_s = None;
          q_compile_s = 0.0;
          q_cache_hit = false;
          q_cur_tier = "";
          q_tiers = [];
          q_upgrading = false;
          q_swap_ready = None;
          q_switch_s = None;
          q_started_tier0 = false;
          q_pinned = [];
          q_claims = [];
          q_done = false;
        }
      in
      Sim.at sim rq.rq_arrival (fun () ->
          if Admission.offer admission ~tenant:rq.rq_tenant q then dispatch ()
          else
            sheds :=
              {
                Report.sh_name = rq.rq_name;
                sh_tenant = rq.rq_tenant;
                sh_arrival = rq.rq_arrival;
              }
              :: !sheds))
    requests;
  Sim.run sim;
  let queries = List.rev !done_q in
  let makespan =
    List.fold_left (fun a q -> Float.max a q.Report.qm_finish) 0.0 queries
  in
  Report.assemble db cache ~mode:(mode_name config.mode) ~makespan
    ~sheds:(List.rev !sheds)
    ~queue_peak:(Admission.peak admission)
    queries

let run_events ?cache db config stream =
  run_requests_events ?cache db config (Pool.requests_of_stream config stream)

(** Serve the timed [requests]. Without [parallel], one deterministic
    discrete-event cascade over the virtual clock (sheds included). With
    [~parallel:domains], open-loop wall-clock serving on that many worker
    domains ({!Pool.run_requests}). *)
let run_requests ?cache ?parallel db config requests =
  match parallel with
  | None -> run_requests_events ?cache db config requests
  | Some domains -> Pool.run_requests ?cache db ~domains config requests

(** Serve [stream]. Without [parallel], one deterministic discrete-event
    cascade over the virtual clock. With [~parallel:domains], the queries
    run on that many real worker domains ({!Pool.run}): rows/checksums are
    unchanged, timing metrics become wall-clock. Either way the summary is
    assembled by {!Report.assemble}. *)
let run ?cache ?parallel db config stream =
  match parallel with
  | None -> run_events ?cache db config stream
  | Some domains -> Pool.run ?cache db ~domains config stream

(* ---------------- reporting (shared shape lives in {!Report}) ------- *)

let pp_query = Report.pp_query
let pp_report = Report.pp

(** Deterministic repeated-query stream: [n] draws over [queries] with a
    seeded bias towards a hot subset, so a serving cache has something to
    hit. *)
let make_stream ~seed ~n queries =
  if queries = [] then []
  else begin
    let rng = Rng.create seed in
    let arr = Array.of_list queries in
    let hot = max 1 (Array.length arr / 4) in
    List.init n (fun _ ->
        (* 70% of traffic over the hot quarter of the plan set *)
        if Rng.int rng 10 < 7 then arr.(Rng.int rng hot)
        else arr.(Rng.int rng (Array.length arr)))
  end
