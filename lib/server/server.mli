(** Deterministic multi-worker query serving with tiered execution.

    Queries arrive on a seeded arrival process (or an arbitrary timed
    request trace), pass the bounded multi-tenant admission queue —
    arrivals beyond the cap are shed, deterministically, since occupancy
    is a pure function of the virtual-time event history — wait for an
    execution worker, and run morsel-by-morsel. Policies: [Static] (fixed
    back-end, full compile charge per query), [Cached] (adaptive back-end
    fronted by the fingerprint-keyed code cache), [Tiered] (start on
    interpreter bytecode, hot-swap to the adaptively-chosen back-end
    compiled on a background pool). All durations are deterministic, so
    same-seed runs produce byte-identical reports, shed sets included. *)

type mode = Pool.mode =
  | Static of Qcomp_backend.Backend.t
  | Cached
  | Tiered

val mode_name : mode -> string

type config = Pool.config = {
  workers : int;  (** execution workers *)
  compile_slots : int;  (** background compile pool size (Tiered) *)
  morsel : int;  (** rows per execution quantum *)
  cache_capacity : int;  (** module-cache entries *)
  mode : mode;
  reopt : bool;
      (** Tiered only: pick upgrades from observed cycles-per-row at
          morsel boundaries (including second upgrades) instead of the
          one-shot pre-execution estimate *)
  paramize : bool;
      (** normalize incoming plans into (shape, literal vector) so the code
          cache is keyed per shape rather than per query; [Static] mode
          always serves exact plans regardless *)
  mean_gap_s : float;  (** mean inter-arrival gap; 0 = all arrive at t=0 *)
  seed : int64;  (** drives the arrival process *)
  admission_cap : int option;
      (** bound on admission-queue occupancy; arrivals beyond it are shed
          (rejected, counted, reported). [None] = unbounded *)
  tenants : int;  (** tenant FIFOs in the admission queue (fair dequeue) *)
  cache_shards : int;
      (** hash shards of the code cache (when the driver creates it);
          1 = the deterministic single-lock layout *)
  intra : int;
      (** intra-query lanes: parallelizable pipeline bodies fan each
          quantum's morsels out over this many execution lanes. The
          discrete-event driver models them deterministically (virtual
          time advances by the max over lanes); 1 = serial bodies *)
}

(** Tiered, 4 workers, 2 compile slots, 512-row morsels, unbounded
    admission, 1 tenant, 1 cache shard, serial bodies (intra 1). *)
val default_config : config

(** Alias of the one canonical metric record, {!Report.query_metrics};
    read the fields through {!Report}. *)
type query_metrics = Report.query_metrics

val qm_latency : query_metrics -> float

(** One timed request of an open-loop workload (see {!Pool.request}). *)
type request = Pool.request = {
  rq_name : string;
  rq_plan : Qcomp_plan.Algebra.t;
  rq_arrival : float;  (** seconds after run start *)
  rq_tenant : int;
}

(** Alias of the one canonical summary record, {!Report.t}. *)
type report = Report.t

(** Serve [stream] (name, plan pairs in arrival order) against [db].
    [cache] persists across calls when supplied (a warm serving process);
    otherwise each run starts cold with [config.cache_capacity] entries.

    By default this is the deterministic discrete-event run (virtual
    clock, byte-identical reports per seed). [~parallel:domains] serves on
    that many real worker domains instead ({!Pool.run}): per-query rows
    and checksums are identical to the sequential run, but every timing
    metric is wall-clock and scheduling-dependent. *)
val run :
  ?cache:Code_cache.t ->
  ?parallel:int ->
  Qcomp_engine.Engine.db ->
  config ->
  (string * Qcomp_plan.Algebra.t) list ->
  report

(** Serve a timed open-loop request trace (e.g. from
    {!Qcomp_workloads.Trafficgen}): each request is offered to the
    admission queue at its arrival stamp, shed at the cap, dequeued
    tenant-fair. Without [parallel], deterministic discrete-event serving
    — same trace, same config, byte-identical report including the shed
    set. With [~parallel:domains], open-loop wall-clock serving
    ({!Pool.run_requests}): a feeder domain releases requests at their
    stamps, idle workers block on a condition variable. *)
val run_requests :
  ?cache:Code_cache.t ->
  ?parallel:int ->
  Qcomp_engine.Engine.db ->
  config ->
  request list ->
  report

val pp_query : Format.formatter -> query_metrics -> unit
val pp_report : ?per_query:bool -> Format.formatter -> report -> unit

(** Deterministic repeated-query stream: [n] seeded draws over [queries],
    biased towards a hot subset so a cache has something to hit. *)
val make_stream :
  seed:int64 -> n:int -> (string * Qcomp_plan.Algebra.t) list -> (string * Qcomp_plan.Algebra.t) list
