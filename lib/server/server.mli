(** Deterministic multi-worker query serving with tiered execution.

    Queries arrive on a seeded arrival process (or an arbitrary timed
    request trace), pass the bounded multi-tenant admission queue —
    arrivals beyond the cap are shed, deterministically, since occupancy
    is a pure function of the virtual-time event history — wait for an
    execution worker, and run morsel-by-morsel. Policies: [Static] (fixed
    back-end, full compile charge per query), [Cached] (adaptive back-end
    fronted by the fingerprint-keyed code cache), [Tiered] (start on
    interpreter bytecode, hot-swap to the adaptively-chosen back-end
    compiled on a background pool). All durations are deterministic, so
    same-seed runs produce byte-identical reports, shed sets included. *)

type mode = Pool.mode =
  | Static of Qcomp_backend.Backend.t
  | Cached
  | Tiered

val mode_name : mode -> string

type config = Pool.config = {
  workers : int;  (** execution workers *)
  compile_slots : int;  (** background compile pool size (Tiered) *)
  morsel : int;  (** rows per execution quantum *)
  cache_capacity : int;  (** module-cache entries *)
  mode : mode;
  reopt : bool;
      (** Tiered only: pick upgrades from observed cycles-per-row at
          morsel boundaries (including second upgrades) instead of the
          one-shot pre-execution estimate *)
  paramize : bool;
      (** normalize incoming plans into (shape, literal vector) so the code
          cache is keyed per shape rather than per query; [Static] mode
          always serves exact plans regardless *)
  mean_gap_s : float;  (** mean inter-arrival gap; 0 = all arrive at t=0 *)
  seed : int64;  (** drives the arrival process *)
  admission_cap : int option;
      (** bound on admission-queue occupancy; arrivals beyond it are shed
          (rejected, counted, reported). [None] = unbounded *)
  tenants : int;  (** tenant FIFOs in the admission queue (fair dequeue) *)
  cache_shards : int;
      (** hash shards of the code cache (when the driver creates it);
          1 = the deterministic single-lock layout *)
}

(** Tiered, 4 workers, 2 compile slots, 512-row morsels, unbounded
    admission, 1 tenant, 1 cache shard. *)
val default_config : config

type query_metrics = Report.query_metrics = {
  qm_name : string;
  qm_fp : int64;
  qm_backend : string;  (** back-end that finished the query *)
  qm_arrival : float;
  qm_start : float;
  qm_finish : float;
  qm_compile_s : float;  (** foreground compile charged on the worker *)
  qm_cache_hit : bool;  (** strong-tier module came from the cache *)
  qm_switch_s : float option;
      (** virtual time of the first hot-swap since start *)
  qm_quanta_tier0 : int;
  qm_quanta_tier1 : int;
  qm_tiers : string list;
      (** back-ends the query executed on, in order (length > 2 means the
          controller upgraded more than once) *)
  qm_exec_cycles : int;
  qm_rows : int;
  qm_checksum : int64;
  qm_tenant : int;  (** traffic-generator tenant tag (0 single-tenant) *)
  qm_first_s : float;
      (** enqueue -> first-row latency: arrival to the end of the quantum
          that produced the first morsel of output *)
}

val qm_latency : query_metrics -> float

(** One timed request of an open-loop workload (see {!Pool.request}). *)
type request = Pool.request = {
  rq_name : string;
  rq_plan : Qcomp_plan.Algebra.t;
  rq_arrival : float;  (** seconds after run start *)
  rq_tenant : int;
}

type report = Report.t = {
  r_mode : string;
  r_queries : query_metrics list;  (** completion order *)
  r_makespan : float;  (** virtual time of the last completion *)
  r_total_latency : float;  (** sum of per-query latencies *)
  r_mean_latency : float;
  r_p50_latency : float;
  r_p95_latency : float;
  r_p99_latency : float;
  r_max_latency : float;
  r_p50_first_row : float;  (** enqueue -> first-row percentiles *)
  r_p95_first_row : float;
  r_p99_first_row : float;
  r_compile_stall_s : float;
      (** total foreground compile seconds charged on workers — time
          queries stalled waiting on a compile instead of executing *)
  r_throughput : float;  (** completed queries per virtual second *)
  r_switchovers : int;
  r_sheds : Report.shed list;  (** rejected at the admission cap *)
  r_queue_peak : int;  (** admission-queue occupancy high-water mark *)
  r_lat_hist : Hist.t;  (** end-to-end latency histogram *)
  r_first_hist : Hist.t;  (** first-row latency histogram *)
  r_cache : Lru.stats;
  r_bytes_freed : int;  (** code bytes returned to the region allocator *)
  r_live_code_bytes : int;  (** resident generated code at end of run *)
  r_peak_code_bytes : int;  (** high-water mark of resident code *)
  r_live_data_bytes : int;
      (** linear-memory data bytes still allocated at end of run (tables,
          stacks, module GOTs — per-query blocks must all be recycled) *)
  r_peak_data_bytes : int;  (** high-water mark of allocated data bytes *)
  r_freed_data_bytes : int;  (** cumulative data bytes recycled *)
  r_shape_hits : int;
      (** parameterized lookups that found the shape's artifact cached but
          had to bind a new literal vector *)
  r_exact_hits : int;
      (** parameterized lookups that found an already-bound instance for the
          exact literal vector *)
  r_binds : int;  (** parameter-vector bind (re-link) operations *)
  r_bind_s : float;  (** modelled seconds spent binding parameter vectors ([r_binds] x {!Costmodel.bind_seconds}, deterministic like every other report duration) *)
}

(** Serve [stream] (name, plan pairs in arrival order) against [db].
    [cache] persists across calls when supplied (a warm serving process);
    otherwise each run starts cold with [config.cache_capacity] entries.

    By default this is the deterministic discrete-event run (virtual
    clock, byte-identical reports per seed). [~parallel:domains] serves on
    that many real worker domains instead ({!Pool.run}): per-query rows
    and checksums are identical to the sequential run, but every timing
    metric is wall-clock and scheduling-dependent. *)
val run :
  ?cache:Code_cache.t ->
  ?parallel:int ->
  Qcomp_engine.Engine.db ->
  config ->
  (string * Qcomp_plan.Algebra.t) list ->
  report

(** Serve a timed open-loop request trace (e.g. from
    {!Qcomp_workloads.Trafficgen}): each request is offered to the
    admission queue at its arrival stamp, shed at the cap, dequeued
    tenant-fair. Without [parallel], deterministic discrete-event serving
    — same trace, same config, byte-identical report including the shed
    set. With [~parallel:domains], open-loop wall-clock serving
    ({!Pool.run_requests}): a feeder domain releases requests at their
    stamps, idle workers block on a condition variable. *)
val run_requests :
  ?cache:Code_cache.t ->
  ?parallel:int ->
  Qcomp_engine.Engine.db ->
  config ->
  request list ->
  report

val pp_query : Format.formatter -> query_metrics -> unit
val pp_report : ?per_query:bool -> Format.formatter -> report -> unit

(** Deterministic repeated-query stream: [n] seeded draws over [queries],
    biased towards a hot subset so a cache has something to hit. *)
val make_stream :
  seed:int64 -> n:int -> (string * Qcomp_plan.Algebra.t) list -> (string * Qcomp_plan.Algebra.t) list
