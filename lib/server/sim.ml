(** Deterministic discrete-event scheduler.

    The serving layer never spawns Domains or Threads: "background"
    compilation and multi-worker execution are modelled as events on a
    virtual clock. Durations come only from deterministic sources (the
    {!Costmodel} and the emulator's simulated cycles), events at equal
    timestamps fire in scheduling order, and event handlers may schedule
    further events — so a whole serving run is a single reproducible event
    cascade. *)

module Key = struct
  type t = float * int (* time, then insertion sequence for stable ties *)

  let compare (t1, s1) (t2, s2) =
    match compare (t1 : float) t2 with 0 -> compare (s1 : int) s2 | c -> c
end

module Q = Map.Make (Key)

type t = {
  mutable now : float;
  mutable seq : int;
  mutable queue : (unit -> unit) Q.t;
}

let create () = { now = 0.0; seq = 0; queue = Q.empty }
let now t = t.now

(** Schedule [f] at absolute virtual time [time] (clamped to [now]: the
    past cannot be scheduled). *)
let at t time f =
  let time = if time < t.now then t.now else time in
  t.queue <- Q.add (time, t.seq) f t.queue;
  t.seq <- t.seq + 1

(** Schedule [f] [delay] virtual seconds from now. *)
let after t delay f = at t (t.now +. delay) f

let pending t = Q.cardinal t.queue

(** Run events in timestamp order until the queue drains. *)
let run t =
  let rec loop () =
    match Q.min_binding_opt t.queue with
    | None -> ()
    | Some (((time, _) as key), f) ->
        t.queue <- Q.remove key t.queue;
        t.now <- time;
        f ();
        loop ()
  in
  loop ()
