(** Deterministic discrete-event scheduler: a virtual clock and an event
    queue ordered by (timestamp, insertion sequence). No Domains/Threads —
    "background" work is events whose durations come from deterministic
    sources, so serving runs reproduce bit-for-bit. *)

type t

val create : unit -> t

(** Current virtual time in seconds. *)
val now : t -> float

(** Schedule at an absolute virtual time (clamped to now). *)
val at : t -> float -> (unit -> unit) -> unit

(** Schedule [delay] virtual seconds from now. *)
val after : t -> float -> (unit -> unit) -> unit

val pending : t -> int

(** Fire events in timestamp order (handlers may schedule more) until the
    queue drains. *)
val run : t -> unit
