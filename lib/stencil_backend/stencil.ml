(** Copy-and-patch back-end: the fastest-compiling native rung on the tier
    ladder (Xu & Kjolstad, OOPSLA 2021 — see PAPERS.md).

    A stencil library is built once per process: one position-independent
    code fragment per IR op shape, encoded through the ordinary {!Asm}
    encoder with typed holes (stack-slot displacements, 64-bit constants,
    branch targets, runtime-symbol addresses) recorded at fixed byte
    offsets. Per-query "compilation" walks the lowered module, blits the
    stencil bytes for each instruction into the code buffer and patches
    the holes — no instruction selection, no register allocation, no
    encoding work on the per-query path.

    Value discipline: every IR instruction owns a fixed sp-relative stack
    slot at a fixed 32-byte stride (value at [32*v], phi staging at
    [32*v + 16]), so the frame size is a shift of the instruction count,
    every slot address is a shift of the value id, and no slot-assignment
    prescan runs at all. Stencils are self-contained:
    they load their operands from slots into a fixed set of caller-saved
    registers, compute, and store the result back — registers never
    survive a stencil boundary, which is exactly what makes every fragment
    position- and context-independent.

    Runtime addresses are never baked: calls go through [Abs64]
    relocations resolved at {!Qcomp_backend.Backend.link_artifact} time,
    so stencil artifacts are fully relocatable and snapshot/restore
    ([serve --save-cache]/[--load-cache]) works unchanged.

    x86-64 only: the A64 encoder expands wide immediates and large
    offsets into value-dependent instruction sequences, so holes have no
    fixed positions there (the same reason DirectEmit is x86-64-only). *)

open Qcomp_support
open Qcomp_ir
open Qcomp_vm

let name = "stencil"

(** Version of the stencil library itself. Bump whenever a stencil's byte
    layout or hole protocol changes: it is folded into the snapshot key
    ({!Qcomp_server.Fingerprint.key_v}) so a code cache written against an
    older library is rejected at load instead of mis-patched. *)
let library_version = 1

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* ------------------------------------------------------------------ *)
(* Stencil representation                                              *)

(** A typed hole: byte offset within the stencil, and the index of the
    value that fills it at instantiation time. *)
type hole =
  | H32 of int * int  (** 4-byte LE int at [off], from the ints array *)
  | H64 of int * int  (** 8-byte LE int at [off], from the i64s array *)
  | Htgt of int * int  (** rel32 branch field at [off], label index *)
  | Hsym of int * int  (** abs64 runtime address at [off], symbol index *)

(* The instantiation loop is the hottest code in the back-end, and almost
   every hole is an [H32], so those are pre-split into a flat int array
   ([off lsl 3 lor arg]; offsets are tens of bytes and arities <= 7, so
   the packing is exact) and patched without a per-hole tag dispatch.
   Everything else stays as structured holes on the slow side. *)
type stencil = {
  s_code : Bytes.t;
      (** padded to >= 64 bytes and to a multiple of 8 so instantiation
          can copy in branch-free 8-byte words without overreading *)
  s_len : int;  (** true code length *)
  s_h32 : int array;
  s_rest : hole array;
}

(** One key per op shape. Everything that changes the emitted bytes —
    opcode, operand width, condition, scale, constant shift amount — is
    part of the key; everything that only changes an immediate field is a
    hole. *)
type key =
  | Kprologue  (** sub sp, frame(h32) *)
  | Kepilogue  (** add sp, frame(h32); ret *)
  | Ktrap  (** call umbra_throwOverflow(hsym); brk 1 *)
  | Kconst of bool  (** mov imm64(h64) -> slot; [true]: both i128 lanes *)
  | Kisnull of bool  (** [true] = isnotnull *)
  | Kalu of Minst.alu * int  (** binop + canonicalization bits (0 = i64) *)
  | Kalu128 of Minst.alu  (** lane-wise add/adc, sub/sbb, and/or/xor *)
  | Kmul128
  | Kshift128 of Minst.alu * int  (** constant amount baked into the key *)
  | Kdiv of bool * bool * int  (** signed, want-remainder, canon bits *)
  | Kcmp of Minst.cond * bool  (** [true] = float compare *)
  | Kcmp128eq of bool  (** [true] = Ne *)
  | Kcmp128ord of Minst.cond * Minst.cond  (** unsigned-lo, strict-hi *)
  | Kzext of int * bool  (** source bits, widen-to-i128 *)
  | Ksext of bool  (** widen-to-i128 *)
  | Ktrunc of int  (** -1 = to i1 (and 1), else canon bits *)
  | Kselect of bool  (** i128 *)
  | Kload of int * bool * bool  (** size, sext, i128 *)
  | Kstore of int * bool  (** size, i128 *)
  | Kgep_base
  | Kgep of int  (** scale 1/2/4/8 -> lea *)
  | Kgep_mul  (** arbitrary scale: mul + add *)
  | Kcrc32
  | Klmf  (** longmulfold *)
  | Katomic of int  (** size *)
  | Kldarg of int  (** arg-reg k <- slot(h32), for calls *)
  | Kstarg of int  (** arg-reg k -> slot(h32), prologue spill *)
  | Kcall  (** mov r11, sym(hsym); call r11 *)
  | Kstret of int  (** ret-reg lane -> slot(h32) *)
  | Kastrap of bool * int  (** saddtrap/ssubtrap: is-sub, canon bits *)
  | Kastrap128 of bool
  | Kmultrap of int  (** canon bits (0 = i64) *)
  | Kmultrap128  (** always the umbra_i128MulFull helper *)
  | Kjmp
  | Kcondbr  (** ld cond; cmp 0; jcc eq -> else target *)
  | Kcondbr2  (** the phi-free fast path: jcc eq -> else; jmp -> then *)
  | Kcondbrnz  (** inverted: jcc ne -> then target, else falls through *)
  | Kprologue_args of int
      (** prologue fused with the spill of [n] scalar register arguments;
          arg slots are deterministically 0, 8, ..., so the stores need no
          holes at all *)
  | Kret of int  (** number of return lanes: 0, 1 or 2 *)
  | Kunreachable
  | Kfalu of Minst.falu
  | Kcvt of bool  (** [true] = si2f, else f2si *)
  | Kcopy of bool  (** slot-to-slot copy, [true] = 16 bytes *)

(* Fixed stencil registers — all caller-saved on the virtual x64 target,
   so no save/restore anywhere. Mul_wide and Div implicitly use rax/rdx. *)
let ra = 0 (* rax *)
let rc = 1 (* rcx *)
let rd = 2 (* rdx *)
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11

(* ------------------------------------------------------------------ *)
(* Dense key numbering. The per-query compiler resolves stencils through a
   flat array indexed by this code (see [fetch]) — a hash lookup per
   emitted stencil would be a meaningful fraction of the whole per-query
   compile. The strides below just need to keep the ranges disjoint. *)

let alu_idx : Minst.alu -> int = function
  | Minst.Add -> 0 | Minst.Sub -> 1 | Minst.Adc -> 2 | Minst.Sbb -> 3
  | Minst.And -> 4 | Minst.Or -> 5 | Minst.Xor -> 6 | Minst.Mul -> 7
  | Minst.Shl -> 8 | Minst.Shr -> 9 | Minst.Sar -> 10 | Minst.Ror -> 11

let cond_idx : Minst.cond -> int = function
  | Minst.Eq -> 0 | Minst.Ne -> 1 | Minst.Slt -> 2 | Minst.Sle -> 3
  | Minst.Sgt -> 4 | Minst.Sge -> 5 | Minst.Ult -> 6 | Minst.Ule -> 7
  | Minst.Ugt -> 8 | Minst.Uge -> 9 | Minst.Ov -> 10 | Minst.Noov -> 11

let falu_idx : Minst.falu -> int = function
  | Minst.Fadd -> 0 | Minst.Fsub -> 1 | Minst.Fmul -> 2 | Minst.Fdiv -> 3

(* canonicalization widths {0,1,8,16,32} and access sizes {1,2,4,8} *)
let bits_idx = function 0 -> 0 | 1 -> 1 | 8 -> 2 | 16 -> 3 | 32 -> 4 | _ -> assert false
let size_idx = function 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3 | _ -> assert false
let bit b = if b then 1 else 0

let key_code : key -> int = function
  | Kprologue -> 0
  | Kepilogue -> 1
  | Ktrap -> 2
  | Kconst b -> 3 + bit b
  | Kisnull b -> 5 + bit b
  | Kmul128 -> 7
  | Kgep_base -> 8
  | Kgep_mul -> 9
  | Kcrc32 -> 10
  | Klmf -> 11
  | Kcall -> 12
  | Kjmp -> 13
  | Kcondbr -> 14
  | Kcondbr2 -> 15
  | Kunreachable -> 16
  | Kmultrap128 -> 17
  | Ksext b -> 18 + bit b
  | Kselect b -> 20 + bit b
  | Kcopy b -> 22 + bit b
  | Kcvt b -> 24 + bit b
  | Kcmp128eq b -> 26 + bit b
  | Kstret lane -> 28 + lane
  | Kret n -> 30 + n
  | Kastrap128 b -> 33 + bit b
  | Ktrunc k -> 35 + (if k = -1 then 0 else 1 + bits_idx k)
  | Katomic size -> 41 + size_idx size
  | Kmultrap bits -> 45 + bits_idx bits
  | Kgep scale -> 50 + size_idx scale
  | Kldarg k -> 54 + k
  | Kstarg k -> 70 + k
  | Kastrap (sub, bits) -> 86 + (5 * bit sub) + bits_idx bits
  | Kzext (bits, to128) -> 96 + (5 * bit to128) + bits_idx bits
  | Kload (size, sext, i128) -> 106 + (4 * size_idx size) + (2 * bit sext) + bit i128
  | Kstore (size, i128) -> 122 + (2 * size_idx size) + bit i128
  | Kdiv (s, r, bits) -> 130 + (5 * ((2 * bit s) + bit r)) + bits_idx bits
  | Kalu (op, bits) -> 150 + (5 * alu_idx op) + bits_idx bits
  | Kalu128 op -> 210 + alu_idx op
  | Kfalu op -> 222 + falu_idx op
  | Kcmp (c, fl) -> 226 + (2 * cond_idx c) + bit fl
  | Kcmp128ord (u, hi) -> 250 + (12 * cond_idx u) + cond_idx hi
  | Kshift128 (op, amt) -> 394 + (128 * (alu_idx op - 8)) + amt
  | Kcondbrnz -> 394 + (128 * 3)
  | Kprologue_args n -> 394 + (128 * 3) + n  (* n in 1..8 *)

let ncodes = 394 + (128 * 3) + 9

let all_alus =
  Minst.[| Add; Sub; Adc; Sbb; And; Or; Xor; Mul; Shl; Shr; Sar; Ror |]

let all_conds =
  Minst.[| Eq; Ne; Slt; Sle; Sgt; Sge; Ult; Ule; Ugt; Uge; Ov; Noov |]

let all_bits = [| 0; 1; 8; 16; 32 |]
let all_sizes = [| 1; 2; 4; 8 |]

(* The per-query walk deals in key codes only: the tables below map each
   parametric family straight to its code (one small-array probe instead
   of a [key] allocation plus the [key_code] match per emission), and the
   [kc_*] constants cover the non-parametric shapes. [key_of_code] is the
   inverse, consulted only on the cold library-miss path. Everything is
   derived through [key_code], so the numbering lives in one place. *)

let kalu_tbl =
  Array.init 60 (fun c -> key_code (Kalu (all_alus.(c / 5), all_bits.(c mod 5))))

let kalu a b = Array.unsafe_get kalu_tbl ((alu_idx a * 5) + bits_idx b)
let kalu128_tbl = Array.init 12 (fun c -> key_code (Kalu128 all_alus.(c)))
let kalu128 a = Array.unsafe_get kalu128_tbl (alu_idx a)

let kcmp_tbl =
  Array.init 24 (fun c -> key_code (Kcmp (all_conds.(c / 2), c land 1 = 1)))

let kcmp c fl = Array.unsafe_get kcmp_tbl ((cond_idx c * 2) + bit fl)

let kcmp128ord_tbl =
  Array.init 144 (fun c ->
      key_code (Kcmp128ord (all_conds.(c / 12), all_conds.(c mod 12))))

let kcmp128ord u hi = Array.unsafe_get kcmp128ord_tbl ((cond_idx u * 12) + cond_idx hi)
let kcmp128eq_tbl = [| key_code (Kcmp128eq false); key_code (Kcmp128eq true) |]
let kcmp128eq ne = Array.unsafe_get kcmp128eq_tbl (bit ne)

let kzext_tbl =
  Array.init 10 (fun c -> key_code (Kzext (all_bits.(c mod 5), c >= 5)))

let kzext bits to128 = Array.unsafe_get kzext_tbl ((5 * bit to128) + bits_idx bits)

let ktrunc_tbl =
  Array.init 6 (fun c -> key_code (Ktrunc (if c = 0 then -1 else all_bits.(c - 1))))

let ktrunc k = Array.unsafe_get ktrunc_tbl (if k = -1 then 0 else 1 + bits_idx k)

let kload_tbl =
  Array.init 16 (fun c ->
      key_code (Kload (all_sizes.(c / 4), c land 2 = 2, c land 1 = 1)))

let kload size sext i128 =
  Array.unsafe_get kload_tbl ((4 * size_idx size) + (2 * bit sext) + bit i128)

let kstore_tbl =
  Array.init 8 (fun c -> key_code (Kstore (all_sizes.(c / 2), c land 1 = 1)))

let kstore size i128 = Array.unsafe_get kstore_tbl ((2 * size_idx size) + bit i128)
let kgep_tbl = Array.init 4 (fun c -> key_code (Kgep all_sizes.(c)))
let kgep scale = Array.unsafe_get kgep_tbl (size_idx scale)

let kdiv_tbl =
  Array.init 20 (fun c ->
      key_code (Kdiv (c >= 10, c / 5 land 1 = 1, all_bits.(c mod 5))))

let kdiv signed rem bits =
  Array.unsafe_get kdiv_tbl ((10 * bit signed) + (5 * bit rem) + bits_idx bits)

let kastrap_tbl =
  Array.init 10 (fun c -> key_code (Kastrap (c >= 5, all_bits.(c mod 5))))

let kastrap sub bits = Array.unsafe_get kastrap_tbl ((5 * bit sub) + bits_idx bits)
let kmultrap_tbl = Array.init 5 (fun c -> key_code (Kmultrap all_bits.(c)))
let kmultrap bits = Array.unsafe_get kmultrap_tbl (bits_idx bits)
let kldarg_tbl = Array.init 16 (fun k -> key_code (Kldarg k))
let kldarg k = Array.unsafe_get kldarg_tbl k
let kstarg_tbl = Array.init 16 (fun k -> key_code (Kstarg k))
let kstarg k = Array.unsafe_get kstarg_tbl k

let kfalu_tbl =
  Minst.[| key_code (Kfalu Fadd); key_code (Kfalu Fsub);
           key_code (Kfalu Fmul); key_code (Kfalu Fdiv) |]

let kfalu op = Array.unsafe_get kfalu_tbl (falu_idx op)
let kastrap128_tbl = [| key_code (Kastrap128 false); key_code (Kastrap128 true) |]
let kastrap128 sub = Array.unsafe_get kastrap128_tbl (bit sub)
let katomic_tbl = Array.init 4 (fun c -> key_code (Katomic all_sizes.(c)))
let katomic size = Array.unsafe_get katomic_tbl (size_idx size)

let kshift128_tbl =
  Array.init 384 (fun c ->
      key_code (Kshift128 (all_alus.(8 + (c / 128)), c mod 128)))

let kshift128 op amt = Array.unsafe_get kshift128_tbl ((128 * (alu_idx op - 8)) + amt)

let kprologue_args_tbl =
  Array.init 8 (fun i -> key_code (Kprologue_args (i + 1)))

let kprologue_args n = Array.unsafe_get kprologue_args_tbl (n - 1)
let kc_prologue = key_code Kprologue
let kc_epilogue = key_code Kepilogue
let kc_trap = key_code Ktrap
let kc_const = key_code (Kconst false)
let kc_const128 = key_code (Kconst true)
let kc_isnull = key_code (Kisnull false)
let kc_isnotnull = key_code (Kisnull true)
let kc_mul128 = key_code Kmul128
let kc_multrap128 = key_code Kmultrap128
let kc_sext = key_code (Ksext false)
let kc_sext128 = key_code (Ksext true)
let kc_select = key_code (Kselect false)
let kc_select128 = key_code (Kselect true)
let kc_copy = key_code (Kcopy false)
let kc_copy128 = key_code (Kcopy true)
let kc_cvt_f2i = key_code (Kcvt false)
let kc_cvt_i2f = key_code (Kcvt true)
let kc_load128 = key_code (Kload (8, false, true))
let kc_store128 = key_code (Kstore (8, true))
let kc_gep_base = key_code Kgep_base
let kc_gep_mul = key_code Kgep_mul
let kc_crc32 = key_code Kcrc32
let kc_lmf = key_code Klmf
let kc_call = key_code Kcall
let kc_stret0 = key_code (Kstret 0)
let kc_stret1 = key_code (Kstret 1)
let kc_jmp = key_code Kjmp
let kc_condbr = key_code Kcondbr
let kc_condbrnz = key_code Kcondbrnz
let kc_condbr2 = key_code Kcondbr2
let kc_ret0 = key_code (Kret 0)
let kc_ret1 = key_code (Kret 1)
let kc_ret2 = key_code (Kret 2)
let kc_unreachable = key_code Kunreachable

(* code -> key, for the library-miss path (and for enumerating the full
   shape population). Every code is covered: the numbering is dense. *)
let key_of_code : key array =
  let a = Array.make ncodes Kprologue in
  let put k = a.(key_code k) <- k in
  List.iter put
    [ Kprologue; Kepilogue; Ktrap; Kmul128; Kgep_base; Kgep_mul; Kcrc32;
      Klmf; Kcall; Kjmp; Kcondbr; Kcondbr2; Kcondbrnz; Kunreachable;
      Kmultrap128 ];
  List.iter
    (fun b ->
      List.iter put
        [ Kconst b; Kisnull b; Ksext b; Kselect b; Kcopy b; Kcvt b;
          Kcmp128eq b; Kastrap128 b ])
    [ false; true ];
  put (Kstret 0);
  put (Kstret 1);
  for n = 0 to 2 do put (Kret n) done;
  List.iter (fun k -> put (Ktrunc k)) [ -1; 0; 1; 8; 16; 32 ];
  Array.iter (fun s -> put (Katomic s)) all_sizes;
  Array.iter (fun w -> put (Kmultrap w)) all_bits;
  Array.iter (fun s -> put (Kgep s)) all_sizes;
  for k = 0 to 15 do
    put (Kldarg k);
    put (Kstarg k)
  done;
  List.iter
    (fun sub -> Array.iter (fun w -> put (Kastrap (sub, w))) all_bits)
    [ false; true ];
  Array.iter
    (fun w ->
      put (Kzext (w, false));
      put (Kzext (w, true)))
    all_bits;
  Array.iter
    (fun sz ->
      List.iter
        (fun sx ->
          put (Kload (sz, sx, false));
          put (Kload (sz, sx, true)))
        [ false; true ];
      put (Kstore (sz, false));
      put (Kstore (sz, true)))
    all_sizes;
  List.iter
    (fun s ->
      List.iter
        (fun r -> Array.iter (fun w -> put (Kdiv (s, r, w))) all_bits)
        [ false; true ])
    [ false; true ];
  Array.iter
    (fun op ->
      Array.iter (fun w -> put (Kalu (op, w))) all_bits;
      put (Kalu128 op))
    all_alus;
  List.iter (fun op -> put (Kfalu op)) Minst.[ Fadd; Fsub; Fmul; Fdiv ];
  Array.iter
    (fun c ->
      put (Kcmp (c, false));
      put (Kcmp (c, true)))
    all_conds;
  Array.iter
    (fun u -> Array.iter (fun hi -> put (Kcmp128ord (u, hi))) all_conds)
    all_conds;
  List.iter
    (fun op -> for amt = 0 to 127 do put (Kshift128 (op, amt)) done)
    Minst.[ Shl; Shr; Sar ];
  for n = 1 to 8 do put (Kprologue_args n) done;
  a

(* ------------------------------------------------------------------ *)
(* Building one stencil: drive the ordinary encoder with placeholder
   immediates chosen to force the widest (fixed-size) encodings, and
   record each hole's byte offset. *)

type builder = { asm : Asm.t; mutable holes : hole list }

(* placeholders that force the i32 / i64 immediate forms *)
let wide32 = 0x7FFF_FFFFL
let wide64 = 0x7FFF_FFFF_FFFF_FFFFL

let build (target : Target.t) key : stencil =
  let b = { asm = Asm.create target; holes = [] } in
  let e i = Asm.emit b.asm i in
  let h x = b.holes <- x :: b.holes in
  let off () = Asm.offset b.asm in
  let sp = target.Target.sp in
  let args = target.Target.arg_regs in
  let rets = target.Target.ret_regs in
  (* slot load/store: Ld/St always carry a 4-byte displacement at +2 *)
  let ld reg a =
    let o = off () in
    e (Minst.Ld { dst = reg; base = sp; off = 0; size = 8; sext = false });
    h (H32 (o + 2, a))
  in
  let st reg a =
    let o = off () in
    e (Minst.St { src = reg; base = sp; off = 0; size = 8 });
    h (H32 (o + 2, a))
  in
  (* memory access through a pointer register, displacement hole *)
  let ldm reg base ~size ~sext a =
    let o = off () in
    e (Minst.Ld { dst = reg; base; off = 0; size; sext });
    h (H32 (o + 2, a))
  in
  let stm reg base ~size a =
    let o = off () in
    e (Minst.St { src = reg; base; off = 0; size });
    h (H32 (o + 2, a))
  in
  let imm64 reg a =
    let o = off () in
    e (Minst.Mov_ri (reg, wide64));
    h (H64 (o + 2, a))
  in
  let sym64 reg a =
    let o = off () in
    e (Minst.Mov_ri (reg, wide64));
    h (Hsym (o + 2, a))
  in
  let alu32 op reg a =
    let o = off () in
    e (Minst.Alu_ri (op, reg, wide32));
    h (H32 (o + 2, a))
  in
  let jmp_t a =
    let o = off () in
    e (Minst.Jmp 0);
    h (Htgt (o + 1, a))
  in
  let jcc_t cond a =
    let o = off () in
    e (Minst.Jcc (cond, 0));
    h (Htgt (o + 1, a))
  in
  let canon reg bits =
    if bits <> 0 then e (Minst.Ext { dst = reg; src = reg; bits; signed = true })
  in
  let shift_i amt = Int64.of_int amt in
  (match key with
  | Kprologue -> alu32 Minst.Sub sp 0
  | Kprologue_args n ->
      alu32 Minst.Sub sp 0;
      (* argument slots sit at the fixed 32-byte stride of the frame layout
         (see [compile_func]), so the store offsets are baked into the
         stencil and need no holes *)
      for k = 0 to n - 1 do
        e (Minst.St { src = args.(k); base = sp; off = 32 * k; size = 8 })
      done
  | Kepilogue ->
      alu32 Minst.Add sp 0;
      e Minst.Ret
  | Ktrap ->
      sym64 r11 0;
      e (Minst.Call_ind r11);
      e (Minst.Brk 1)
  | Kconst false ->
      imm64 ra 0;
      st ra 0
  | Kconst true ->
      imm64 ra 0;
      imm64 rc 1;
      st ra 0;
      st rc 1
  | Kisnull ne ->
      ld ra 0;
      e (Minst.Cmp_ri (ra, 0L));
      e (Minst.Setcc ((if ne then Minst.Ne else Minst.Eq), ra));
      st ra 1
  | Kalu (op, bits) ->
      (* also covers shifts: the register ALU form shares alu_eval with the
         immediate form, so constant amounts just come from their slot *)
      ld ra 0;
      ld rc 1;
      e (Minst.Alu_rr (op, ra, rc));
      canon ra bits;
      st ra 2
  | Kalu128 op ->
      ld ra 0;
      ld rc 1;
      ld r8 2;
      ld r9 3;
      (match op with
      | Minst.Add ->
          (* lo then hi back-to-back: the carry flag must survive *)
          e (Minst.Alu_rr (Minst.Add, ra, rc));
          e (Minst.Alu_rr (Minst.Adc, r8, r9))
      | Minst.Sub ->
          e (Minst.Alu_rr (Minst.Sub, ra, rc));
          e (Minst.Alu_rr (Minst.Sbb, r8, r9))
      | op ->
          e (Minst.Alu_rr (op, ra, rc));
          e (Minst.Alu_rr (op, r8, r9)));
      st ra 4;
      st r8 5
  | Kmul128 ->
      (* truncated 128x128 multiply, exactly DirectEmit's sequence:
         rdx:rax = xlo *u ylo; rdx += xhi*ylo + xlo*yhi *)
      ld ra 0;
      ld rc 1;
      ld r8 2;
      ld r9 3;
      e (Minst.Mov_rr (r11, ra));
      e (Minst.Mul_wide { signed = false; src = rc });
      e (Minst.Mov_rr (r10, r8));
      e (Minst.Alu_rr (Minst.Mul, r10, rc));
      e (Minst.Alu_rr (Minst.Add, rd, r10));
      e (Minst.Mov_rr (r10, r11));
      e (Minst.Alu_rr (Minst.Mul, r10, r9));
      e (Minst.Alu_rr (Minst.Add, rd, r10));
      st ra 4;
      st rd 5
  | Kshift128 (op, amt) ->
      (* holes: 0 = x.lo, 1 = x.hi, 2 = d.lo, 3 = d.hi *)
      if amt = 0 then begin
        ld ra 0;
        ld rc 1;
        st ra 2;
        st rc 3
      end
      else if amt >= 64 then begin
        match op with
        | Minst.Shr | Minst.Sar ->
            ld rc 1;
            e (Minst.Mov_rr (ra, rc));
            if amt > 64 then e (Minst.Alu_ri (op, ra, shift_i (amt - 64)));
            (if op = Minst.Shr then e (Minst.Mov_ri (rd, 0L))
             else begin
               e (Minst.Mov_rr (rd, rc));
               e (Minst.Alu_ri (Minst.Sar, rd, 63L))
             end);
            st ra 2;
            st rd 3
        | Minst.Shl ->
            ld ra 0;
            e (Minst.Mov_rr (rd, ra));
            if amt > 64 then e (Minst.Alu_ri (Minst.Shl, rd, shift_i (amt - 64)));
            e (Minst.Mov_ri (rc, 0L));
            st rc 2;
            st rd 3
        | _ -> unsupported "i128 rotate"
      end
      else begin
        match op with
        | Minst.Shr | Minst.Sar ->
            ld ra 0;
            ld rc 1;
            e (Minst.Alu_ri (Minst.Shr, ra, shift_i amt));
            e (Minst.Mov_rr (r10, rc));
            e (Minst.Alu_ri (Minst.Shl, r10, shift_i (64 - amt)));
            e (Minst.Alu_rr (Minst.Or, ra, r10));
            e (Minst.Mov_rr (rd, rc));
            e (Minst.Alu_ri (op, rd, shift_i amt));
            st ra 2;
            st rd 3
        | Minst.Shl ->
            ld ra 0;
            ld rc 1;
            e (Minst.Mov_rr (rd, rc));
            e (Minst.Alu_ri (Minst.Shl, rd, shift_i amt));
            e (Minst.Mov_rr (r10, ra));
            e (Minst.Alu_ri (Minst.Shr, r10, shift_i (64 - amt)));
            e (Minst.Alu_rr (Minst.Or, rd, r10));
            e (Minst.Alu_ri (Minst.Shl, ra, shift_i amt));
            st ra 2;
            st rd 3
        | _ -> unsupported "i128 rotate"
      end
  | Kdiv (signed, rem, bits) ->
      ld ra 0;
      ld rc 1;
      (if signed then begin
         e (Minst.Mov_rr (rd, ra));
         e (Minst.Alu_ri (Minst.Sar, rd, 63L))
       end
       else e (Minst.Mov_ri (rd, 0L)));
      e (Minst.Div { signed; src = rc });
      let res = if rem then rd else ra in
      canon res bits;
      st res 2
  | Kcmp (cond, fl) ->
      ld ra 0;
      ld rc 1;
      e (if fl then Minst.Fcmp_rr (ra, rc) else Minst.Cmp_rr (ra, rc));
      e (Minst.Setcc (cond, ra));
      st ra 2
  | Kcmp128eq ne ->
      ld ra 0;
      ld rc 1;
      ld r8 2;
      ld r9 3;
      e (Minst.Cmp_rr (ra, rc));
      e (Minst.Setcc (Minst.Eq, r10));
      e (Minst.Cmp_rr (r8, r9));
      e (Minst.Setcc (Minst.Eq, ra));
      e (Minst.Alu_rr (Minst.And, ra, r10));
      if ne then e (Minst.Alu_ri (Minst.Xor, ra, 1L));
      st ra 4
  | Kcmp128ord (u, hi) ->
      (* the hi words decide unless equal; the lo words compare unsigned *)
      ld ra 0;
      ld rc 1;
      ld r8 2;
      ld r9 3;
      e (Minst.Cmp_rr (ra, rc));
      e (Minst.Setcc (u, r10));
      e (Minst.Cmp_rr (r8, r9));
      e (Minst.Setcc (hi, ra));
      e (Minst.Csel { cond = Minst.Ne; dst = ra; a = ra; b = r10 });
      st ra 4
  | Kzext (bits, to128) ->
      ld ra 0;
      if bits <> 0 then e (Minst.Ext { dst = ra; src = ra; bits; signed = false });
      st ra 1;
      if to128 then begin
        e (Minst.Mov_ri (rc, 0L));
        st rc 2
      end
  | Ksext to128 ->
      (* sources are canonical (sign-extended): the low lane is a copy *)
      ld ra 0;
      st ra 1;
      if to128 then begin
        e (Minst.Mov_rr (rc, ra));
        e (Minst.Alu_ri (Minst.Sar, rc, 63L));
        st rc 2
      end
  | Ktrunc k ->
      ld ra 0;
      (match k with
      | -1 -> e (Minst.Alu_ri (Minst.And, ra, 1L))
      | 0 -> ()
      | bits -> canon ra bits);
      st ra 1
  | Kselect false ->
      (* holes: 0 = then-value, 1 = else-value, 2 = condition, 3 = dst *)
      ld ra 0;
      ld rc 1;
      ld rd 2;
      e (Minst.Cmp_ri (rd, 0L));
      e (Minst.Csel { cond = Minst.Ne; dst = ra; a = ra; b = rc });
      st ra 3
  | Kselect true ->
      (* cmov does not write flags, so one compare serves both lanes *)
      ld ra 0;
      ld rc 1;
      ld rd 2;
      ld r8 3;
      ld r9 4;
      e (Minst.Cmp_ri (rd, 0L));
      e (Minst.Csel { cond = Minst.Ne; dst = ra; a = ra; b = rc });
      e (Minst.Csel { cond = Minst.Ne; dst = r8; a = r8; b = r9 });
      st ra 5;
      st r8 6
  | Kload (size, sext, false) ->
      ld ra 0;
      ldm rc ra ~size ~sext 1;
      st rc 2
  | Kload (_, _, true) ->
      ld ra 0;
      ldm rc ra ~size:8 ~sext:false 1;
      ldm rd ra ~size:8 ~sext:false 2;
      st rc 3;
      st rd 4
  | Kstore (size, false) ->
      ld ra 0;
      ld rc 1;
      stm rc ra ~size 2
  | Kstore (_, true) ->
      ld ra 0;
      ld rc 1;
      stm rc ra ~size:8 2;
      ld rd 3;
      stm rd ra ~size:8 4
  | Kgep_base ->
      ld ra 0;
      let o = off () in
      e (Minst.Lea { dst = rc; base = ra; index = -1; scale = 1; off = 0 });
      h (H32 (o + 4, 1));
      st rc 2
  | Kgep scale ->
      ld ra 0;
      ld rc 1;
      let o = off () in
      e (Minst.Lea { dst = rd; base = ra; index = rc; scale; off = 0 });
      h (H32 (o + 4, 2));
      st rd 3
  | Kgep_mul ->
      ld ra 0;
      ld rc 1;
      alu32 Minst.Mul rc 2;
      e (Minst.Alu_rr (Minst.Add, rc, ra));
      alu32 Minst.Add rc 3;
      st rc 4
  | Kcrc32 ->
      ld ra 0;
      ld rc 1;
      e (Minst.Crc32_rr (ra, rc));
      st ra 2
  | Klmf ->
      ld ra 0;
      ld rc 1;
      e (Minst.Mul_wide { signed = false; src = rc });
      e (Minst.Alu_rr (Minst.Xor, ra, rd));
      st ra 2
  | Katomic size ->
      ld ra 0;
      ld rc 1;
      e (Minst.Ld { dst = rd; base = ra; off = 0; size; sext = size < 8 });
      e (Minst.Mov_rr (r10, rd));
      e (Minst.Alu_rr (Minst.Add, r10, rc));
      e (Minst.St { src = r10; base = ra; off = 0; size });
      st rd 2
  | Kldarg k -> ld args.(k) 0
  | Kstarg k -> st args.(k) 0
  | Kcall ->
      sym64 r11 0;
      e (Minst.Call_ind r11)
  | Kstret lane -> st rets.(lane) 0
  | Kastrap (sub, 0) ->
      ld ra 0;
      ld rc 1;
      e (Minst.Alu_rr ((if sub then Minst.Sub else Minst.Add), ra, rc));
      jcc_t Minst.Ov 0;
      st ra 2
  | Kastrap (sub, bits) ->
      (* narrow: the result must equal its own sign-extension *)
      ld ra 0;
      ld rc 1;
      e (Minst.Alu_rr ((if sub then Minst.Sub else Minst.Add), ra, rc));
      e (Minst.Ext { dst = r10; src = ra; bits; signed = true });
      e (Minst.Cmp_rr (r10, ra));
      jcc_t Minst.Ne 0;
      st r10 2
  | Kastrap128 sub ->
      ld ra 0;
      ld rc 1;
      ld r8 2;
      ld r9 3;
      (if sub then begin
         e (Minst.Alu_rr (Minst.Sub, ra, rc));
         e (Minst.Alu_rr (Minst.Sbb, r8, r9))
       end
       else begin
         e (Minst.Alu_rr (Minst.Add, ra, rc));
         e (Minst.Alu_rr (Minst.Adc, r8, r9))
       end);
      jcc_t Minst.Ov 0;
      st ra 4;
      st r8 5
  | Kmultrap 0 ->
      ld ra 0;
      ld rc 1;
      e (Minst.Alu_rr (Minst.Mul, ra, rc));
      jcc_t Minst.Ov 0;
      st ra 2
  | Kmultrap bits ->
      ld ra 0;
      ld rc 1;
      e (Minst.Alu_rr (Minst.Mul, ra, rc));
      e (Minst.Ext { dst = r10; src = ra; bits; signed = true });
      e (Minst.Cmp_rr (r10, ra));
      jcc_t Minst.Ne 0;
      st r10 2
  | Kmultrap128 ->
      (* the runtime helper computes the full product and raises the same
         overflow trap DirectEmit's slow path relies on, so going through
         it unconditionally is result- and trap-equivalent *)
      ld args.(0) 0;
      ld args.(1) 1;
      ld args.(2) 2;
      ld args.(3) 3;
      sym64 r11 0;
      e (Minst.Call_ind r11);
      st rets.(0) 4;
      st rets.(1) 5
  | Kjmp -> jmp_t 0
  | Kcondbr ->
      ld ra 0;
      e (Minst.Cmp_ri (ra, 0L));
      jcc_t Minst.Eq 0
  | Kcondbrnz ->
      ld ra 0;
      e (Minst.Cmp_ri (ra, 0L));
      jcc_t Minst.Ne 0
  | Kcondbr2 ->
      (* targets: 0 = else, 1 = then *)
      ld ra 0;
      e (Minst.Cmp_ri (ra, 0L));
      jcc_t Minst.Eq 0;
      jmp_t 1
  | Kret 0 -> jmp_t 0
  | Kret 1 ->
      ld rets.(0) 0;
      jmp_t 0
  | Kret _ ->
      ld rets.(0) 0;
      ld rets.(1) 1;
      jmp_t 0
  | Kunreachable -> e (Minst.Brk 0)
  | Kfalu op ->
      ld ra 0;
      ld rc 1;
      e (Minst.Falu_rr (op, ra, rc));
      st ra 2
  | Kcvt si2f ->
      ld ra 0;
      e (if si2f then Minst.Cvt_si2f (rc, ra) else Minst.Cvt_f2si (rc, ra));
      st rc 1
  | Kcopy false ->
      ld r11 0;
      st r11 1
  | Kcopy true ->
      ld r11 0;
      st r11 1;
      ld r11 2;
      st r11 3);
  let holes = List.rev b.holes in
  let h32 =
    List.filter_map (function H32 (o, a) -> Some ((o lsl 3) lor a) | _ -> None) holes
  in
  let rest = List.filter (function H32 _ -> false | _ -> true) holes in
  let code = Asm.finish b.asm in
  let n = Bytes.length code in
  let padded = Bytes.make (max 64 ((n + 7) land -8)) '\000' in
  Bytes.blit code 0 padded 0 n;
  { s_code = padded; s_len = n; s_h32 = Array.of_list h32; s_rest = Array.of_list rest }

(* ------------------------------------------------------------------ *)
(* The library: a process-wide memoized table. Parallel serving workers
   (--domains) compile concurrently, hence the mutex. *)

let table : (key, stencil) Hashtbl.t = Hashtbl.create 256
let table_mu = Mutex.create ()

let stencil_of target key =
  Mutex.protect table_mu (fun () ->
      match Hashtbl.find_opt table key with
      | Some s -> s
      | None ->
          let s = build target key in
          Hashtbl.add table key s;
          s)

let library_size () = Mutex.protect table_mu (fun () -> Hashtbl.length table)

let dummy_stencil =
  { s_code = Bytes.create 64; s_len = 0; s_h32 = [||]; s_rest = [||] }

(* The x64 library as a dense array, filled by [prewarm]. Per-compilation
   caches start as a copy of this, so steady-state library access is one
   array probe with no hashing and no lock. *)
let dense_x64 = Array.make ncodes dummy_stencil

(* The flat library: every prewarmed stencil packed into one contiguous
   code pool with one metadata int per key code. The per-stencil records
   above are ~220 scattered heap objects (record, code bytes, hole
   array); at one stencil instantiation every ~35 ns that working set
   misses L1 constantly. The flat form is ~20 kB of contiguous data, so
   the steady-state emit path reads from cache-hot memory only.

   Metadata packing (bit 0 set = present):
     bits 1-3   H32 hole count (max arity is 7)
     bit 4      has non-H32 holes (consult [fl_rest])
     bits 5-15  start index into [fl_h32]
     bits 16-25 true code length in bytes
     bits 26-.. byte offset into [fl_pool]
   Any stencil that does not fit this packing keeps a zero word and goes
   through the slow record path instead. *)
type flat = {
  fl_pool : Bytes.t;  (** concatenated padded stencil code *)
  fl_meta : int array;  (** key_code -> packed word, 0 = not present *)
  fl_h32 : int array;  (** packed H32 holes, [off lsl 3 lor arg] *)
  fl_rest : hole array array;  (** key_code -> non-H32 holes *)
}

let empty_flat =
  { fl_pool = Bytes.create 64; fl_meta = Array.make ncodes 0;
    fl_h32 = [||]; fl_rest = Array.make ncodes [||] }

(* Written once by [prewarm] before any serving domain is spawned (the
   spawn provides the needed happens-before edge); read-only after. *)
let flat_x64 = ref empty_flat

let flat_of_table () =
  let entries =
    Mutex.protect table_mu (fun () ->
        Hashtbl.fold (fun k s acc -> (key_code k, s) :: acc) table [])
  in
  let pool_len =
    List.fold_left (fun a (_, s) -> a + Bytes.length s.s_code) 0 entries
  in
  let pool = Bytes.create (pool_len + 64) in
  let meta = Array.make ncodes 0 in
  let rest = Array.make ncodes [||] in
  let h32s = ref [] and nh32 = ref 0 in
  let off = ref 0 in
  List.iter
    (fun (c, s) ->
      let hc = Array.length s.s_h32 and h0 = !nh32 in
      if s.s_len < 1024 && hc <= 7 && h0 < 2048 then begin
        Bytes.blit s.s_code 0 pool !off (Bytes.length s.s_code);
        Array.iter (fun p -> h32s := p :: !h32s; incr nh32) s.s_h32;
        let has_rest = if Array.length s.s_rest > 0 then 16 else 0 in
        rest.(c) <- s.s_rest;
        meta.(c) <-
          1 lor (hc lsl 1) lor has_rest lor (h0 lsl 5) lor (s.s_len lsl 16)
          lor (!off lsl 26);
        off := !off + Bytes.length s.s_code
      end)
    entries;
  {
    fl_pool = pool;
    fl_meta = meta;
    fl_h32 = Array.of_list (List.rev !h32s);
    fl_rest = rest;
  }

(** Pre-build the non-parametric population so the first query does not
    pay for library construction. Idempotent and cheap (each stencil is a
    few dozen bytes through the encoder). *)
let prewarm () =
  let t = Target.x64 in
  let get k = dense_x64.(key_code k) <- stencil_of t k in
  List.iter get [ Kprologue; Kepilogue; Ktrap; Kconst false; Kconst true ];
  List.iter get [ Kisnull false; Kisnull true ];
  let bits = [ 0; 8; 16; 32 ] in
  List.iter
    (fun op -> List.iter (fun w -> get (Kalu (op, w))) bits)
    Minst.[ Add; Sub; Mul; And; Or; Xor; Shl; Shr; Sar; Ror ];
  List.iter (fun op -> get (Kalu128 op)) Minst.[ Add; Sub; And; Or; Xor ];
  get Kmul128;
  List.iter
    (fun signed ->
      List.iter
        (fun rem -> List.iter (fun w -> get (Kdiv (signed, rem, w))) bits)
        [ false; true ])
    [ false; true ];
  List.iter
    (fun c ->
      get (Kcmp (c, false));
      get (Kcmp (c, true)))
    Minst.[ Eq; Ne; Slt; Sle; Sgt; Sge; Ult; Ule; Ugt; Uge ];
  List.iter get [ Kcmp128eq false; Kcmp128eq true ];
  List.iter
    (fun (u, hi) -> get (Kcmp128ord (u, hi)))
    Minst.[ (Ult, Slt); (Ule, Slt); (Ugt, Sgt); (Uge, Sgt);
            (Ult, Ult); (Ule, Ult); (Ugt, Ugt); (Uge, Ugt) ];
  List.iter
    (fun w ->
      get (Kzext (w, false));
      get (Kzext (w, true)))
    [ 0; 1; 8; 16; 32 ];
  List.iter get [ Ksext false; Ksext true ];
  List.iter (fun k -> get (Ktrunc k)) [ -1; 0; 8; 16; 32 ];
  List.iter get [ Kselect false; Kselect true ];
  List.iter
    (fun size ->
      get (Kload (size, size < 8, false));
      get (Kstore (size, false)))
    [ 1; 2; 4; 8 ];
  get (Kload (1, false, false));
  get (Kload (8, false, true));
  get (Kstore (8, true));
  get Kgep_base;
  List.iter (fun s -> get (Kgep s)) [ 1; 2; 4; 8 ];
  get Kgep_mul;
  List.iter get [ Kcrc32; Klmf; Katomic 8; Katomic 4 ];
  for k = 0 to Array.length Target.x64.Target.arg_regs - 1 do
    get (Kldarg k);
    get (Kstarg k)
  done;
  List.iter get [ Kcall; Kstret 0; Kstret 1 ];
  List.iter
    (fun sub ->
      List.iter (fun w -> get (Kastrap (sub, w))) bits;
      get (Kastrap128 sub))
    [ false; true ];
  List.iter (fun w -> get (Kmultrap w)) bits;
  get Kmultrap128;
  List.iter get
    [ Kjmp; Kcondbr; Kcondbr2; Kcondbrnz; Kret 0; Kret 1; Kret 2; Kunreachable;
      Kcvt false; Kcvt true; Kcopy false; Kcopy true ];
  List.iter (fun op -> get (Kfalu op)) Minst.[ Fadd; Fsub; Fmul; Fdiv ];
  for n = 1 to min 8 (Array.length Target.x64.Target.arg_regs) do
    get (Kprologue_args n)
  done;
  flat_x64 := flat_of_table ()

(* ------------------------------------------------------------------ *)
(* Per-query compilation: blit and patch.                              *)

type cbuf = { mutable bytes : Bytes.t; mutable len : int }

let cb_create () = { bytes = Bytes.create 4096; len = 0 }

let cb_reserve cb n =
  let cap = Bytes.length cb.bytes in
  if cb.len + n > cap then begin
    let b = Bytes.create (max (cb.len + n) (2 * cap)) in
    Bytes.blit cb.bytes 0 b 0 cb.len;
    cb.bytes <- b
  end

let cb_u8 cb v =
  cb_reserve cb 1;
  Bytes.unsafe_set cb.bytes cb.len (Char.unsafe_chr (v land 0xFF));
  cb.len <- cb.len + 1

external get64u : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set64u : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* Stencils are a few dozen bytes; an inline word copy beats the C-call
   round trip of [Bytes.blit] at that size. [s_code] is padded, so the
   common case is a branch-free 64-byte copy with no loop-trip
   misprediction; longer stencils fall back to a word loop. Both may
   write up to 63 bytes of tail garbage past [s_len] into reserved
   slack, which the next emission (or the final [Bytes.sub]) ignores. *)
let cb_blit cb (s : stencil) =
  let n = s.s_len in
  cb_reserve cb (n + 64);
  let src = s.s_code in
  let dst = cb.bytes and base = cb.len in
  if n <= 64 then begin
    set64u dst base (get64u src 0);
    set64u dst (base + 8) (get64u src 8);
    set64u dst (base + 16) (get64u src 16);
    set64u dst (base + 24) (get64u src 24);
    set64u dst (base + 32) (get64u src 32);
    set64u dst (base + 40) (get64u src 40);
    set64u dst (base + 48) (get64u src 48);
    set64u dst (base + 56) (get64u src 56)
  end
  else begin
    let m = (n + 7) land -8 in
    let i = ref 0 in
    while !i < m do
      set64u dst (base + !i) (get64u src !i);
      i := !i + 8
    done
  end;
  cb.len <- base + n

(* all patch positions come from recorded hole offsets inside bytes the
   buffer just grew by, so the unchecked writes stay in bounds *)
let[@inline] patch32 cb pos v =
  let b = cb.bytes in
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v asr 8) land 0xFF));
  Bytes.unsafe_set b (pos + 2) (Char.unsafe_chr ((v asr 16) land 0xFF));
  Bytes.unsafe_set b (pos + 3) (Char.unsafe_chr ((v asr 24) land 0xFF))

let[@inline] patch64 cb pos v = Bytes.set_int64_le cb.bytes pos v

type st = {
  cb : cbuf;
  target : Target.t;
  cache : stencil array;  (** key_code -> stencil, [dummy_stencil] = miss *)
  flat : flat;  (** the packed prewarmed library, [empty_flat] if none *)
  mutable relocs : Qcomp_backend.Artifact.reloc list;
  mutable stencils_used : int;
  (* shared argument scratch: [inst] patches every hole before returning,
     so one buffer per argument class serves all emissions without a
     fresh array per stencil *)
  ai : int array;
  at : int array;
  a64 : int64 array;
}

(* x64 compilations share [dense_x64] directly: entries are only ever
   replaced by the identical stencil ([stencil_of] is memoized), so the
   lock-free shared writes in [fetch] are benign, including across
   parallel serving domains. *)
let cache_for (target : Target.t) =
  if target == Target.x64 then dense_x64
  else Array.make ncodes dummy_stencil

let flat_for (target : Target.t) =
  if target == Target.x64 then !flat_x64 else empty_flat

(* Library access on the per-query path: a flat array probe; only shapes
   missing from the prewarmed set touch the shared table. *)
let[@inline] fetch st code =
  let s = Array.unsafe_get st.cache code in
  if s != dummy_stencil then s
  else begin
    let s = stencil_of st.target (Array.unsafe_get key_of_code code) in
    Array.unsafe_set st.cache code s;
    s
  end

let no_ints = [||]
let no_i64s = [||]
let no_tgts = [||]
let no_syms = [||]

(* Per-function label table: block b -> label b, then epilogue, trap,
   then locally allocated labels (condbr else-stubs). *)
type labels = {
  mutable offs : int array;  (** label -> buffer offset, -1 unbound *)
  mutable n : int;
  mutable fixups : (int * int) list;  (** rel32 field position, label *)
}

let new_label ls =
  let l = ls.n in
  if l = Array.length ls.offs then begin
    let a = Array.make (2 * l) (-1) in
    Array.blit ls.offs 0 a 0 l;
    ls.offs <- a
  end;
  ls.n <- l + 1;
  l

(* Non-H32 holes and library misses are rare; handling them out of line
   keeps the hot instantiation path small. *)
let patch_rest st ls rest base i64s tgts syms =
  for hi = 0 to Array.length rest - 1 do
    match Array.unsafe_get rest hi with
    | H32 _ -> assert false
    | H64 (o, a) -> patch64 st.cb (base + o) (Array.unsafe_get i64s a)
    | Htgt (o, a) -> ls.fixups <- (base + o, Array.unsafe_get tgts a) :: ls.fixups
    | Hsym (o, a) ->
        st.relocs <-
          {
            Qcomp_backend.Artifact.r_off = base + o;
            r_sym = Array.unsafe_get syms a;
            r_kind = Qcomp_backend.Artifact.Abs64;
          }
          :: st.relocs
  done

let inst_slow st ls code ints i64s tgts syms =
  let s = fetch st code in
  let base = st.cb.len in
  cb_blit st.cb s;
  let h32 = s.s_h32 in
  for hi = 0 to Array.length h32 - 1 do
    let p = Array.unsafe_get h32 hi in
    patch32 st.cb (base + (p lsr 3)) (Array.unsafe_get ints (p land 7))
  done;
  patch_rest st ls s.s_rest base i64s tgts syms;
  st.stencils_used <- st.stencils_used + 1

(* Positional on purpose: optional arguments would box a [Some] per call
   and force a generic apply; this is the hottest function in the
   back-end (once per emitted stencil). Reads only the flat library in
   the common case; every access below stays in ~20 kB of contiguous,
   read-only data. *)
let inst st ls code ints i64s tgts syms =
  let fl = st.flat in
  let w = Array.unsafe_get fl.fl_meta code in
  if w = 0 then inst_slow st ls code ints i64s tgts syms
  else begin
    let n = (w lsr 16) land 0x3FF in
    let off = w lsr 26 in
    let cb = st.cb in
    cb_reserve cb (n + 64);
    let src = fl.fl_pool in
    let dst = cb.bytes and base = cb.len in
    if n <= 64 then begin
      set64u dst base (get64u src off);
      set64u dst (base + 8) (get64u src (off + 8));
      set64u dst (base + 16) (get64u src (off + 16));
      set64u dst (base + 24) (get64u src (off + 24));
      set64u dst (base + 32) (get64u src (off + 32));
      set64u dst (base + 40) (get64u src (off + 40));
      set64u dst (base + 48) (get64u src (off + 48));
      set64u dst (base + 56) (get64u src (off + 56))
    end
    else begin
      let m = (n + 7) land -8 in
      let i = ref 0 in
      while !i < m do
        set64u dst (base + !i) (get64u src (off + !i));
        i := !i + 8
      done
    end;
    cb.len <- base + n;
    let hc = (w lsr 1) land 7 in
    if hc <> 0 then begin
      let hp = fl.fl_h32 in
      let h0 = (w lsr 5) land 0x7FF in
      for hi = h0 to h0 + hc - 1 do
        let p = Array.unsafe_get hp hi in
        patch32 cb (base + (p lsr 3)) (Array.unsafe_get ints (p land 7))
      done
    end;
    if w land 16 <> 0 then
      patch_rest st ls (Array.unsafe_get fl.fl_rest code) base i64s tgts syms;
    st.stencils_used <- st.stencils_used + 1
  end

(* Parameter holes ride the const stencils: instantiate with a zeroed
   value, then record a [Param]/[Param_hi] relocation at each H64 hole so
   {!Qcomp_backend.Backend.link_artifact} patches the bound literal into
   the copy-and-patch hole. Always out of line — one hole per extracted
   literal is nowhere near the hot path. *)
let inst_param st code ints ~idx ~wide =
  let s = fetch st code in
  let base = st.cb.len in
  cb_blit st.cb s;
  let h32 = s.s_h32 in
  for hi = 0 to Array.length h32 - 1 do
    let p = Array.unsafe_get h32 hi in
    patch32 st.cb (base + (p lsr 3)) (Array.unsafe_get ints (p land 7))
  done;
  Array.iter
    (function
      | H64 (o, a) ->
          patch64 st.cb (base + o) 0L;
          st.relocs <-
            {
              Qcomp_backend.Artifact.r_off = base + o;
              r_sym = "";
              r_kind =
                (* const128 stencils order their i64 holes lo (a=0), hi
                   (a=1); the hi lane re-derives the sign at bind time *)
                (if wide && a = 1 then Qcomp_backend.Artifact.Param_hi idx
                 else Qcomp_backend.Artifact.Param idx);
            }
            :: st.relocs
      | H32 _ | Htgt _ | Hsym _ ->
          (* const stencils carry exactly slot-index H32 holes and value
             H64 holes *)
          assert false)
    s.s_rest;
  st.stencils_used <- st.stencils_used + 1

let[@inline] emitp1 st key p0 idx =
  let ai = st.ai in
  Array.unsafe_set ai 0 p0;
  inst_param st key ai ~idx ~wide:false

let[@inline] emitp2 st key p0 p1 idx =
  let ai = st.ai in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set ai 1 p1;
  inst_param st key ai ~idx ~wide:true

(* Arity-specialized emit wrappers. Operands go into the shared scratch
   arrays in [st] instead of a fresh array per stencil; [inst] consumes
   its arguments before returning, so the reuse is safe. These live at
   toplevel on purpose: defining them inside [compile_func] would
   allocate two dozen closures per compiled function. *)
let[@inline] emit0 st ls key = inst st ls key no_ints no_i64s no_tgts no_syms
let[@inline] emits st ls key syms = inst st ls key no_ints no_i64s no_tgts syms
let[@inline] emitis st ls key ints syms = inst st ls key ints no_i64s no_tgts syms

let[@inline] emiti1 st ls key p0 =
  let ai = st.ai in
  Array.unsafe_set ai 0 p0;
  inst st ls key ai no_i64s no_tgts no_syms

let[@inline] emiti2 st ls key p0 p1 =
  let ai = st.ai in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set ai 1 p1;
  inst st ls key ai no_i64s no_tgts no_syms

let[@inline] emiti3 st ls key p0 p1 p2 =
  let ai = st.ai in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set ai 1 p1;
  Array.unsafe_set ai 2 p2;
  inst st ls key ai no_i64s no_tgts no_syms

let[@inline] emiti4 st ls key p0 p1 p2 p3 =
  let ai = st.ai in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set ai 1 p1;
  Array.unsafe_set ai 2 p2;
  Array.unsafe_set ai 3 p3;
  inst st ls key ai no_i64s no_tgts no_syms

let[@inline] emiti5 st ls key p0 p1 p2 p3 p4 =
  let ai = st.ai in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set ai 1 p1;
  Array.unsafe_set ai 2 p2;
  Array.unsafe_set ai 3 p3;
  Array.unsafe_set ai 4 p4;
  inst st ls key ai no_i64s no_tgts no_syms

let[@inline] emiti6 st ls key p0 p1 p2 p3 p4 p5 =
  let ai = st.ai in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set ai 1 p1;
  Array.unsafe_set ai 2 p2;
  Array.unsafe_set ai 3 p3;
  Array.unsafe_set ai 4 p4;
  Array.unsafe_set ai 5 p5;
  inst st ls key ai no_i64s no_tgts no_syms

let[@inline] emiti7 st ls key p0 p1 p2 p3 p4 p5 p6 =
  let ai = st.ai in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set ai 1 p1;
  Array.unsafe_set ai 2 p2;
  Array.unsafe_set ai 3 p3;
  Array.unsafe_set ai 4 p4;
  Array.unsafe_set ai 5 p5;
  Array.unsafe_set ai 6 p6;
  inst st ls key ai no_i64s no_tgts no_syms

let[@inline] emitc1 st ls key p0 v0 =
  let ai = st.ai and a64 = st.a64 in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set a64 0 v0;
  inst st ls key ai a64 no_tgts no_syms

let[@inline] emitc2 st ls key p0 p1 v0 v1 =
  let ai = st.ai and a64 = st.a64 in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set ai 1 p1;
  Array.unsafe_set a64 0 v0;
  Array.unsafe_set a64 1 v1;
  inst st ls key ai a64 no_tgts no_syms

let[@inline] emitt1 st ls key t0 =
  let at = st.at in
  Array.unsafe_set at 0 t0;
  inst st ls key no_ints no_i64s at no_syms

let[@inline] emit1t1 st ls key p0 t0 =
  let ai = st.ai and at = st.at in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set at 0 t0;
  inst st ls key ai no_i64s at no_syms

let[@inline] emit1t2 st ls key p0 t0 t1 =
  let ai = st.ai and at = st.at in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set at 0 t0;
  Array.unsafe_set at 1 t1;
  inst st ls key ai no_i64s at no_syms

let[@inline] emit2t1 st ls key p0 p1 t0 =
  let ai = st.ai and at = st.at in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set ai 1 p1;
  Array.unsafe_set at 0 t0;
  inst st ls key ai no_i64s at no_syms

let[@inline] emit3t1 st ls key p0 p1 p2 t0 =
  let ai = st.ai and at = st.at in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set ai 1 p1;
  Array.unsafe_set ai 2 p2;
  Array.unsafe_set at 0 t0;
  inst st ls key ai no_i64s at no_syms

let[@inline] emit6t1 st ls key p0 p1 p2 p3 p4 p5 t0 =
  let ai = st.ai and at = st.at in
  Array.unsafe_set ai 0 p0;
  Array.unsafe_set ai 1 p1;
  Array.unsafe_set ai 2 p2;
  Array.unsafe_set ai 3 p3;
  Array.unsafe_set ai 4 p4;
  Array.unsafe_set ai 5 p5;
  Array.unsafe_set at 0 t0;
  inst st ls key ai no_i64s at no_syms

let cmp_to_cond (c : Op.cmp) : Minst.cond =
  match c with
  | Op.Eq -> Minst.Eq
  | Op.Ne -> Minst.Ne
  | Op.Slt -> Minst.Slt
  | Op.Sle -> Minst.Sle
  | Op.Sgt -> Minst.Sgt
  | Op.Sge -> Minst.Sge
  | Op.Ult -> Minst.Ult
  | Op.Ule -> Minst.Ule
  | Op.Ugt -> Minst.Ugt
  | Op.Uge -> Minst.Uge

let canon_bits (ty : Ty.t) =
  match ty with Ty.I8 -> 8 | Ty.I16 -> 16 | Ty.I32 -> 32 | _ -> 0

let alu_of_op (op : Op.t) : Minst.alu =
  match op with
  | Op.Add -> Minst.Add
  | Op.Sub -> Minst.Sub
  | Op.Mul -> Minst.Mul
  | Op.And -> Minst.And
  | Op.Or -> Minst.Or
  | Op.Xor -> Minst.Xor
  | Op.Shl -> Minst.Shl
  | Op.Lshr -> Minst.Shr
  | Op.Ashr -> Minst.Sar
  | Op.Rotr -> Minst.Ror
  | _ -> unsupported "not an ALU op"

let const_of f v =
  match Func.op f v with
  | Op.Const -> Some (Func.imm f v)
  | Op.Sext | Op.Zext -> (
      match Func.op f (Func.x f v) with
      | Op.Const -> Some (Func.imm f (Func.x f v))
      | _ -> None)
  | _ -> None

let ls_reset ls need =
  if Array.length ls.offs < need + 8 then ls.offs <- Array.make (need + 8) (-1)
  else Array.fill ls.offs 0 ls.n (-1);
  ls.n <- 0;
  ls.fixups <- []

let compile_func st ls (m : Func.modul) (f : Func.t) =
  let target = st.target in
  (* 16-byte function alignment, as DirectEmit does *)
  while st.cb.len land 15 <> 0 do
    cb_u8 st.cb 0x00 (* nop *)
  done;
  let start = st.cb.len in
  let nv = Func.num_insts f in
  let nb = Func.num_blocks f in
  (* hoisted IR columns: every index below is an instruction id < nv, so
     the unchecked reads stay inside these arrays *)
  let ops = f.Func.ops and tys = f.Func.tys in
  let xs = f.Func.xs and ys = f.Func.ys and zs = f.Func.zs in
  let nsa = f.Func.ns and imms = f.Func.imms in
  (* fixed-stride frame layout: value [v] lives at [32*v], its phi staging
     slot (parallel edge copies) at [32*v + 16].  Wasting the stride on void
     values trades a little scratch stack (modules peak well under the VM's
     256 KiB context stack) for skipping the slot-assignment prescan
     entirely: the frame is a shift of [nv], and [s] is a shift of [v] *)
  let s v = v lsl 5 in
  let stage v = (v lsl 5) + 16 in
  let frame = nv lsl 5 in
  (* phi presence gates the per-block phi gather below; straight-line
     expression code (the common case) stops at the first compare *)
  let has_phi = ref false in
  let v = ref 0 in
  while (not !has_phi) && !v < nv do
    if Array.unsafe_get ops !v == Op.Phi then has_phi := true;
    incr v
  done;
  (* per-block phi lists, gathered once: edge moves consult these instead
     of rescanning the successor block at every incoming edge *)
  let blk_phis = Array.make nb [||] in
  if !has_phi then
    for b = 0 to nb - 1 do
      let phis = ref [] in
      Vec.iter
        (fun i -> if Array.unsafe_get ops i == Op.Phi then phis := i :: !phis)
        (Func.block_insts f b);
      if !phis <> [] then blk_phis.(b) <- Array.of_list (List.rev !phis)
    done;
  ls_reset ls (nb + 2);
  for _ = 0 to nb - 1 do
    ignore (new_label ls)
  done;
  let epilogue = new_label ls in
  let trap = new_label ls in
  let trap_used = ref false in
  let trap_l () =
    trap_used := true;
    trap
  in
  let bind l = ls.offs.(l) <- st.cb.len in
  (* prologue + incoming argument spill: arguments arrive in registers and
     are parked in their slots once, so stencils can treat them like any
     other value *)
  let nargs = Func.n_args f in
  let args_fuse =
    nargs >= 1 && nargs <= 8
    && nargs <= Array.length target.Target.arg_regs
    &&
    let ok = ref true in
    for a = 0 to nargs - 1 do
      let t = Array.unsafe_get tys a in
      if t == Ty.I128 || t == Ty.Void then ok := false
    done;
    !ok
  in
  if args_fuse then emiti1 st ls (kprologue_args nargs) frame
  else begin
    emiti1 st ls kc_prologue frame;
    let argk = ref 0 in
    for a = 0 to nargs - 1 do
      emiti1 st ls (kstarg !argk) (s a);
      incr argk;
      if Array.unsafe_get tys a == Ty.I128 then begin
        emiti1 st ls (kstarg !argk) (s a + 8);
        incr argk
      end
    done
  end;
  let after_prologue = st.cb.len - start in
  let edge_moves pred target_blk =
    let moves = ref [] in
    Array.iter
      (fun i ->
        List.iter
          (fun (blk, v) ->
            (* a phi fed by itself is a no-op on this edge *)
            if blk = pred && v <> i then moves := (i, v) :: !moves)
          (Func.phi_incoming f i))
      blk_phis.(target_blk);
    let moves = List.rev !moves in
    (* staging slots are only needed when a phi target is also a phi
       source on the same edge (a parallel-move cycle or overlap); the
       common single-phi edge copies directly *)
    let overlaps =
      List.exists
        (fun (dst, _) -> List.exists (fun (_, src) -> src = dst) moves)
        moves
    in
    if not overlaps then
      List.iter
        (fun (dst, src) ->
          if Array.unsafe_get tys src == Ty.I128 then
            emiti4 st ls kc_copy128 (s src) (s dst) (s src + 8) (s dst + 8)
          else emiti2 st ls kc_copy (s src) (s dst))
        moves
    else begin
      List.iter
        (fun (dst, src) ->
          if Array.unsafe_get tys src == Ty.I128 then
            emiti4 st ls kc_copy128 (s src) (stage dst) (s src + 8) (stage dst + 8)
          else emiti2 st ls kc_copy (s src) (stage dst))
        moves;
      List.iter
        (fun (dst, _) ->
          if Array.unsafe_get tys dst == Ty.I128 then
            emiti4 st ls kc_copy128 (stage dst) (s dst) (stage dst + 8) (s dst + 8)
          else emiti2 st ls kc_copy (stage dst) (s dst))
        moves
    end
  in
  let emit_inst cur_block i =
    let ty = Array.unsafe_get tys i in
    let x = Array.unsafe_get xs i and y = Array.unsafe_get ys i in
    match Array.unsafe_get ops i with
    | Op.Nop | Op.Arg | Op.Phi -> ()
    | Op.Const ->
        let imm = Array.unsafe_get imms i in
        if ty == Ty.I128 then
          emitc2 st ls kc_const128 (s i) (s i + 8) imm (Int64.shift_right imm 63)
        else emitc1 st ls kc_const (s i) imm
    | Op.Const128 ->
        let hi, lo = Func.const128_value f i in
        emitc2 st ls kc_const128 (s i) (s i + 8) lo hi
    | Op.Param ->
        let idx = Int64.to_int (Array.unsafe_get imms i) in
        if ty == Ty.I128 then emitp2 st kc_const128 (s i) (s i + 8) idx
        else emitp1 st kc_const (s i) idx
    | Op.Isnull -> emiti2 st ls kc_isnull (s x) (s i)
    | Op.Isnotnull -> emiti2 st ls kc_isnotnull (s x) (s i)
    | (Op.Add | Op.Sub | Op.Mul | Op.And | Op.Or | Op.Xor) as op ->
        if ty == Ty.I128 then
          let key = if op == Op.Mul then kc_mul128 else kalu128 (alu_of_op op) in
          emiti6 st ls key (s x) (s y) (s x + 8) (s y + 8) (s i) (s i + 8)
        else
          emiti3 st ls (kalu (alu_of_op op) (canon_bits ty)) (s x) (s y) (s i)
    | (Op.Shl | Op.Lshr | Op.Ashr | Op.Rotr) as op ->
        if ty == Ty.I128 then begin
          let amt =
            match const_of f y with
            | Some a -> Int64.to_int a land 127
            | None -> unsupported "dynamic 128-bit shift"
          in
          if op == Op.Rotr then unsupported "i128 rotate";
          emiti4 st ls (kshift128 (alu_of_op op) amt) (s x) (s x + 8) (s i) (s i + 8)
        end
        else
          emiti3 st ls (kalu (alu_of_op op) (canon_bits ty)) (s x) (s y) (s i)
    | (Op.Saddtrap | Op.Ssubtrap) as op ->
        let sub = op == Op.Ssubtrap in
        if ty == Ty.I128 then
          emit6t1 st ls
            (kastrap128 sub)
            (s x) (s y) (s x + 8) (s y + 8) (s i)
            (s i + 8) (trap_l ())
        else
          emit3t1 st ls (kastrap sub (canon_bits ty)) (s x) (s y) (s i) (trap_l ())
    | Op.Smultrap ->
        if ty == Ty.I128 then
          emitis st ls kc_multrap128 [| s x; s x + 8; s y; s y + 8; s i; s i + 8 |] [| "umbra_i128MulFull" |]
        else
          emit3t1 st ls (kmultrap (canon_bits ty)) (s x) (s y) (s i) (trap_l ())
    | (Op.Sdiv | Op.Udiv | Op.Srem | Op.Urem) as op ->
        if ty == Ty.I128 then
          unsupported "i128 division must go through the runtime";
        let signed = op == Op.Sdiv || op == Op.Srem in
        let rem = op == Op.Srem || op == Op.Urem in
        emiti3 st ls (kdiv signed rem (canon_bits ty)) (s x) (s y) (s i)
    | Op.Cmp -> (
        let pred = Op.cmp_of_int (Array.unsafe_get nsa i) in
        match Array.unsafe_get tys x with
        | Ty.I128 -> (
            match pred with
            | Op.Eq | Op.Ne ->
                emiti5 st ls (kcmp128eq (pred == Op.Ne)) (s x) (s y) (s x + 8)
                  (s y + 8) (s i)
            | _ ->
                let u =
                  match pred with
                  | Op.Slt | Op.Ult -> Minst.Ult
                  | Op.Sle | Op.Ule -> Minst.Ule
                  | Op.Sgt | Op.Ugt -> Minst.Ugt
                  | _ -> Minst.Uge
                in
                let hi =
                  match pred with
                  | Op.Slt | Op.Sle -> Minst.Slt
                  | Op.Sgt | Op.Sge -> Minst.Sgt
                  | Op.Ult | Op.Ule -> Minst.Ult
                  | _ -> Minst.Ugt
                in
                emiti5 st ls (kcmp128ord u hi) (s x) (s y) (s x + 8) (s y + 8) (s i))
        | Ty.F64 -> emiti3 st ls (kcmp (cmp_to_cond pred) true) (s x) (s y) (s i)
        | _ -> emiti3 st ls (kcmp (cmp_to_cond pred) false) (s x) (s y) (s i))
    | Op.Fcmp ->
        let pred = Op.cmp_of_int (Array.unsafe_get nsa i) in
        emiti3 st ls (kcmp (cmp_to_cond pred) true) (s x) (s y) (s i)
    | Op.Zext ->
        let bits =
          match Array.unsafe_get tys x with
          | Ty.I1 -> 1
          | Ty.I8 -> 8
          | Ty.I16 -> 16
          | Ty.I32 -> 32
          | _ -> 0
        in
        if ty == Ty.I128 then emiti3 st ls (kzext bits true) (s x) (s i) (s i + 8)
        else emiti2 st ls (kzext bits false) (s x) (s i)
    | Op.Sext ->
        if ty == Ty.I128 then emiti3 st ls kc_sext128 (s x) (s i) (s i + 8)
        else emiti2 st ls kc_sext (s x) (s i)
    | Op.Trunc ->
        let k = if ty == Ty.I1 then -1 else canon_bits ty in
        emiti2 st ls (ktrunc k) (s x) (s i)
    | Op.Select ->
        let c = x and a = y and b = Array.unsafe_get zs i in
        if ty == Ty.I128 then
          emiti7 st ls kc_select128 (s a) (s b) (s c) (s a + 8) (s b + 8) (s i)
            (s i + 8)
        else emiti4 st ls kc_select (s a) (s b) (s c) (s i)
    | Op.Load ->
        let off = Int64.to_int (Array.unsafe_get imms i) in
        if ty == Ty.I128 then
          emiti5 st ls kc_load128 (s x) off (off + 8) (s i) (s i + 8)
        else begin
          let size = max 1 (Ty.size_bytes ty) in
          let sext = ty != Ty.I1 && size < 8 in
          emiti3 st ls (kload size sext false) (s x) off (s i)
        end
    | Op.Store ->
        let vty = Array.unsafe_get tys x in
        let off = Int64.to_int (Array.unsafe_get imms i) in
        if vty == Ty.I128 then
          emiti5 st ls kc_store128 (s y) (s x) off (s x + 8) (off + 8)
        else begin
          let size = max 1 (Ty.size_bytes vty) in
          emiti3 st ls (kstore size false) (s y) (s x) off
        end
    | Op.Gep ->
        let off = Int64.to_int (Array.unsafe_get imms i) in
        if y >= 0 then begin
          let scale = Array.unsafe_get nsa i in
          if scale = 1 || scale = 2 || scale = 4 || scale = 8 then
            emiti4 st ls (kgep scale) (s x) (s y) off (s i)
          else emiti5 st ls kc_gep_mul (s x) (s y) scale off (s i)
        end
        else emiti3 st ls kc_gep_base (s x) off (s i)
    | Op.Crc32 -> emiti3 st ls kc_crc32 (s x) (s y) (s i)
    | Op.Longmulfold -> emiti3 st ls kc_lmf (s x) (s y) (s i)
    | Op.Atomicadd ->
        let size = max 1 (Ty.size_bytes ty) in
        emiti3 st ls (katomic size) (s x) (s y) (s i)
    | Op.Call ->
        let cargs = Func.call_args f i in
        let arg_regs = target.Target.arg_regs in
        let k = ref 0 in
        List.iter
          (fun a ->
            if !k >= Array.length arg_regs then
              unsupported "call with too many register arguments";
            emiti1 st ls (kldarg !k) (s a);
            incr k;
            if Array.unsafe_get tys a == Ty.I128 then begin
              if !k >= Array.length arg_regs then
                unsupported "call with too many register arguments";
              emiti1 st ls (kldarg !k) (s a + 8);
              incr k
            end)
          cargs;
        let ext = Func.extern m (Array.unsafe_get zs i) in
        emits st ls kc_call [| ext.Func.ext_name |];
        if ty != Ty.Void then begin
          emiti1 st ls kc_stret0 (s i);
          if ty == Ty.I128 then emiti1 st ls kc_stret1 (s i + 8)
        end
    | Op.Br ->
        (* a branch to the lexically next block falls through: blocks are
           emitted in order and [Br] is always the terminator *)
        edge_moves cur_block x;
        if x <> cur_block + 1 then emitt1 st ls kc_jmp x
    | Op.Condbr ->
        let c = x and tb = y and eb = Array.unsafe_get zs i in
        if Array.length blk_phis.(tb) = 0 && Array.length blk_phis.(eb) = 0
        then begin
          if tb = cur_block + 1 then emit1t1 st ls kc_condbr (s c) eb
          else if eb = cur_block + 1 then emit1t1 st ls kc_condbrnz (s c) tb
          else emit1t2 st ls kc_condbr2 (s c) eb tb
        end
        else begin
          let else_stub = new_label ls in
          emit1t1 st ls kc_condbr (s c) else_stub;
          edge_moves cur_block tb;
          emitt1 st ls kc_jmp tb;
          bind else_stub;
          edge_moves cur_block eb;
          if eb <> cur_block + 1 then emitt1 st ls kc_jmp eb
        end
    | Op.Ret ->
        if x < 0 then emitt1 st ls kc_ret0 epilogue
        else if Array.unsafe_get tys x == Ty.I128 then
          emit2t1 st ls kc_ret2 (s x) (s x + 8) epilogue
        else emit1t1 st ls kc_ret1 (s x) epilogue
    | Op.Unreachable -> emit0 st ls kc_unreachable
    | (Op.Fadd | Op.Fsub | Op.Fmul | Op.Fdiv) as op ->
        let fop =
          match op with
          | Op.Fadd -> Minst.Fadd
          | Op.Fsub -> Minst.Fsub
          | Op.Fmul -> Minst.Fmul
          | _ -> Minst.Fdiv
        in
        emiti3 st ls (kfalu fop) (s x) (s y) (s i)
    | Op.Sitofp -> emiti2 st ls kc_cvt_i2f (s x) (s i)
    | Op.Fptosi -> emiti2 st ls kc_cvt_f2i (s x) (s i)
  in
  (* body: natural block order — every block ends in an explicit branch,
     and entry (block 0) follows the argument spill directly *)
  for b = 0 to nb - 1 do
    bind b;
    let insts = Func.block_insts f b in
    for k = 0 to Vec.length insts - 1 do
      emit_inst b (Vec.get insts k)
    done
  done;
  bind epilogue;
  emiti1 st ls kc_epilogue frame;
  if !trap_used then begin
    bind trap;
    emits st ls kc_trap [| "umbra_throwOverflow" |]
  end;
  (* resolve intra-function branches *)
  List.iter
    (fun (pos, l) ->
      let target_off = ls.offs.(l) in
      if target_off < 0 then unsupported "unbound stencil label %d" l;
      patch32 st.cb pos (target_off - (pos + 4)))
    ls.fixups;
  let size = st.cb.len - start in
  let rows =
    [
      (0, { Unwind.cfa_offset = 8; saved_regs = [] });
      (after_prologue, { Unwind.cfa_offset = 8 + frame; saved_regs = [] });
    ]
  in
  (start, size, rows)

(* Compilation scratch is domain-local: one growable code buffer and one
   label table per serving domain, reset per module, so the per-query
   path allocates no fresh buffers. *)
let scratch_cb = Domain.DLS.new_key cb_create

let scratch_ls =
  Domain.DLS.new_key (fun () -> { offs = Array.make 64 (-1); n = 0; fixups = [] })

let compile_artifact ~timing ~(target : Target.t) ~registry:_ (m : Func.modul)
    : Qcomp_backend.Artifact.t =
  if target.Target.arch <> Target.X64 then
    invalid_arg
      "stencil back-end only supports x86-64 (copy-and-patch holes need \
       fixed-position encodings)";
  let cb = Domain.DLS.get scratch_cb in
  cb.len <- 0;
  let st =
    { cb; target; cache = cache_for target; flat = flat_for target;
      relocs = []; stencils_used = 0; ai = Array.make 8 0;
      at = Array.make 2 0; a64 = Array.make 2 0L }
  in
  let ls = Domain.DLS.get scratch_ls in
  let fns = ref [] in
  Timing.scope timing "CodeGen" (fun () ->
      Vec.iter
        (fun f ->
          let start, size, rows = compile_func st ls m f in
          fns := (f.Func.name, start, size, rows) :: !fns)
        m.Func.funcs);
  let code =
    Timing.scope timing "Finalize" (fun () -> Bytes.sub st.cb.bytes 0 st.cb.len)
  in
  {
    Qcomp_backend.Artifact.a_backend = name;
    a_target = target.Target.name;
    a_text = code;
    a_syms =
      List.rev_map
        (fun (n, start, size, _) ->
          {
            Qcomp_backend.Artifact.s_name = n;
            s_off = start;
            s_size = size;
            s_defined = true;
          })
        !fns;
    (* fully relocatable: all runtime addresses go through Abs64 relocs *)
    a_relocs = st.relocs;
    a_unwind =
      List.rev_map
        (fun (_, start, size, rows) ->
          {
            Qcomp_backend.Artifact.uf_start = start;
            uf_size = size;
            uf_sync_only = true;
            uf_rows = rows;
          })
        !fns;
    a_baked = [];
    a_params = Qcomp_backend.Artifact.params_of_module m;
    a_stats =
      [ ("stencils", st.stencils_used); ("stencil_library", library_size ()) ];
    a_code_size = Bytes.length code;
  }

let supports_params = true

let compile_module ?params ~timing ~emu ~registry ~unwind (m : Func.modul) :
    Qcomp_backend.Backend.compiled_module =
  let art =
    compile_artifact ~timing ~target:(Qcomp_vm.Emu.target_of emu) ~registry m
  in
  Qcomp_backend.Backend.link_artifact ~scope:None ?params ~timing ~emu
    ~registry ~unwind art

let compile_artifact = Some compile_artifact
