(* CRC-32C (Castagnoli), reflected polynomial 0x82F63B78, table-driven. *)

let table =
  let t = Array.make 256 0l in
  for n = 0 to 255 do
    let c = ref (Int32.of_int n) in
    for _ = 0 to 7 do
      if Int32.equal (Int32.logand !c 1l) 1l then
        c := Int32.logxor (Int32.shift_right_logical !c 1) 0x82F63B78l
      else c := Int32.shift_right_logical !c 1
    done;
    t.(n) <- !c
  done;
  t

let crc32c_byte acc byte =
  let crc = Int32.of_int (Int64.to_int (Int64.logand acc 0xFFFF_FFFFL)) in
  let idx = (Int32.to_int crc lxor byte) land 0xFF in
  let crc' =
    Int32.logxor (Int32.shift_right_logical crc 8) table.(idx)
  in
  Int64.logand (Int64.of_int32 crc') 0xFFFF_FFFFL

let crc32c acc x =
  let acc = ref (Int64.logand acc 0xFFFF_FFFFL) in
  for i = 0 to 7 do
    let byte =
      Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * i)) 0xFFL)
    in
    acc := crc32c_byte !acc byte
  done;
  !acc

let long_mul_fold x k =
  let p = I128.umul64_wide x k in
  Int64.logxor (I128.to_int64 p) (I128.to_int64 (I128.shift_right_logical p 64))

let rotr64 x n =
  let n = n land 63 in
  if n = 0 then x
  else Int64.logor (Int64.shift_right_logical x n) (Int64.shift_left x (64 - n))

(* Two CRC lanes with distinct seeds combined via rotate-xor; the constants
   are the ones visible in Listing 2 of the paper. *)
let seed_a = 0xF45F_017F_FBC4_0390L
let seed_b = 0xB993_5CC9_7AB5_B272L

let hash64 x =
  let a = crc32c seed_a x in
  let b = crc32c seed_b x in
  Int64.logxor (Int64.logor (Int64.shift_left b 32) a) (rotr64 x 32)

let combine h v = long_mul_fold (Int64.logxor h v) 0x9E37_79B9_7F4A_7C15L

(* ---------------- hash inversion ----------------

   [hash64] is affine over GF(2): CRC-32C is linear in its data argument
   (table-driven, no init/final xor), the two lanes are packed by shifts
   and the rotate-xor term is a bit permutation, so
   hash64(x) = M*x xor hash64(0) for a fixed 64x64 bit matrix M. M happens
   to be invertible for the paper's seed constants, which means the
   runtime — which owns the hash function — can recover the exact 64-bit
   key from a stored hash. The hash table uses this to detect dense
   integer key ranges and switch to a direct-address layout without the
   generated code ever passing raw keys. *)

let unhash_tables : int64 array array option Lazy.t =
  lazy
    (let h0 = hash64 0L in
     (* columns of M: M * e_i = hash64(2^i) xor hash64(0) *)
     let cols =
       Array.init 64 (fun i -> Int64.logxor (hash64 (Int64.shift_left 1L i)) h0)
     in
     (* rows of M as 64-bit masks over the input bits *)
     let rows = Array.make 64 0L in
     for i = 0 to 63 do
       for r = 0 to 63 do
         if Int64.logand (Int64.shift_right_logical cols.(i) r) 1L = 1L then
           rows.(r) <- Int64.logor rows.(r) (Int64.shift_left 1L i)
       done
     done;
     (* Gauss-Jordan over GF(2) on [M | I] -> [I | M^-1] *)
     let aug = Array.init 64 (fun r -> (rows.(r), Int64.shift_left 1L r)) in
     let singular = ref false in
     let r = ref 0 in
     for col = 0 to 63 do
       if not !singular then begin
         let sel = ref (-1) in
         for i = !r to 63 do
           if
             !sel < 0
             && Int64.logand (Int64.shift_right_logical (fst aug.(i)) col) 1L
                = 1L
           then sel := i
         done;
         if !sel < 0 then singular := true
         else begin
           let tmp = aug.(!r) in
           aug.(!r) <- aug.(!sel);
           aug.(!sel) <- tmp;
           for i = 0 to 63 do
             if
               i <> !r
               && Int64.logand (Int64.shift_right_logical (fst aug.(i)) col) 1L
                  = 1L
             then
               aug.(i) <-
                 ( Int64.logxor (fst aug.(i)) (fst aug.(!r)),
                   Int64.logxor (snd aug.(i)) (snd aug.(!r)) )
           done;
           incr r
         end
       end
     done;
     if !singular then None
     else begin
       (* invrows.(b) = row b of M^-1; x_b = parity(invrows.(b) land v).
          Repack into inverse columns, then byte-sliced tables so
          [unhash64] is 8 table lookups and xors. *)
       let invrows = Array.make 64 0L in
       (* after full reduction, row order matches column order *)
       for b = 0 to 63 do
         invrows.(b) <- snd aug.(b)
       done;
       let invcols = Array.make 64 0L in
       for b = 0 to 63 do
         for j = 0 to 63 do
           if Int64.logand (Int64.shift_right_logical invrows.(b) j) 1L = 1L
           then invcols.(j) <- Int64.logor invcols.(j) (Int64.shift_left 1L b)
         done
       done;
       let tables =
         Array.init 8 (fun k ->
             Array.init 256 (fun byte ->
                 let acc = ref 0L in
                 for t = 0 to 7 do
                   if byte land (1 lsl t) <> 0 then
                     acc := Int64.logxor !acc invcols.((8 * k) + t)
                 done;
                 !acc))
       in
       Some tables
     end)

let unhash64_opt : (int64 -> int64) option =
  match Lazy.force unhash_tables with
  | None -> None
  | Some tables ->
      let h0 = hash64 0L in
      Some
        (fun h ->
          let v = Int64.logxor h h0 in
          let x = ref 0L in
          for k = 0 to 7 do
            let byte =
              Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xFF
            in
            x := Int64.logxor !x tables.(k).(byte)
          done;
          !x)
