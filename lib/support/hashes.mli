(** Hash primitives used by the query runtime.

    Umbra hashes with hardware CRC-32C when available and falls back to a
    64x64->128-bit multiplication whose halves are XOR-folded
    ("long-mul-fold"). Both are implemented here in software; the virtual
    targets expose [crc32] as a native instruction so generated code matches
    these results bit-for-bit. *)

(** [crc32c acc x] is one CRC-32C (Castagnoli) step over the 8 bytes of [x],
    mirroring x86 [crc32 r64, r64] / AArch64 [crc32cx]: the accumulator is
    the low 32 bits of [acc]; the result is zero-extended. *)
val crc32c : int64 -> int64 -> int64

(** CRC-32C over a byte at a time (used for string hashing). *)
val crc32c_byte : int64 -> int -> int64

(** [long_mul_fold x k] multiplies [x] by [k] to a 128-bit result and XORs
    the two halves. *)
val long_mul_fold : int64 -> int64 -> int64

(** Umbra-style 64-bit value hash combining two CRC lanes with a rotate,
    matching the instruction sequence in Listing 2 of the paper. *)
val hash64 : int64 -> int64

(** Combine an accumulated hash with the next value hash. *)
val combine : int64 -> int64 -> int64

(** Exact inverse of {!hash64}, when one exists. [hash64] is affine over
    GF(2) (CRC-32C is linear in its data argument), and for the paper's
    seed constants the linear part is invertible, so
    [unhash64 (hash64 x) = x] for every [x]. The hash-table runtime uses
    this to recover integer join keys from stored hashes and detect dense
    key ranges; [None] would mean the seeds produce a singular matrix, in
    which case direct addressing is simply disabled. *)
val unhash64_opt : (int64 -> int64) option
