let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

type entry = { mutable seconds : float; mutable count : int; order : int }

(* Per-domain open-scope stack: two domains timing their own compilations
   concurrently must not interleave their path trees. *)
type local = { mutable stack : string list (* innermost first *) }

type t = {
  enabled : bool;
  mu : Mutex.t;  (** guards [table], [locals] and [events] *)
  table : (string, entry) Hashtbl.t;
  locals : (int, local) Hashtbl.t;  (** domain id -> open scopes *)
  mutable events : int;
  clock_cost : float; (* measured cost of one [now] pair *)
}

(* Cost of one scope = one (now, now) pair: time 2n calls, divide by n. *)
let calibrate () =
  let n = 1000 in
  let t0 = now () in
  for _ = 1 to n do
    ignore (Sys.opaque_identity (now ()));
    ignore (Sys.opaque_identity (now ()))
  done;
  (now () -. t0) /. float_of_int n

let create ?(enabled = true) () =
  {
    enabled;
    mu = Mutex.create ();
    table = Hashtbl.create 64;
    locals = Hashtbl.create 4;
    events = 0;
    clock_cost = (if enabled then calibrate () else 0.0);
  }

let enabled t = t.enabled

(* Callers hold [t.mu]. *)
let local t =
  let id = (Domain.self () :> int) in
  match Hashtbl.find_opt t.locals id with
  | Some l -> l
  | None ->
      let l = { stack = [] } in
      Hashtbl.add t.locals id l;
      l

let path_of l name =
  match l.stack with [] -> name | top :: _ -> top ^ "/" ^ name

(* Callers hold [t.mu]. *)
let entry t path =
  match Hashtbl.find_opt t.table path with
  | Some e -> e
  | None ->
      let e = { seconds = 0.0; count = 0; order = Hashtbl.length t.table } in
      Hashtbl.add t.table path e;
      e

let add t name secs =
  if t.enabled then
    Mutex.protect t.mu (fun () ->
        let e = entry t (path_of (local t) name) in
        e.seconds <- e.seconds +. secs;
        e.count <- e.count + 1;
        t.events <- t.events + 1)

let scope t name f =
  if not t.enabled then f ()
  else begin
    let path =
      Mutex.protect t.mu (fun () ->
          let l = local t in
          let path = path_of l name in
          (* register the entry up front so reports list parents before
             children *)
          ignore (entry t path);
          l.stack <- path :: l.stack;
          path)
    in
    let t0 = now () in
    let finish () =
      let dt = now () -. t0 in
      Mutex.protect t.mu (fun () ->
          let l = local t in
          (match l.stack with [] -> () | _ :: rest -> l.stack <- rest);
          let e = entry t path in
          e.seconds <- e.seconds +. dt;
          e.count <- e.count + 1;
          t.events <- t.events + 1)
    in
    match f () with
    | r ->
        finish ();
        r
    | exception exn ->
        finish ();
        raise exn
  end

let reset t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.reset t.table;
      Hashtbl.reset t.locals;
      t.events <- 0)

let event_count t = Mutex.protect t.mu (fun () -> t.events)
let overhead t = float_of_int (event_count t) *. t.clock_cost

let entries t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold
        (fun path e acc -> (path, e.order, e.seconds, e.count) :: acc)
        t.table [])
  |> List.sort (fun (_, a, _, _) (_, b, _, _) -> compare a b)
  |> List.map (fun (path, _, secs, count) -> (path, secs, count))

let is_top_level path = not (String.contains path '/')

let total t =
  List.fold_left
    (fun acc (path, secs, _) -> if is_top_level path then acc +. secs else acc)
    0.0 (entries t)

let flat t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (path, secs, _) ->
      if is_top_level path then begin
        (if not (Hashtbl.mem tbl path) then order := path :: !order);
        Hashtbl.replace tbl path
          (secs +. Option.value ~default:0.0 (Hashtbl.find_opt tbl path))
      end)
    (entries t);
  List.rev_map (fun p -> (p, Hashtbl.find tbl p)) !order

let pp_report fmt t =
  let es = entries t in
  let tot = total t in
  let events = event_count t in
  Format.fprintf fmt "%-42s %10s %8s %6s@." "phase" "seconds" "count" "%";
  List.iter
    (fun (path, secs, count) ->
      let depth =
        String.fold_left (fun n c -> if c = '/' then n + 1 else n) 0 path
      in
      let leaf =
        match String.rindex_opt path '/' with
        | None -> path
        | Some i -> String.sub path (i + 1) (String.length path - i - 1)
      in
      let label = String.make (2 * depth) ' ' ^ leaf in
      Format.fprintf fmt "%-42s %10.4f %8d %5.1f%%@." label secs count
        (if tot > 0.0 then 100.0 *. secs /. tot else 0.0))
    es;
  Format.fprintf fmt "%-42s %10.4f %8d@." "total (top-level)" tot events;
  Format.fprintf fmt "instrumentation: %d events, ~%.4f s overhead@." events
    (overhead t)
