(** Assembler buffer: encodes {!Minst} values to bytes, with labels and
    fixups, and decodes bytes back for execution.

    X64 uses a variable-length encoding (1–10 bytes, immediates and
    displacements grow instructions); A64 uses fixed 4-byte words, so the
    encoder expands wide immediates into [movz]/[movk]/[movn] chains, large
    load/store offsets through the scratch register, and [Lea]/[Jmp_mem]
    pseudos into short sequences — mirroring how real back-ends pay for
    fixed-width encodings. *)

exception Encode_error of string

let enc_fail fmt = Format.kasprintf (fun s -> raise (Encode_error s)) fmt

type fixup_kind =
  | Rel32  (** X64: 4-byte signed, relative to end of field *)
  | Rel24w  (** A64: 3-byte signed word offset, relative to instr start *)
  | Rel16w  (** A64: 2-byte signed word offset, relative to instr start *)

type fixup = { fx_pos : int; fx_kind : fixup_kind; fx_label : int }

type t = {
  target : Target.t;
  mutable bytes : Bytes.t;
  mutable len : int;
  labels : int array ref;  (** label -> bound offset, -1 unbound *)
  mutable num_labels : int;
  mutable fixups : fixup list;
}

let create target =
  {
    target;
    bytes = Bytes.create 256;
    len = 0;
    labels = ref (Array.make 16 (-1));
    num_labels = 0;
    fixups = [];
  }

let offset t = t.len

let reserve t n =
  let cap = Bytes.length t.bytes in
  if t.len + n > cap then begin
    let cap' = max (t.len + n) (2 * cap) in
    let b = Bytes.create cap' in
    Bytes.blit t.bytes 0 b 0 t.len;
    t.bytes <- b
  end

let u8 t v =
  reserve t 1;
  Bytes.unsafe_set t.bytes t.len (Char.unsafe_chr (v land 0xFF));
  t.len <- t.len + 1

let u16 t v =
  u8 t v;
  u8 t (v lsr 8)

let u24 t v =
  u8 t v;
  u8 t (v lsr 8);
  u8 t (v lsr 16)

let u32 t v =
  u16 t v;
  u16 t (v lsr 16)

let u64 t (v : int64) =
  u32 t (Int64.to_int (Int64.logand v 0xFFFFFFFFL));
  u32 t (Int64.to_int (Int64.shift_right_logical v 32))

let new_label t =
  let l = t.num_labels in
  let labels = !(t.labels) in
  if l = Array.length labels then begin
    let a = Array.make (2 * l) (-1) in
    Array.blit labels 0 a 0 l;
    t.labels := a
  end;
  t.num_labels <- l + 1;
  l

let bind t l = !(t.labels).(l) <- t.len
let label_offset t l = !(t.labels).(l)

(* ------------------------------------------------------------------ *)
(* Shared numeric helpers *)

let fits_i32 (v : int64) = Int64.of_int32 (Int64.to_int32 v) = v
let fits_i8 (v : int64) = v >= -128L && v <= 127L
let fits_u16 (v : int64) = v >= 0L && v <= 0xFFFFL

let log2_size = function
  | 1 -> 0
  | 2 -> 1
  | 4 -> 2
  | 8 -> 3
  | n -> enc_fail "bad memory access size %d" n

let cond_code (c : Minst.cond) =
  match c with
  | Eq -> 0
  | Ne -> 1
  | Slt -> 2
  | Sle -> 3
  | Sgt -> 4
  | Sge -> 5
  | Ult -> 6
  | Ule -> 7
  | Ugt -> 8
  | Uge -> 9
  | Ov -> 10
  | Noov -> 11

let cond_of_code = function
  | 0 -> Minst.Eq
  | 1 -> Minst.Ne
  | 2 -> Minst.Slt
  | 3 -> Minst.Sle
  | 4 -> Minst.Sgt
  | 5 -> Minst.Sge
  | 6 -> Minst.Ult
  | 7 -> Minst.Ule
  | 8 -> Minst.Ugt
  | 9 -> Minst.Uge
  | 10 -> Minst.Ov
  | 11 -> Minst.Noov
  | c -> enc_fail "bad condition code %d" c

let alu_code (a : Minst.alu) =
  match a with
  | Add -> 0
  | Sub -> 1
  | Adc -> 2
  | Sbb -> 3
  | And -> 4
  | Or -> 5
  | Xor -> 6
  | Mul -> 7
  | Shl -> 8
  | Shr -> 9
  | Sar -> 10
  | Ror -> 11

let alu_of_code = function
  | 0 -> Minst.Add
  | 1 -> Minst.Sub
  | 2 -> Minst.Adc
  | 3 -> Minst.Sbb
  | 4 -> Minst.And
  | 5 -> Minst.Or
  | 6 -> Minst.Xor
  | 7 -> Minst.Mul
  | 8 -> Minst.Shl
  | 9 -> Minst.Shr
  | 10 -> Minst.Sar
  | 11 -> Minst.Ror
  | c -> enc_fail "bad alu code %d" c

let falu_code (a : Minst.falu) =
  match a with Fadd -> 0 | Fsub -> 1 | Fmul -> 2 | Fdiv -> 3

let falu_of_code = function
  | 0 -> Minst.Fadd
  | 1 -> Minst.Fsub
  | 2 -> Minst.Fmul
  | 3 -> Minst.Fdiv
  | c -> enc_fail "bad falu code %d" c

let commutative (a : Minst.alu) =
  match a with
  | Add | And | Or | Xor | Mul -> true
  | Sub | Adc | Sbb | Shl | Shr | Sar | Ror -> false

(* ------------------------------------------------------------------ *)
(* X64 opcode map (our own numbering, x86-flavored lengths)            *)

let xop_nop = 0x00
let xop_mov_rr = 0x01
let xop_mov_ri32 = 0x02
let xop_mov_ri64 = 0x03
let xop_cmp_rr = 0x04
let xop_cmp_ri = 0x05
let xop_lea = 0x06
let xop_ext = 0x07
let xop_mulw_u = 0x08
let xop_mulw_s = 0x09
let xop_div_u = 0x0A
let xop_div_s = 0x0B
let xop_crc32 = 0x0C
let xop_alu_rr = 0x10 (* +alu *)
let xop_alu_ri8 = 0x20 (* +alu *)
let xop_alu_ri32 = 0x30 (* +alu *)
let xop_ld = 0x40 (* +log2sz, +4 when sign-extending *)
let xop_st = 0x50 (* +log2sz *)
let xop_setcc = 0x60 (* +cond *)
let xop_csel = 0x70 (* +cond *)
let xop_jmp = 0x80
let xop_jmp_ind = 0x81
let xop_jmp_mem = 0x82
let xop_call_rel = 0x83
let xop_call_ind = 0x84
let xop_ret = 0x85
let xop_jcc = 0x90 (* +cond *)
let xop_falu = 0xA0 (* +falu *)
let xop_fcmp = 0xA4
let xop_cvt_si2f = 0xA5
let xop_cvt_f2si = 0xA6
let xop_brk = 0xFE

(* ------------------------------------------------------------------ *)
(* A64 opcode map (fixed 4-byte words)                                 *)

let aop_nop = 0x00
let aop_mov_rr = 0x01
let aop_movz = 0x02 (* +shift 0..3 *)
let aop_movk = 0x06 (* +shift *)
let aop_movn = 0x0A (* +shift *)
let aop_alu_rrr = 0x10 (* +alu *)
let aop_alu_rri = 0x20 (* +alu; imm16 unsigned *)
let aop_cmp_rr = 0x40
let aop_cmp_ri = 0x41
let aop_lea = 0x42 (* add with shifted register *)
let aop_ext = 0x43
let aop_mulh_u = 0x44
let aop_mulh_s = 0x45
let aop_div_u = 0x46
let aop_div_s = 0x47
let aop_msub = 0x48
let aop_crc32 = 0x49
let aop_ld = 0x50 (* +log2sz, +4 sext; unsigned scaled off8 *)
let aop_st = 0x60 (* +log2sz *)
let aop_setcc = 0x70 (* +cond *)
let aop_csel = 0x80 (* +cond *)
let aop_jcc = 0x90 (* +cond; rel16 words *)
let aop_jmp = 0xB0 (* rel24 words *)
let aop_jmp_ind = 0xB1
let aop_call_rel = 0xB3
let aop_call_ind = 0xB4
let aop_ret = 0xB5
let aop_falu = 0xC0 (* +falu *)
let aop_fcmp = 0xC4
let aop_cvt_si2f = 0xC5
let aop_cvt_f2si = 0xC6
let aop_brk = 0xFE

(* ------------------------------------------------------------------ *)
(* X64 encoder                                                         *)

let regpair d s = ((d land 0xF) lsl 4) lor (s land 0xF)

let rec encode_x64 t (i : Minst.t) =
  match i with
  | Nop -> u8 t xop_nop
  | Mov_rr (d, s) ->
      u8 t xop_mov_rr;
      u8 t (regpair d s)
  | Mov_ri (d, v) ->
      if fits_i32 v then begin
        u8 t xop_mov_ri32;
        u8 t d;
        u32 t (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
      end
      else begin
        u8 t xop_mov_ri64;
        u8 t d;
        u64 t v
      end
  | Movz _ | Movk _ -> enc_fail "movz/movk are A64-only"
  | Alu_rr (op, d, s) ->
      u8 t (xop_alu_rr + alu_code op);
      u8 t (regpair d s)
  | Alu_ri (op, d, v) ->
      if fits_i8 v then begin
        u8 t (xop_alu_ri8 + alu_code op);
        u8 t d;
        u8 t (Int64.to_int (Int64.logand v 0xFFL))
      end
      else if fits_i32 v then begin
        u8 t (xop_alu_ri32 + alu_code op);
        u8 t d;
        u32 t (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
      end
      else begin
        (* Wide immediate: materialize through the scratch register, like a
           real code generator would. *)
        encode_x64 t (Mov_ri (t.target.Target.scratch, v));
        encode_x64 t (Alu_rr (op, d, t.target.Target.scratch))
      end
  | Alu_rrr (op, d, a, b) ->
      (* Pseudo on X64: lower to two-address form. *)
      if d = a then encode_x64 t (Alu_rr (op, d, b))
      else if d = b && commutative op then encode_x64 t (Alu_rr (op, d, a))
      else if d = b then begin
        encode_x64 t (Mov_rr (t.target.Target.scratch, b));
        encode_x64 t (Mov_rr (d, a));
        encode_x64 t (Alu_rr (op, d, t.target.Target.scratch))
      end
      else begin
        encode_x64 t (Mov_rr (d, a));
        encode_x64 t (Alu_rr (op, d, b))
      end
  | Alu_rri (op, d, a, v) ->
      if d <> a then encode_x64 t (Mov_rr (d, a));
      encode_x64 t (Alu_ri (op, d, v))
  | Cmp_rr (a, b) ->
      u8 t xop_cmp_rr;
      u8 t (regpair a b)
  | Cmp_ri (a, v) ->
      if fits_i32 v then begin
        u8 t xop_cmp_ri;
        u8 t a;
        u32 t (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
      end
      else begin
        encode_x64 t (Mov_ri (t.target.Target.scratch, v));
        encode_x64 t (Cmp_rr (a, t.target.Target.scratch))
      end
  | Ld { dst; base; off; size; sext } ->
      u8 t (xop_ld + log2_size size + if sext then 4 else 0);
      u8 t (regpair dst base);
      u32 t off
  | St { src; base; off; size } ->
      u8 t (xop_st + log2_size size);
      u8 t (regpair src base);
      u32 t off
  | Lea { dst; base; index; scale; off } ->
      u8 t xop_lea;
      u8 t (regpair dst base);
      u8 t (index land 0xFF);
      u8 t (if index >= 0 then log2_size scale else 0);
      u32 t off
  | Ext { dst; src; bits; signed } ->
      u8 t xop_ext;
      u8 t (regpair dst src);
      u8 t (bits lor if signed then 0x80 else 0)
  | Mul_wide { signed; src } ->
      u8 t (if signed then xop_mulw_s else xop_mulw_u);
      u8 t src
  | Mul_hi _ -> enc_fail "mul_hi is A64-only"
  | Div { signed; src } ->
      u8 t (if signed then xop_div_s else xop_div_u);
      u8 t src
  | Div_rrr _ | Msub _ -> enc_fail "3-operand div/msub are A64-only"
  | Crc32_rr (d, s) ->
      u8 t xop_crc32;
      u8 t (regpair d s)
  | Crc32_rrr _ -> enc_fail "crc32_rrr is A64-only"
  | Setcc (c, d) ->
      u8 t (xop_setcc + cond_code c);
      u8 t d
  | Csel { cond; dst; a; b } ->
      if dst <> a then enc_fail "X64 csel requires dst = a (cmov)";
      u8 t (xop_csel + cond_code cond);
      u8 t (regpair dst b)
  | Jmp off ->
      u8 t xop_jmp;
      u32 t (off - (t.len + 4))
  | Jcc (c, off) ->
      u8 t (xop_jcc + cond_code c);
      u32 t (off - (t.len + 4))
  | Jmp_ind r ->
      u8 t xop_jmp_ind;
      u8 t r
  | Jmp_mem addr ->
      if not (fits_i32 addr) then enc_fail "jmp_mem slot out of range";
      u8 t xop_jmp_mem;
      u32 t (Int64.to_int (Int64.logand addr 0xFFFFFFFFL))
  | Call_rel off ->
      u8 t xop_call_rel;
      u32 t (off - (t.len + 4))
  | Call_ind r ->
      u8 t xop_call_ind;
      u8 t r
  | Ret -> u8 t xop_ret
  | Falu_rr (op, d, s) ->
      u8 t (xop_falu + falu_code op);
      u8 t (regpair d s)
  | Falu_rrr (op, d, a, b) ->
      if d = a then encode_x64 t (Falu_rr (op, d, b))
      else if d = b && (op = Fadd || op = Fmul) then
        encode_x64 t (Falu_rr (op, d, a))
      else begin
        if d = b then begin
          encode_x64 t (Mov_rr (t.target.Target.scratch, b));
          encode_x64 t (Mov_rr (d, a));
          encode_x64 t (Falu_rr (op, d, t.target.Target.scratch))
        end
        else begin
          encode_x64 t (Mov_rr (d, a));
          encode_x64 t (Falu_rr (op, d, b))
        end
      end
  | Fcmp_rr (a, b) ->
      u8 t xop_fcmp;
      u8 t (regpair a b)
  | Cvt_si2f (d, s) ->
      u8 t xop_cvt_si2f;
      u8 t (regpair d s)
  | Cvt_f2si (d, s) ->
      u8 t xop_cvt_f2si;
      u8 t (regpair d s)
  | Brk code ->
      u8 t xop_brk;
      u8 t code

(* ------------------------------------------------------------------ *)
(* A64 encoder                                                        *)

let word t op b1 b2 b3 =
  u8 t op;
  u8 t b1;
  u8 t b2;
  u8 t b3

let word16 t op b1 (imm : int) =
  u8 t op;
  u8 t b1;
  u16 t imm

let rec encode_a64 t (i : Minst.t) =
  let scratch = t.target.Target.scratch in
  match i with
  | Nop -> word t aop_nop 0 0 0
  | Mov_rr (d, s) -> word t aop_mov_rr d s 0
  | Mov_ri (d, v) ->
      (* movz + movk chain; zero chunks are skipped (movz clears them).
         Negative values expand to four instructions — we do not model
         movn, a documented simplification. *)
      let chunk k =
        Int64.to_int (Int64.logand (Int64.shift_right_logical v (16 * k)) 0xFFFFL)
      in
      let emitted = ref false in
      for k = 0 to 3 do
        let c = chunk k in
        if c <> 0 then begin
          if !emitted then encode_a64 t (Movk (d, c, k))
          else begin
            encode_a64 t (Movz (d, c, k));
            emitted := true
          end
        end
      done;
      if not !emitted then encode_a64 t (Movz (d, 0, 0))
  | Movz (d, imm, sh) -> word16 t (aop_movz + sh) d imm
  | Movk (d, imm, sh) -> word16 t (aop_movk + sh) d imm
  | Alu_rr (op, d, s) -> encode_a64 t (Alu_rrr (op, d, d, s))
  | Alu_ri (op, d, v) -> encode_a64 t (Alu_rri (op, d, d, v))
  | Alu_rrr (op, d, a, b) -> word t (aop_alu_rrr + alu_code op) d a b
  | Alu_rri (op, d, a, v) ->
      (* imm12 packed across the operand bytes, like the real encoding. *)
      if v >= 0L && v <= 4095L then begin
        let imm = Int64.to_int v in
        word t (aop_alu_rri + alu_code op)
          (d lor ((a land 0x7) lsl 5))
          ((a lsr 3) lor ((imm land 0x3F) lsl 2))
          (imm lsr 6)
      end
      else begin
        encode_a64 t (Mov_ri (scratch, v));
        encode_a64 t (Alu_rrr (op, d, a, scratch))
      end
  | Cmp_rr (a, b) -> word t aop_cmp_rr a b 0
  | Cmp_ri (a, v) ->
      if fits_u16 v then word16 t aop_cmp_ri a (Int64.to_int v)
      else begin
        encode_a64 t (Mov_ri (scratch, v));
        encode_a64 t (Cmp_rr (a, scratch))
      end
  | Ld { dst; base; off; size; sext } ->
      if off >= 0 && off mod size = 0 && off / size <= 255 then
        word t (aop_ld + log2_size size + if sext then 4 else 0) dst base
          (off / size)
      else begin
        encode_a64 t (Mov_ri (scratch, Int64.of_int off));
        encode_a64 t (Alu_rrr (Add, scratch, scratch, base));
        encode_a64 t (Ld { dst; base = scratch; off = 0; size; sext })
      end
  | St { src; base; off; size } ->
      if off >= 0 && off mod size = 0 && off / size <= 255 then
        word t (aop_st + log2_size size) src base (off / size)
      else begin
        encode_a64 t (Mov_ri (scratch, Int64.of_int off));
        encode_a64 t (Alu_rrr (Add, scratch, scratch, base));
        encode_a64 t (St { src; base = scratch; off = 0; size })
      end
  | Lea { dst; base; index; scale; off } ->
      if index >= 0 then begin
        word t aop_lea dst base (index lor (log2_size scale lsl 5));
        if off <> 0 then encode_a64 t (Alu_rri (Add, dst, dst, Int64.of_int off))
      end
      else if off = 0 then encode_a64 t (Mov_rr (dst, base))
      else encode_a64 t (Alu_rri (Add, dst, base, Int64.of_int off))
  | Ext { dst; src; bits; signed } ->
      word t aop_ext dst src (bits lor if signed then 0x80 else 0)
  | Mul_wide _ -> enc_fail "mul_wide is X64-only"
  | Mul_hi { signed; dst; a; b } ->
      word t (if signed then aop_mulh_s else aop_mulh_u) dst a b
  | Div _ -> enc_fail "implicit-register div is X64-only"
  | Div_rrr { signed; dst; a; b } ->
      word t (if signed then aop_div_s else aop_div_u) dst a b
  | Msub { dst; a; b; c } ->
      if c <> dst then enc_fail "A64 msub pseudo requires c = dst";
      word t aop_msub dst a b
  | Crc32_rr (d, s) -> encode_a64 t (Crc32_rrr (d, d, s))
  | Crc32_rrr (d, a, b) -> word t aop_crc32 d a b
  | Setcc (c, d) -> word t (aop_setcc + cond_code c) d 0 0
  | Csel { cond; dst; a; b } -> word t (aop_csel + cond_code cond) dst a b
  | Jmp off ->
      let rel = (off - t.len) asr 2 in
      u8 t aop_jmp;
      u24 t rel
  | Jcc (c, off) ->
      let rel = (off - t.len) asr 2 in
      word16 t (aop_jcc + cond_code c) 0 (rel land 0xFFFF)
  | Jmp_ind r -> word t aop_jmp_ind r 0 0
  | Jmp_mem addr ->
      (* adrp+ldr+br equivalent: materialize the slot address, load, jump *)
      encode_a64 t (Mov_ri (scratch, addr));
      encode_a64 t (Ld { dst = scratch; base = scratch; off = 0; size = 8; sext = false });
      encode_a64 t (Jmp_ind scratch)
  | Call_rel off ->
      let rel = (off - t.len) asr 2 in
      u8 t aop_call_rel;
      u24 t rel
  | Call_ind r -> word t aop_call_ind r 0 0
  | Ret -> word t aop_ret 0 0 0
  | Falu_rr (op, d, s) -> encode_a64 t (Falu_rrr (op, d, d, s))
  | Falu_rrr (op, d, a, b) -> word t (aop_falu + falu_code op) d a b
  | Fcmp_rr (a, b) -> word t aop_fcmp a b 0
  | Cvt_si2f (d, s) -> word t aop_cvt_si2f d s 0
  | Cvt_f2si (d, s) -> word t aop_cvt_f2si d s 0
  | Brk code -> word t aop_brk code 0 0

let emit t i =
  match t.target.Target.arch with
  | Target.X64 -> encode_x64 t i
  | Target.A64 -> encode_a64 t i

(* ------------------------------------------------------------------ *)
(* Label-based branches                                                *)

let add_fixup t kind label = t.fixups <- { fx_pos = t.len; fx_kind = kind; fx_label = label } :: t.fixups

let jmp t label =
  match t.target.Target.arch with
  | Target.X64 ->
      u8 t xop_jmp;
      add_fixup t Rel32 label;
      u32 t 0
  | Target.A64 ->
      u8 t aop_jmp;
      add_fixup t Rel24w label;
      u24 t 0

let jcc t cond label =
  match t.target.Target.arch with
  | Target.X64 ->
      u8 t (xop_jcc + cond_code cond);
      add_fixup t Rel32 label;
      u32 t 0
  | Target.A64 ->
      u8 t (aop_jcc + cond_code cond);
      u8 t 0;
      add_fixup t Rel16w label;
      u16 t 0

let call_label t label =
  match t.target.Target.arch with
  | Target.X64 ->
      u8 t xop_call_rel;
      add_fixup t Rel32 label;
      u32 t 0
  | Target.A64 ->
      u8 t aop_call_rel;
      add_fixup t Rel24w label;
      u24 t 0

let patch_u8 t pos v = Bytes.set t.bytes pos (Char.chr (v land 0xFF))

let patch t { fx_pos; fx_kind; fx_label } =
  let target_off = !(t.labels).(fx_label) in
  if target_off < 0 then enc_fail "unbound label %d" fx_label;
  match fx_kind with
  | Rel32 ->
      let rel = target_off - (fx_pos + 4) in
      patch_u8 t fx_pos rel;
      patch_u8 t (fx_pos + 1) (rel asr 8);
      patch_u8 t (fx_pos + 2) (rel asr 16);
      patch_u8 t (fx_pos + 3) (rel asr 24)
  | Rel24w ->
      (* field begins 1 byte into the word; relative to instruction start *)
      let rel = (target_off - (fx_pos - 1)) asr 2 in
      patch_u8 t fx_pos rel;
      patch_u8 t (fx_pos + 1) (rel asr 8);
      patch_u8 t (fx_pos + 2) (rel asr 16)
  | Rel16w ->
      let rel = (target_off - (fx_pos - 2)) asr 2 in
      patch_u8 t fx_pos rel;
      patch_u8 t (fx_pos + 1) (rel asr 8)

(** Overwrite a previously emitted 32-bit immediate (e.g. the frame size in
    a single-pass compiler's prologue, patched once the frame is known). *)
let patch_imm32 t pos v =
  patch_u8 t pos v;
  patch_u8 t (pos + 1) (v asr 8);
  patch_u8 t (pos + 2) (v asr 16);
  patch_u8 t (pos + 3) (v asr 24)

(** Emit a [Mov_ri] in the wide (64-bit-immediate) encoding regardless of
    the value's range and return the byte offset of its 8-byte immediate
    field — a patchable hole for link-time parameter binding. X64 only:
    the A64 pseudo expands to a value-dependent movz/movk sequence with no
    fixed-width field. *)
let emit_mov_ri64 t d v =
  (match t.target.Target.arch with
  | Target.X64 -> ()
  | Target.A64 -> enc_fail "emit_mov_ri64 is X64-only");
  u8 t xop_mov_ri64;
  u8 t d;
  let pos = t.len in
  u64 t v;
  pos

let finish t =
  List.iter (patch t) t.fixups;
  t.fixups <- [];
  Bytes.sub t.bytes 0 t.len

(* ------------------------------------------------------------------ *)
(* Decoders                                                            *)

exception Decode_error of string

let dec_fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let rd_u8 b pos = Char.code (Bytes.get b pos)

let rd_i8 b pos =
  let v = rd_u8 b pos in
  if v >= 128 then v - 256 else v

let rd_u16 b pos = rd_u8 b pos lor (rd_u8 b (pos + 1) lsl 8)

let rd_i16 b pos =
  let v = rd_u16 b pos in
  if v >= 0x8000 then v - 0x10000 else v

let rd_i24 b pos =
  let v = rd_u16 b pos lor (rd_u8 b (pos + 2) lsl 16) in
  if v >= 0x800000 then v - 0x1000000 else v

let rd_i32 b pos =
  let v = rd_u16 b pos lor (rd_u16 b (pos + 2) lsl 16) in
  if v >= 0x80000000 then v - 0x100000000 else v

let rd_i64 b pos =
  Int64.logor
    (Int64.of_int (rd_u16 b pos lor (rd_u16 b (pos + 2) lsl 16)))
    (Int64.shift_left
       (Int64.logor
          (Int64.of_int (rd_u16 b (pos + 4)))
          (Int64.shift_left (Int64.of_int (rd_u16 b (pos + 6))) 16))
       32)

let decode_x64 b pos : Minst.t * int =
  let op = rd_u8 b pos in
  let pair p = (rd_u8 b p lsr 4, rd_u8 b p land 0xF) in
  if op = xop_nop then (Nop, pos + 1)
  else if op = xop_mov_rr then
    let d, s = pair (pos + 1) in
    (Mov_rr (d, s), pos + 2)
  else if op = xop_mov_ri32 then
    (Mov_ri (rd_u8 b (pos + 1), Int64.of_int (rd_i32 b (pos + 2))), pos + 6)
  else if op = xop_mov_ri64 then
    (Mov_ri (rd_u8 b (pos + 1), rd_i64 b (pos + 2)), pos + 10)
  else if op = xop_cmp_rr then
    let a, b' = pair (pos + 1) in
    (Cmp_rr (a, b'), pos + 2)
  else if op = xop_cmp_ri then
    (Cmp_ri (rd_u8 b (pos + 1), Int64.of_int (rd_i32 b (pos + 2))), pos + 6)
  else if op = xop_lea then
    let d, base = pair (pos + 1) in
    let idx = rd_i8 b (pos + 2) in
    let sc = rd_u8 b (pos + 3) in
    ( Lea
        {
          dst = d;
          base;
          index = idx;
          scale = (if idx >= 0 then 1 lsl sc else 1);
          off = rd_i32 b (pos + 4);
        },
      pos + 8 )
  else if op = xop_ext then
    let d, s = pair (pos + 1) in
    let m = rd_u8 b (pos + 2) in
    (Ext { dst = d; src = s; bits = m land 0x7F; signed = m land 0x80 <> 0 }, pos + 3)
  else if op = xop_mulw_u || op = xop_mulw_s then
    (Mul_wide { signed = op = xop_mulw_s; src = rd_u8 b (pos + 1) }, pos + 2)
  else if op = xop_div_u || op = xop_div_s then
    (Div { signed = op = xop_div_s; src = rd_u8 b (pos + 1) }, pos + 2)
  else if op = xop_crc32 then
    let d, s = pair (pos + 1) in
    (Crc32_rr (d, s), pos + 2)
  else if op >= xop_alu_rr && op < xop_alu_rr + 12 then
    let d, s = pair (pos + 1) in
    (Alu_rr (alu_of_code (op - xop_alu_rr), d, s), pos + 2)
  else if op >= xop_alu_ri8 && op < xop_alu_ri8 + 12 then
    ( Alu_ri
        (alu_of_code (op - xop_alu_ri8), rd_u8 b (pos + 1),
         Int64.of_int (rd_i8 b (pos + 2))),
      pos + 3 )
  else if op >= xop_alu_ri32 && op < xop_alu_ri32 + 12 then
    ( Alu_ri
        (alu_of_code (op - xop_alu_ri32), rd_u8 b (pos + 1),
         Int64.of_int (rd_i32 b (pos + 2))),
      pos + 6 )
  else if op >= xop_ld && op < xop_ld + 8 then
    let d, base = pair (pos + 1) in
    let k = op - xop_ld in
    ( Ld
        {
          dst = d;
          base;
          off = rd_i32 b (pos + 2);
          size = 1 lsl (k land 3);
          sext = k land 4 <> 0;
        },
      pos + 6 )
  else if op >= xop_st && op < xop_st + 4 then
    let s, base = pair (pos + 1) in
    ( St { src = s; base; off = rd_i32 b (pos + 2); size = 1 lsl (op - xop_st) },
      pos + 6 )
  else if op >= xop_setcc && op < xop_setcc + 12 then
    (Setcc (cond_of_code (op - xop_setcc), rd_u8 b (pos + 1)), pos + 2)
  else if op >= xop_csel && op < xop_csel + 12 then
    let d, b' = pair (pos + 1) in
    (Csel { cond = cond_of_code (op - xop_csel); dst = d; a = d; b = b' }, pos + 2)
  else if op = xop_jmp then (Jmp (pos + 5 + rd_i32 b (pos + 1)), pos + 5)
  else if op >= xop_jcc && op < xop_jcc + 12 then
    (Jcc (cond_of_code (op - xop_jcc), pos + 5 + rd_i32 b (pos + 1)), pos + 5)
  else if op = xop_jmp_ind then (Jmp_ind (rd_u8 b (pos + 1)), pos + 2)
  else if op = xop_jmp_mem then
    (Jmp_mem (Int64.of_int (rd_i32 b (pos + 1))), pos + 5)
  else if op = xop_call_rel then (Call_rel (pos + 5 + rd_i32 b (pos + 1)), pos + 5)
  else if op = xop_call_ind then (Call_ind (rd_u8 b (pos + 1)), pos + 2)
  else if op = xop_ret then (Ret, pos + 1)
  else if op >= xop_falu && op < xop_falu + 4 then
    let d, s = pair (pos + 1) in
    (Falu_rr (falu_of_code (op - xop_falu), d, s), pos + 2)
  else if op = xop_fcmp then
    let a, b' = pair (pos + 1) in
    (Fcmp_rr (a, b'), pos + 2)
  else if op = xop_cvt_si2f then
    let d, s = pair (pos + 1) in
    (Cvt_si2f (d, s), pos + 2)
  else if op = xop_cvt_f2si then
    let d, s = pair (pos + 1) in
    (Cvt_f2si (d, s), pos + 2)
  else if op = xop_brk then (Brk (rd_u8 b (pos + 1)), pos + 2)
  else dec_fail "x64: bad opcode 0x%02x at %d" op pos

let decode_a64 b pos : Minst.t * int =
  let op = rd_u8 b pos in
  let b1 = rd_u8 b (pos + 1) in
  let b2 = rd_u8 b (pos + 2) in
  let b3 = rd_u8 b (pos + 3) in
  let next = pos + 4 in
  let inst : Minst.t =
    if op = aop_nop then Nop
    else if op = aop_mov_rr then Mov_rr (b1, b2)
    else if op >= aop_movz && op < aop_movz + 4 then
      Movz (b1, b2 lor (b3 lsl 8), op - aop_movz)
    else if op >= aop_movk && op < aop_movk + 4 then
      Movk (b1, b2 lor (b3 lsl 8), op - aop_movk)
    else if op >= aop_alu_rrr && op < aop_alu_rrr + 12 then
      Alu_rrr (alu_of_code (op - aop_alu_rrr), b1, b2, b3)
    else if op >= aop_alu_rri && op < aop_alu_rri + 12 then
      let d = b1 land 0x1F in
      let a = (b1 lsr 5) lor ((b2 land 0x3) lsl 3) in
      let imm = (b2 lsr 2) lor (b3 lsl 6) in
      Alu_rri (alu_of_code (op - aop_alu_rri), d, a, Int64.of_int imm)
    else if op = aop_cmp_rr then Cmp_rr (b1, b2)
    else if op = aop_cmp_ri then Cmp_ri (b1, Int64.of_int (b2 lor (b3 lsl 8)))
    else if op = aop_lea then
      Lea { dst = b1; base = b2; index = b3 land 0x1F; scale = 1 lsl (b3 lsr 5); off = 0 }
    else if op = aop_ext then
      Ext { dst = b1; src = b2; bits = b3 land 0x7F; signed = b3 land 0x80 <> 0 }
    else if op = aop_mulh_u || op = aop_mulh_s then
      Mul_hi { signed = op = aop_mulh_s; dst = b1; a = b2; b = b3 }
    else if op = aop_div_u || op = aop_div_s then
      Div_rrr { signed = op = aop_div_s; dst = b1; a = b2; b = b3 }
    else if op = aop_msub then Msub { dst = b1; a = b2; b = b3; c = b1 }
    else if op = aop_crc32 then Crc32_rrr (b1, b2, b3)
    else if op >= aop_ld && op < aop_ld + 8 then
      let k = op - aop_ld in
      let size = 1 lsl (k land 3) in
      Ld { dst = b1; base = b2; off = b3 * size; size; sext = k land 4 <> 0 }
    else if op >= aop_st && op < aop_st + 4 then
      let size = 1 lsl (op - aop_st) in
      St { src = b1; base = b2; off = b3 * size; size }
    else if op >= aop_setcc && op < aop_setcc + 12 then
      Setcc (cond_of_code (op - aop_setcc), b1)
    else if op >= aop_csel && op < aop_csel + 12 then
      Csel { cond = cond_of_code (op - aop_csel); dst = b1; a = b2; b = b3 }
    else if op >= aop_jcc && op < aop_jcc + 12 then
      Jcc (cond_of_code (op - aop_jcc), pos + 4 * rd_i16 b (pos + 2))
    else if op = aop_jmp then Jmp (pos + 4 * rd_i24 b (pos + 1))
    else if op = aop_jmp_ind then Jmp_ind b1
    else if op = aop_call_rel then Call_rel (pos + 4 * rd_i24 b (pos + 1))
    else if op = aop_call_ind then Call_ind b1
    else if op = aop_ret then Ret
    else if op >= aop_falu && op < aop_falu + 4 then
      Falu_rrr (falu_of_code (op - aop_falu), b1, b2, b3)
    else if op = aop_fcmp then Fcmp_rr (b1, b2)
    else if op = aop_cvt_si2f then Cvt_si2f (b1, b2)
    else if op = aop_cvt_f2si then Cvt_f2si (b1, b2)
    else if op = aop_brk then Brk b1
    else dec_fail "a64: bad opcode 0x%02x at %d" op pos
  in
  (inst, next)

let decode (target : Target.t) b pos =
  match target.Target.arch with
  | Target.X64 -> decode_x64 b pos
  | Target.A64 -> decode_a64 b pos

(** Decode a whole blob into an instruction array plus an offset->index
    map (array of length [Bytes.length b + 1], -1 where no instruction
    starts). *)
let decode_all target b =
  let len = Bytes.length b in
  let insts = ref [] in
  let off2idx = Array.make (len + 1) (-1) in
  let idx = ref 0 in
  let pos = ref 0 in
  while !pos < len do
    let inst, next = decode target b !pos in
    off2idx.(!pos) <- !idx;
    insts := inst :: !insts;
    incr idx;
    pos := next
  done;
  (Array.of_list (List.rev !insts), off2idx)
