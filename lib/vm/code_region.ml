(** First-class handle to a range of executable code memory.

    {!Emu.register_code} returns one of these for every registered blob;
    the owner of the handle (normally a
    {!Qcomp_backend.Backend.compiled_module}) must eventually pass it back
    to {!Emu.release_code}, which unmaps the module, poisons the address
    range and recycles it through the emulator's size-class free lists.
    After release the handle is dead ([is_live] = false) and any fetch
    from the range traps with a "use-after-free code region" error instead
    of silently executing stale bytes. *)

type t = {
  cr_base : int;  (** first code address of the region *)
  cr_size : int;  (** bytes of code actually registered *)
  cr_span : int;  (** page-aligned bytes reserved (allocation granule) *)
  mutable cr_live : bool;
}

let base r = r.cr_base
let size r = r.cr_size
let span r = r.cr_span
let is_live r = r.cr_live

let pp fmt r =
  Format.fprintf fmt "[0x%x..0x%x) %s" r.cr_base (r.cr_base + r.cr_size)
    (if r.cr_live then "live" else "freed")
