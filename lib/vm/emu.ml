(** The virtual machine: decodes registered code blobs once, then executes
    them with a deterministic cycle model (see DESIGN.md).

    Address space:
    - [0 .. memory size): linear data memory (tables, heap, GOTs, stack)
    - [code_base ..): registered code blobs
    - [runtime_base ..): runtime functions, one slot of 8 bytes each
    - [sentinel]: the initial return address; reaching it ends execution.

    Execution-time measurement is the [cycles] counter; runtime functions
    charge their own work via {!charge}. *)

exception Trap of string

let code_base = 0x100_0000_0000
let runtime_base = 0x7F00_0000_0000
let sentinel = 0x7FFF_0000_0000

type code_mod = {
  cm_base : int;
  cm_size : int;
  cm_insts : Minst.t array;
  cm_off2idx : int array;
}

(** Code + runtime registries shared by every execution context of one
    virtual machine. All mutation happens under [reg_mu]; the hot read
    paths ([find_mod], runtime dispatch) read the mutable fields without
    the lock — they only ever chase addresses that were published to them
    through a mutex (the caller obtained the module through the code cache
    or compiled it itself), which establishes the happens-before edge.
    [code_gen] bumps on every release so per-context [last_mod] caches
    cannot resurrect a module whose span was recycled by another domain. *)
type shared = {
  mutable mods : code_mod list;
  mutable next_code_base : int;
  free_spans : (int, int list) Hashtbl.t;  (** span size -> free bases *)
  poisoned : (int, int) Hashtbl.t;  (** freed base -> span, until reused *)
  mutable live_code : int;  (** bytes of code in live regions *)
  mutable peak_code : int;  (** high-water mark of [live_code] *)
  mutable freed_code : int;  (** cumulative bytes released *)
  mutable code_gen : int;  (** bumped by every release (cache invalidation) *)
  mutable runtime : (t -> unit) array;
  mutable runtime_names : string array;
  mutable free_runtime : int list;  (** recyclable runtime slots *)
  reg_mu : Mutex.t;  (** guards every mutation of this record *)
  layout_mu : Mutex.t;  (** see {!with_layout_lock} *)
}

and t = {
  target : Target.t;
  mem : Memory.t;
  regs : int64 array;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable ovf : bool;
  mutable cycles : int;
  mutable icount : int;
  mutable fuel : int;  (** max instructions per [call]; <0 = unlimited *)
  stack_top : int;  (** where [call] plants sp — per context, so domains
                        executing concurrently never share a stack *)
  shared : shared;
  mutable last_mod : code_mod option;
  mutable last_gen : int;  (** [shared.code_gen] when [last_mod] was cached *)
}

let create ?(mem_size = 256 * 1024 * 1024) target =
  let mem = Memory.create mem_size in
  {
    target;
    mem;
    regs = Array.make 33 0L;
    zf = false;
    sf = false;
    cf = false;
    ovf = false;
    cycles = 0;
    icount = 0;
    fuel = -1;
    stack_top = mem_size - 64;
    shared =
      {
        mods = [];
        next_code_base = code_base;
        free_spans = Hashtbl.create 8;
        poisoned = Hashtbl.create 8;
        live_code = 0;
        peak_code = 0;
        freed_code = 0;
        code_gen = 0;
        runtime = [||];
        runtime_names = [||];
        free_runtime = [];
        reg_mu = Mutex.create ();
        layout_mu = Mutex.create ();
      };
    last_mod = None;
    last_gen = 0;
  }

(** A fresh execution context over the same machine: shares the linear
    memory and the code/runtime registries, but owns its registers, flags,
    cycle/instruction counters and fuel. This is what lets one worker
    domain execute a query while another compiles or executes elsewhere —
    the virtual machine becomes one "core" per context over shared memory
    and a shared code segment. *)
(* Stack carved out of linear memory for each additional context; the
   primary context keeps the historical top-of-memory stack. *)
let context_stack_bytes = 256 * 1024

let context t =
  (* the stack outlives any query the context will run, so it must not be
     recorded into (and later freed by) an active allocation scope *)
  let base =
    Memory.unscoped (fun () -> Memory.alloc t.mem ~align:16 context_stack_bytes)
  in
  {
    target = t.target;
    mem = t.mem;
    regs = Array.make 33 0L;
    zf = false;
    sf = false;
    cf = false;
    ovf = false;
    cycles = 0;
    icount = 0;
    fuel = t.fuel;
    stack_top = base + context_stack_bytes - 64;
    shared = t.shared;
    last_mod = None;
    last_gen = 0;
  }

(** [with_layout_lock t f] runs [f] holding the machine's code-layout lock.
    A JIT linker must predict the address a blob will get
    ({!next_code_addr}) before applying relocations and registering it,
    while any other registration or disposal moves that prediction — so
    the predict-link-register window, every bare {!register_code} from a
    position-independent back-end, and every dispose sequence take this
    lock to be mutually atomic. Compilation proper (IR, isel, emission)
    runs outside it, which is what lets worker domains compile
    concurrently. Individual registry operations take the finer [reg_mu]
    internally; the two locks never nest the other way around. *)
let with_layout_lock t f = Mutex.protect t.shared.layout_mu f

let memory t = t.mem
let target_of t = t.target
let cycles t = t.cycles
let instructions_executed t = t.icount
let reset_counters t =
  t.cycles <- 0;
  t.icount <- 0

let charge t c = t.cycles <- t.cycles + c

(** Install the runtime function table (index = slot). *)
let set_runtime t fns names =
  Mutex.protect t.shared.reg_mu (fun () ->
      t.shared.runtime <- fns;
      t.shared.runtime_names <- names)

(** Append a host function (e.g. an interpreted query function) and return
    its callable address. Released slots ({!remove_runtime}) are reused
    before the table grows. *)
let add_runtime t name fn =
  let s = t.shared in
  Mutex.protect s.reg_mu (fun () ->
      match s.free_runtime with
      | idx :: rest ->
          s.free_runtime <- rest;
          (* copy-on-write: published arrays are never mutated in place, so
             lock-free dispatch reads a consistent table *)
          let fns = Array.copy s.runtime and names = Array.copy s.runtime_names in
          fns.(idx) <- fn;
          names.(idx) <- name;
          s.runtime <- fns;
          s.runtime_names <- names;
          Int64.of_int (runtime_base + (8 * idx))
      | [] ->
          let idx = Array.length s.runtime in
          s.runtime <- Array.append s.runtime [| fn |];
          s.runtime_names <- Array.append s.runtime_names [| name |];
          Int64.of_int (runtime_base + (8 * idx)))

let runtime_addr idx = Int64.of_int (runtime_base + (8 * idx))

let is_runtime_addr (a : int) = a >= runtime_base && a < sentinel

(** Release a host-function slot obtained from {!add_runtime}: the slot is
    poisoned (calls trap) and recycled by the next [add_runtime]. *)
let remove_runtime t (addr : int64) =
  let a = Int64.to_int addr in
  if not (is_runtime_addr a) then
    invalid_arg "Emu.remove_runtime: not a runtime address";
  let idx = (a - runtime_base) / 8 in
  let s = t.shared in
  Mutex.protect s.reg_mu (fun () ->
      if idx >= Array.length s.runtime then
        invalid_arg "Emu.remove_runtime: slot was never allocated";
      if List.mem idx s.free_runtime then
        invalid_arg "Emu.remove_runtime: slot already released";
      let fns = Array.copy s.runtime and names = Array.copy s.runtime_names in
      fns.(idx) <-
        (fun _ ->
          raise (Trap (Printf.sprintf "use-after-free runtime slot %d" idx)));
      names.(idx) <- "<freed>";
      s.runtime <- fns;
      s.runtime_names <- names;
      s.free_runtime <- idx :: s.free_runtime)

(** Round [n] up to the 4 KiB page granule of the code allocator. Both
    fresh allocation and free-list recycling reserve whole pages, so two
    code blobs never share a page and a released span can be handed out
    again verbatim. *)
let page_size = 0x1000
let page_align n = (n + (page_size - 1)) land lnot (page_size - 1)

(* Pop a free span of exactly [span] bytes, if any. Caller holds [reg_mu]. *)
let take_free_span s span =
  match Hashtbl.find_opt s.free_spans span with
  | Some (base :: rest) ->
      if rest = [] then Hashtbl.remove s.free_spans span
      else Hashtbl.replace s.free_spans span rest;
      Hashtbl.remove s.poisoned base;
      Some base
  | Some [] | None -> None

(** Address the next registered code blob of [size] bytes will get (used by
    JIT linkers that must know final addresses before applying
    relocations). With recycling the answer depends on the blob size: a
    free span of the matching size class is reused before the bump pointer
    advances. Callers that rely on the prediction must hold
    {!with_layout_lock} across predict-link-register. *)
let next_code_addr t ~size =
  let s = t.shared in
  Mutex.protect s.reg_mu (fun () ->
      match Hashtbl.find_opt s.free_spans (page_align size) with
      | Some (base :: _) -> base
      | Some [] | None -> s.next_code_base)

(** Register a code blob; returns a {!Code_region.t} ownership handle whose
    [base] is the blob's first address. The address range comes from the
    size-class free lists when a released span of the same class exists,
    otherwise from the bump pointer. *)
let register_code t (code : bytes) =
  let insts, off2idx = Asm.decode_all t.target code in
  let size = Bytes.length code in
  let span = page_align size in
  let s = t.shared in
  Mutex.protect s.reg_mu (fun () ->
      let base =
        match take_free_span s span with
        | Some base -> base
        | None ->
            let base = s.next_code_base in
            s.next_code_base <- base + span;
            base
      in
      let m =
        { cm_base = base; cm_size = size; cm_insts = insts; cm_off2idx = off2idx }
      in
      s.mods <- m :: s.mods;
      s.live_code <- s.live_code + size;
      if s.live_code > s.peak_code then s.peak_code <- s.live_code;
      { Code_region.cr_base = base; cr_size = size; cr_span = span; cr_live = true })

(** Release a code region: the module disappears from the address space,
    the span is poisoned (fetches trap with "use-after-free code region")
    and queued for reuse by same-sized registrations. Raises
    [Invalid_argument] on double release. *)
let release_code t (r : Code_region.t) =
  let s = t.shared in
  Mutex.protect s.reg_mu (fun () ->
      if not r.Code_region.cr_live then
        invalid_arg "Emu.release_code: region already released";
      r.Code_region.cr_live <- false;
      let base = r.Code_region.cr_base and span = r.Code_region.cr_span in
      s.mods <- List.filter (fun m -> m.cm_base <> base) s.mods;
      (* every context's [last_mod] cache dies with the generation bump *)
      s.code_gen <- s.code_gen + 1;
      s.live_code <- s.live_code - r.Code_region.cr_size;
      s.freed_code <- s.freed_code + r.Code_region.cr_size;
      if span > 0 then begin
        Hashtbl.replace s.poisoned base span;
        let bases =
          Option.value ~default:[] (Hashtbl.find_opt s.free_spans span)
        in
        Hashtbl.replace s.free_spans span (base :: bases)
      end)

let live_code_bytes t = t.shared.live_code
let peak_code_bytes t = t.shared.peak_code
let freed_code_bytes t = t.shared.freed_code

let find_mod t addr =
  let s = t.shared in
  match t.last_mod with
  | Some m
    when t.last_gen = s.code_gen && addr >= m.cm_base
         && addr < m.cm_base + m.cm_size ->
      m
  | _ -> (
      (* snapshot the generation before the walk: a concurrent release
         invalidates the cache entry we are about to write, not keep it *)
      let gen = s.code_gen in
      match
        List.find_opt
          (fun m -> addr >= m.cm_base && addr < m.cm_base + m.cm_size)
          s.mods
      with
      | Some m ->
          t.last_mod <- Some m;
          t.last_gen <- gen;
          m
      | None ->
          Mutex.protect s.reg_mu (fun () ->
              Hashtbl.iter
                (fun base span ->
                  if addr >= base && addr < base + span then
                    raise
                      (Trap
                         (Printf.sprintf "use-after-free code region at 0x%x"
                            addr)))
                s.poisoned);
          raise (Trap (Printf.sprintf "jump to unmapped address 0x%x" addr)))

let idx_of t (m : code_mod) addr =
  let off = addr - m.cm_base in
  let i = m.cm_off2idx.(off) in
  if i < 0 then raise (Trap (Printf.sprintf "jump into middle of instruction at 0x%x" addr));
  ignore t;
  i

(* ---------------- flags ---------------- *)

let set_zs t (r : int64) =
  t.zf <- Int64.equal r 0L;
  t.sf <- Int64.compare r 0L < 0

let flags_add t a b r =
  set_zs t r;
  t.cf <- Int64.unsigned_compare r a < 0;
  t.ovf <-
    Int64.compare (Int64.logand (Int64.logxor a (Int64.lognot b)) (Int64.logxor a r)) 0L < 0

let flags_sub t a b r =
  set_zs t r;
  t.cf <- Int64.unsigned_compare a b < 0;
  t.ovf <- Int64.compare (Int64.logand (Int64.logxor a b) (Int64.logxor a r)) 0L < 0

let flags_logic t r =
  set_zs t r;
  t.cf <- false;
  t.ovf <- false

let cond_true t (c : Minst.cond) =
  match c with
  | Eq -> t.zf
  | Ne -> not t.zf
  | Slt -> t.sf <> t.ovf
  | Sle -> t.zf || t.sf <> t.ovf
  | Sgt -> (not t.zf) && t.sf = t.ovf
  | Sge -> t.sf = t.ovf
  | Ult -> t.cf
  | Ule -> t.cf || t.zf
  | Ugt -> (not t.cf) && not t.zf
  | Uge -> not t.cf
  | Ov -> t.ovf
  | Noov -> not t.ovf

(* ---------------- cost model ---------------- *)

let cost (i : Minst.t) =
  match i with
  | Nop -> 0
  | Mov_rr _ | Mov_ri _ | Movz _ | Movk _ -> 1
  | Alu_rr (a, _, _) | Alu_ri (a, _, _) | Alu_rrr (a, _, _, _) | Alu_rri (a, _, _, _)
    -> (
      match a with Mul -> 3 | _ -> 1)
  | Cmp_rr _ | Cmp_ri _ -> 1
  | Ld _ -> 2
  | St _ -> 2
  | Lea _ -> 1
  | Ext _ -> 1
  | Mul_wide _ | Mul_hi _ -> 4
  | Div _ | Div_rrr _ -> 20
  | Msub _ -> 3
  | Crc32_rr _ | Crc32_rrr _ -> 1
  | Setcc _ | Csel _ -> 1
  | Jmp _ -> 1
  | Jcc _ -> 1
  | Jmp_ind _ -> 2
  | Jmp_mem _ -> 3
  | Call_rel _ -> 2
  | Call_ind _ -> 3
  | Ret -> 2
  | Falu_rr (f, _, _) | Falu_rrr (f, _, _, _) -> (
      match f with Fdiv -> 15 | Fmul -> 4 | _ -> 3)
  | Fcmp_rr _ -> 2
  | Cvt_si2f _ | Cvt_f2si _ -> 4
  | Brk _ -> 0

let runtime_dispatch_cost = 12

(* ---------------- execution ---------------- *)

let alu_eval t (op : Minst.alu) a b =
  match op with
  | Add ->
      let r = Int64.add a b in
      flags_add t a b r;
      r
  | Sub ->
      let r = Int64.sub a b in
      flags_sub t a b r;
      r
  | Adc ->
      let cin = if t.cf then 1L else 0L in
      let r = Int64.add (Int64.add a b) cin in
      let cf1 = Int64.unsigned_compare (Int64.add a b) a < 0 in
      let cf2 = Int64.unsigned_compare r (Int64.add a b) < 0 in
      set_zs t r;
      t.cf <- cf1 || cf2;
      (* signed overflow (valid with carry-in): operands agree, result differs *)
      t.ovf <-
        Int64.compare (Int64.logand (Int64.logxor a r) (Int64.logxor b r)) 0L < 0;
      r
  | Sbb ->
      let cin = if t.cf then 1L else 0L in
      let r = Int64.sub (Int64.sub a b) cin in
      let borrow =
        Int64.unsigned_compare a b < 0
        || (Int64.equal a b && Int64.equal cin 1L)
        || Int64.unsigned_compare (Int64.sub a b) cin < 0
      in
      set_zs t r;
      t.cf <- borrow;
      t.ovf <-
        Int64.compare (Int64.logand (Int64.logxor a b) (Int64.logxor a r)) 0L < 0;
      r
  | And ->
      let r = Int64.logand a b in
      flags_logic t r;
      r
  | Or ->
      let r = Int64.logor a b in
      flags_logic t r;
      r
  | Xor ->
      let r = Int64.logxor a b in
      flags_logic t r;
      r
  | Mul ->
      let r = Int64.mul a b in
      set_zs t r;
      let wide = Qcomp_support.I128.smul64_wide a b in
      let hi = Qcomp_support.I128.to_int64 (Qcomp_support.I128.shift_right wide 64) in
      let ovf = not (Int64.equal hi (Int64.shift_right r 63)) in
      t.cf <- ovf;
      t.ovf <- ovf;
      r
  | Shl ->
      let r = Int64.shift_left a (Int64.to_int b land 63) in
      set_zs t r;
      r
  | Shr ->
      let r = Int64.shift_right_logical a (Int64.to_int b land 63) in
      set_zs t r;
      r
  | Sar ->
      let r = Int64.shift_right a (Int64.to_int b land 63) in
      set_zs t r;
      r
  | Ror ->
      let n = Int64.to_int b land 63 in
      let r =
        if n = 0 then a
        else Int64.logor (Int64.shift_right_logical a n) (Int64.shift_left a (64 - n))
      in
      set_zs t r;
      r

let ext_eval v ~bits ~signed =
  match (bits, signed) with
  | 8, false -> Int64.logand v 0xFFL
  | 8, true -> Int64.shift_right (Int64.shift_left v 56) 56
  | 16, false -> Int64.logand v 0xFFFFL
  | 16, true -> Int64.shift_right (Int64.shift_left v 48) 48
  | 32, false -> Int64.logand v 0xFFFFFFFFL
  | 32, true -> Int64.shift_right (Int64.shift_left v 32) 32
  | 1, false -> Int64.logand v 1L
  | 1, true -> Int64.shift_right (Int64.shift_left v 63) 63
  | _ -> raise (Trap "bad extension width")

let f64 v = Int64.float_of_bits v
let bits f = Int64.bits_of_float f

(** Run starting at [addr] until control returns to the sentinel.
    Reentrant: runtime functions may use {!call_generated}. *)
let rec run_at t addr =
  let is_x64 = t.target.Target.arch = Target.X64 in
  let sp = t.target.Target.sp in
  let cur = ref (find_mod t addr) in
  let ip = ref (idx_of t !cur addr) in
  let running = ref true in
  (* Transfer control to an arbitrary address: code, runtime or sentinel. *)
  let goto (a : int) =
    if a = sentinel then running := false
    else if is_runtime_addr a then begin
      (* Landing in the runtime via a tail jump (PLT): execute the callee,
         then return to the caller's return address. *)
      let retaddr =
        if is_x64 then begin
          let ra = Memory.load64 t.mem (Int64.to_int t.regs.(sp)) in
          t.regs.(sp) <- Int64.add t.regs.(sp) 8L;
          ra
        end
        else t.regs.(Target.lr)
      in
      dispatch_runtime t a;
      let ra = Int64.to_int retaddr in
      if ra = sentinel then running := false
      else begin
        let m = find_mod t ra in
        cur := m;
        ip := idx_of t m ra
      end
    end
    else begin
      let m = find_mod t a in
      cur := m;
      ip := idx_of t m a
    end
  in
  let push_ret next_off =
    let ra = Int64.of_int (!cur.cm_base + next_off) in
    if is_x64 then begin
      t.regs.(sp) <- Int64.sub t.regs.(sp) 8L;
      Memory.store64 t.mem (Int64.to_int t.regs.(sp)) ra
    end
    else t.regs.(Target.lr) <- ra
  in
  (* Byte offset just past instruction [i] — needed for return addresses.
     Precomputed per module on first use. *)
  let next_off_of (m : code_mod) =
    let n = Array.length m.cm_insts in
    let a = Array.make n m.cm_size in
    Array.iteri (fun off idx -> if idx > 0 then a.(idx - 1) <- off) m.cm_off2idx;
    a
  in
  let next_off_cache : (int, int array) Hashtbl.t = Hashtbl.create 4 in
  let next_off m i =
    match Hashtbl.find_opt next_off_cache m.cm_base with
    | Some a -> a.(i)
    | None ->
        let a = next_off_of m in
        Hashtbl.add next_off_cache m.cm_base a;
        a.(i)
  in
  while !running do
    let m = !cur in
    let i = !ip in
    if i >= Array.length m.cm_insts then raise (Trap "fell off end of code");
    let inst = m.cm_insts.(i) in
    t.cycles <- t.cycles + cost inst;
    t.icount <- t.icount + 1;
    if t.fuel >= 0 && t.icount > t.fuel then raise (Trap "fuel exhausted");
    incr ip;
    (match inst with
    | Nop -> ()
    | Mov_rr (d, s) -> t.regs.(d) <- t.regs.(s)
    | Mov_ri (d, v) -> t.regs.(d) <- v
    | Movz (d, imm, sh) -> t.regs.(d) <- Int64.shift_left (Int64.of_int imm) (16 * sh)
    | Movk (d, imm, sh) ->
        let mask = Int64.shift_left 0xFFFFL (16 * sh) in
        t.regs.(d) <-
          Int64.logor
            (Int64.logand t.regs.(d) (Int64.lognot mask))
            (Int64.shift_left (Int64.of_int imm) (16 * sh))
    | Alu_rr (op, d, s) -> t.regs.(d) <- alu_eval t op t.regs.(d) t.regs.(s)
    | Alu_ri (op, d, v) -> t.regs.(d) <- alu_eval t op t.regs.(d) v
    | Alu_rrr (op, d, a, b) -> t.regs.(d) <- alu_eval t op t.regs.(a) t.regs.(b)
    | Alu_rri (op, d, a, v) -> t.regs.(d) <- alu_eval t op t.regs.(a) v
    | Cmp_rr (a, b) -> ignore (alu_eval t Sub t.regs.(a) t.regs.(b))
    | Cmp_ri (a, v) -> ignore (alu_eval t Sub t.regs.(a) v)
    | Ld { dst; base; off; size; sext } ->
        t.regs.(dst) <-
          Memory.load t.mem ~addr:(Int64.to_int t.regs.(base) + off) ~size ~sext
    | St { src; base; off; size } ->
        Memory.store t.mem ~addr:(Int64.to_int t.regs.(base) + off) ~size t.regs.(src)
    | Lea { dst; base; index; scale; off } ->
        let v = Int64.add t.regs.(base) (Int64.of_int off) in
        let v =
          if index >= 0 then
            Int64.add v (Int64.mul t.regs.(index) (Int64.of_int scale))
          else v
        in
        t.regs.(dst) <- v
    | Ext { dst; src; bits; signed } ->
        t.regs.(dst) <- ext_eval t.regs.(src) ~bits ~signed
    | Mul_wide { signed; src } ->
        let p =
          if signed then Qcomp_support.I128.smul64_wide t.regs.(0) t.regs.(src)
          else Qcomp_support.I128.umul64_wide t.regs.(0) t.regs.(src)
        in
        t.regs.(0) <- Qcomp_support.I128.to_int64 p;
        t.regs.(2) <-
          Qcomp_support.I128.to_int64 (Qcomp_support.I128.shift_right_logical p 64)
    | Mul_hi { signed; dst; a; b } ->
        let p =
          if signed then Qcomp_support.I128.smul64_wide t.regs.(a) t.regs.(b)
          else Qcomp_support.I128.umul64_wide t.regs.(a) t.regs.(b)
        in
        t.regs.(dst) <-
          Qcomp_support.I128.to_int64 (Qcomp_support.I128.shift_right_logical p 64)
    | Div { signed; src } ->
        let d = t.regs.(src) in
        if Int64.equal d 0L then raise (Trap "integer division by zero");
        let a = t.regs.(0) in
        if signed then begin
          if Int64.equal a Int64.min_int && Int64.equal d (-1L) then
            raise (Trap "integer division overflow");
          t.regs.(0) <- Int64.div a d;
          t.regs.(2) <- Int64.rem a d
        end
        else begin
          t.regs.(0) <- Int64.unsigned_div a d;
          t.regs.(2) <- Int64.unsigned_rem a d
        end
    | Div_rrr { signed; dst; a; b } ->
        (* AArch64 semantics: division by zero yields zero. *)
        let bv = t.regs.(b) in
        if Int64.equal bv 0L then t.regs.(dst) <- 0L
        else if signed then
          if Int64.equal t.regs.(a) Int64.min_int && Int64.equal bv (-1L) then
            t.regs.(dst) <- Int64.min_int
          else t.regs.(dst) <- Int64.div t.regs.(a) bv
        else t.regs.(dst) <- Int64.unsigned_div t.regs.(a) bv
    | Msub { dst; a; b; c } ->
        t.regs.(dst) <- Int64.sub t.regs.(c) (Int64.mul t.regs.(a) t.regs.(b))
    | Crc32_rr (d, s) ->
        t.regs.(d) <- Qcomp_support.Hashes.crc32c t.regs.(d) t.regs.(s)
    | Crc32_rrr (d, a, b) ->
        t.regs.(d) <- Qcomp_support.Hashes.crc32c t.regs.(a) t.regs.(b)
    | Setcc (c, d) -> t.regs.(d) <- (if cond_true t c then 1L else 0L)
    | Csel { cond; dst; a; b } ->
        t.regs.(dst) <- (if cond_true t cond then t.regs.(a) else t.regs.(b))
    | Jmp off -> ip := idx_of t m (m.cm_base + off)
    | Jcc (c, off) -> if cond_true t c then ip := idx_of t m (m.cm_base + off)
    | Jmp_ind r -> goto (Int64.to_int t.regs.(r))
    | Jmp_mem slot -> goto (Int64.to_int (Memory.load64 t.mem (Int64.to_int slot)))
    | Call_rel off ->
        push_ret (next_off m i);
        goto (m.cm_base + off)
    | Call_ind r ->
        push_ret (next_off m i);
        goto (Int64.to_int t.regs.(r))
    | Ret ->
        let ra =
          if is_x64 then begin
            let ra = Memory.load64 t.mem (Int64.to_int t.regs.(sp)) in
            t.regs.(sp) <- Int64.add t.regs.(sp) 8L;
            ra
          end
          else t.regs.(Target.lr)
        in
        goto (Int64.to_int ra)
    | Falu_rr (op, d, s) ->
        let a = f64 t.regs.(d) and b = f64 t.regs.(s) in
        let r = match op with Fadd -> a +. b | Fsub -> a -. b | Fmul -> a *. b | Fdiv -> a /. b in
        t.regs.(d) <- bits r
    | Falu_rrr (op, d, x, y) ->
        let a = f64 t.regs.(x) and b = f64 t.regs.(y) in
        let r = match op with Fadd -> a +. b | Fsub -> a -. b | Fmul -> a *. b | Fdiv -> a /. b in
        t.regs.(d) <- bits r
    | Fcmp_rr (x, y) ->
        let a = f64 t.regs.(x) and b = f64 t.regs.(y) in
        t.zf <- a = b;
        t.sf <- a < b;
        t.ovf <- false;
        t.cf <- a < b
    | Cvt_si2f (d, s) -> t.regs.(d) <- bits (Int64.to_float t.regs.(s))
    | Cvt_f2si (d, s) -> t.regs.(d) <- Int64.of_float (f64 t.regs.(s))
    | Brk code -> raise (Trap (Printf.sprintf "brk #%d" code)));
    ()
  done

and dispatch_runtime t addr =
  let idx = (addr - runtime_base) / 8 in
  (* snapshot the array: [add_runtime] replaces it wholesale, never mutates
     a published one, so a plain read is race-free *)
  let runtime = t.shared.runtime in
  if idx < 0 || idx >= Array.length runtime then
    raise (Trap (Printf.sprintf "call to bad runtime slot %d" idx));
  t.cycles <- t.cycles + runtime_dispatch_cost;
  runtime.(idx) t

(** Call generated code from the host (or from a runtime function):
    standard calling convention, returns the two return registers. *)
and call_generated t ~addr ~(args : int64 array) =
  let tgt = t.target in
  if Array.length args > Array.length tgt.Target.arg_regs then
    invalid_arg "call_generated: too many register arguments";
  Array.iteri (fun k v -> t.regs.(tgt.Target.arg_regs.(k)) <- v) args;
  if is_runtime_addr addr then dispatch_runtime t addr
  else begin
    if tgt.Target.arch = Target.X64 then begin
      t.regs.(tgt.Target.sp) <- Int64.sub t.regs.(tgt.Target.sp) 8L;
      Memory.store64 t.mem (Int64.to_int t.regs.(tgt.Target.sp)) (Int64.of_int sentinel)
    end
    else t.regs.(Target.lr) <- Int64.of_int sentinel;
    run_at t addr
  end;
  (t.regs.(tgt.Target.ret_regs.(0)), t.regs.(tgt.Target.ret_regs.(1)))

(** Top-level entry: sets up a fresh stack then calls [addr]. *)
let call t ~addr ~args =
  let sp0 = t.stack_top land lnot 15 in
  t.regs.(t.target.Target.sp) <- Int64.of_int sp0;
  call_generated t ~addr ~args

let arg_reg t k = t.target.Target.arg_regs.(k)
let reg t r = t.regs.(r)
let set_reg t r v = t.regs.(r) <- v

(** Decoded instructions of the module containing [addr] (debugging aid). *)
let decoded_at t addr =
  let m = find_mod t addr in
  (m.cm_base, m.cm_insts)
