(** Flat little-endian linear memory.

    Holds the database columns, runtime heap (tuple buffers, hash table
    arenas, GOTs) and the call stack of the virtual machine. The first page
    is never mapped so null-pointer dereferences trap. *)

exception Fault of string

let page = 0x1000

type t = {
  data : Bytes.t;
  size : int;
  mutable brk : int;  (** bump pointer for region allocation *)
  alloc_mu : Mutex.t;  (** serializes [alloc]/[free] across domains *)
  free_lists : (int * int, int list ref) Hashtbl.t;
      (** (align, size) -> reusable block addresses *)
  mutable live_data : int;  (** bytes allocated and not yet freed *)
  mutable peak_data : int;  (** high-water mark of [live_data] *)
  mutable freed_data : int;  (** cumulative bytes returned via [free] *)
  mutable reserved : (int * int) list;
      (** (addr, size) spans pinned by {!claim}; the bump allocator skips
          them, and they are never recycled *)
}

let create size =
  if size < 16 * page then invalid_arg "Memory.create: too small";
  {
    data = Bytes.make size '\000';
    size;
    brk = page;
    alloc_mu = Mutex.create ();
    free_lists = Hashtbl.create 64;
    live_data = 0;
    peak_data = 0;
    freed_data = 0;
    reserved = [];
  }

let size t = t.size

let check t addr n =
  if addr < page || addr + n > t.size then
    raise (Fault (Printf.sprintf "access of %d bytes at 0x%x" n addr))

(* ---------------- allocation scopes ---------------- *)

(** An allocation scope collects every [(addr, size, align)] block a piece
    of work allocates, so the whole set can be recycled at once when the
    work retires ({!free_scope}). The active scope is domain-local: a
    worker domain executing a query quantum records its runtime
    allocations (tuple buffers, hash-table arenas, string bodies) without
    threading a handle through the generated code, while compilations on
    other domains are unaffected. *)
type scope = (int * int * int) list ref

let scope_key : scope option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let new_scope () : scope = ref []

(** Run [f] with [sc] as the calling domain's active scope. *)
let with_scope (sc : scope) f =
  let cell = Domain.DLS.get scope_key in
  let prev = !cell in
  cell := Some sc;
  Fun.protect ~finally:(fun () -> cell := prev) f

(** Run [f] with no active scope — for allocations that must outlive the
    enclosing scope (per-context VM stacks, module-owned tables). *)
let unscoped f =
  let cell = Domain.DLS.get scope_key in
  let prev = !cell in
  cell := None;
  Fun.protect ~finally:(fun () -> cell := prev) f

(** Carve a region off the allocator: an exact-fit recycled block when one
    is on the [(align, size)] free list, a fresh bump allocation
    otherwise. Freed blocks are zero-filled before they are listed, so a
    recycled block is indistinguishable from fresh memory — results never
    depend on recycling history. Safe to call from several domains at
    once; the returned regions are disjoint, which is the discipline that
    makes unguarded concurrent load/store sound — every allocation is
    owned by exactly one query/compilation at a time. *)
let alloc t ?(align = 16) n =
  let addr =
    Mutex.protect t.alloc_mu (fun () ->
        let a =
          match Hashtbl.find_opt t.free_lists (align, n) with
          | Some ({ contents = a :: rest } as l) ->
              l := rest;
              a
          | _ ->
              (* bump, stepping over any claimed spans *)
              let rec place cand =
                let a = (cand + align - 1) land lnot (align - 1) in
                match
                  List.find_opt
                    (fun (r0, rn) -> a < r0 + rn && r0 < a + n)
                    t.reserved
                with
                | Some (r0, rn) -> place (r0 + rn)
                | None -> a
              in
              let a = place t.brk in
              if a + n > t.size then raise (Fault "out of memory");
              t.brk <- a + n;
              a
        in
        t.live_data <- t.live_data + n;
        if t.live_data > t.peak_data then t.peak_data <- t.live_data;
        a)
  in
  (match !(Domain.DLS.get scope_key) with
  | Some sc -> sc := (addr, n, align) :: !sc
  | None -> ());
  addr

(** Return a block from {!alloc} to the [(align, size)] free list. The
    block is zero-filled here so the next {!alloc} of the same shape sees
    the fresh-memory invariant. The caller must own the block and never
    touch it again — there is no double-free detection. If the calling
    domain's active scope recorded the block, the record is dropped, so a
    runtime structure may retire an arena early (hash-table growth) while
    the scope still reclaims whatever is left at query teardown. *)
let free t ~addr ~size ~align =
  if size > 0 then begin
    check t addr size;
    Mutex.protect t.alloc_mu (fun () ->
        Bytes.fill t.data addr size '\000';
        (match Hashtbl.find_opt t.free_lists (align, size) with
        | Some l -> l := addr :: !l
        | None -> Hashtbl.replace t.free_lists (align, size) (ref [ addr ]));
        t.live_data <- t.live_data - size;
        t.freed_data <- t.freed_data + size);
    match !(Domain.DLS.get scope_key) with
    | Some sc -> sc := List.filter (fun (a, _, _) -> a <> addr) !sc
    | None -> ()
  end

(** Free every block recorded in [sc] and empty it. *)
let free_scope t (sc : scope) =
  List.iter (fun (addr, size, align) -> free t ~addr ~size ~align) !sc;
  sc := []

(** Pin a specific address range for data whose absolute address is baked
    into re-linked code (snapshot string constants). The range must sit at
    or above the current break — i.e. in space no live allocation can
    already own — so a snapshot produced by a longer-lived process can
    always be re-materialized into a fresh database image. Claimed spans
    are skipped by the bump allocator and never enter the free lists; the
    same span cannot be claimed twice. All violations raise
    [Invalid_argument] (never a silent overlap). *)
let claim t ~addr ~size ~align =
  if size <= 0 then invalid_arg "Memory.claim: size must be positive";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Memory.claim: alignment must be a power of two";
  if addr land (align - 1) <> 0 then
    invalid_arg
      (Printf.sprintf "Memory.claim: 0x%x is not %d-byte aligned" addr align);
  if addr < page || addr + size > t.size then
    invalid_arg (Printf.sprintf "Memory.claim: 0x%x+%d out of range" addr size);
  Mutex.protect t.alloc_mu (fun () ->
      if addr < t.brk then
        invalid_arg
          (Printf.sprintf
             "Memory.claim: 0x%x is below the break 0x%x (already in use)" addr
             t.brk);
      if
        List.exists (fun (r0, rn) -> addr < r0 + rn && r0 < addr + size)
          t.reserved
      then
        invalid_arg
          (Printf.sprintf "Memory.claim: 0x%x+%d overlaps a claimed span" addr
             size);
      t.reserved <- (addr, size) :: t.reserved;
      t.live_data <- t.live_data + size;
      if t.live_data > t.peak_data then t.peak_data <- t.live_data)

let live_data_bytes t = Mutex.protect t.alloc_mu (fun () -> t.live_data)
let peak_data_bytes t = Mutex.protect t.alloc_mu (fun () -> t.peak_data)
let freed_data_bytes t = Mutex.protect t.alloc_mu (fun () -> t.freed_data)

let load64 t addr =
  check t addr 8;
  Bytes.get_int64_le t.data addr

let store64 t addr v =
  check t addr 8;
  Bytes.set_int64_le t.data addr v

let load t ~addr ~size ~sext =
  check t addr size;
  match (size, sext) with
  | 8, _ -> Bytes.get_int64_le t.data addr
  | 4, false ->
      Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.data addr)) 0xFFFFFFFFL
  | 4, true -> Int64.of_int32 (Bytes.get_int32_le t.data addr)
  | 2, false -> Int64.of_int (Bytes.get_uint16_le t.data addr)
  | 2, true -> Int64.of_int (Bytes.get_int16_le t.data addr)
  | 1, false -> Int64.of_int (Bytes.get_uint8 t.data addr)
  | 1, true -> Int64.of_int (Bytes.get_int8 t.data addr)
  | _ -> raise (Fault "bad access size")

let store t ~addr ~size v =
  check t addr size;
  match size with
  | 8 -> Bytes.set_int64_le t.data addr v
  | 4 -> Bytes.set_int32_le t.data addr (Int64.to_int32 v)
  | 2 -> Bytes.set_uint16_le t.data addr (Int64.to_int v land 0xFFFF)
  | 1 -> Bytes.set_uint8 t.data addr (Int64.to_int v land 0xFF)
  | _ -> raise (Fault "bad access size")

(** Raw byte access for the runtime (string contents etc.). *)
let load_bytes t addr n =
  check t addr (max n 1);
  Bytes.sub_string t.data addr n

let store_bytes t addr s =
  let n = String.length s in
  if n > 0 then begin
    check t addr n;
    Bytes.blit_string s 0 t.data addr n
  end

let blit t ~src ~dst ~len =
  if len > 0 then begin
    check t src len;
    check t dst len;
    Bytes.blit t.data src t.data dst len
  end

let fill t ~addr ~len c =
  if len > 0 then begin
    check t addr len;
    Bytes.fill t.data addr len c
  end
