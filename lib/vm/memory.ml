(** Flat little-endian linear memory.

    Holds the database columns, runtime heap (tuple buffers, hash table
    arenas, GOTs) and the call stack of the virtual machine. The first page
    is never mapped so null-pointer dereferences trap. *)

exception Fault of string

let page = 0x1000

type t = {
  data : Bytes.t;
  size : int;
  mutable brk : int;  (** bump pointer for region allocation *)
  alloc_mu : Mutex.t;  (** serializes [alloc] across domains *)
}

let create size =
  if size < 16 * page then invalid_arg "Memory.create: too small";
  { data = Bytes.make size '\000'; size; brk = page; alloc_mu = Mutex.create () }

let size t = t.size

let check t addr n =
  if addr < page || addr + n > t.size then
    raise (Fault (Printf.sprintf "access of %d bytes at 0x%x" n addr))

(** Carve a fresh region off the bump allocator. Safe to call from several
    domains at once; the returned regions are disjoint, which is the
    discipline that makes unguarded concurrent load/store sound — every
    allocation is owned by exactly one query/compilation at a time. *)
let alloc t ?(align = 16) n =
  Mutex.protect t.alloc_mu (fun () ->
      let a = (t.brk + align - 1) land lnot (align - 1) in
      if a + n > t.size then raise (Fault "out of memory");
      t.brk <- a + n;
      a)

let load64 t addr =
  check t addr 8;
  Bytes.get_int64_le t.data addr

let store64 t addr v =
  check t addr 8;
  Bytes.set_int64_le t.data addr v

let load t ~addr ~size ~sext =
  check t addr size;
  match (size, sext) with
  | 8, _ -> Bytes.get_int64_le t.data addr
  | 4, false ->
      Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.data addr)) 0xFFFFFFFFL
  | 4, true -> Int64.of_int32 (Bytes.get_int32_le t.data addr)
  | 2, false -> Int64.of_int (Bytes.get_uint16_le t.data addr)
  | 2, true -> Int64.of_int (Bytes.get_int16_le t.data addr)
  | 1, false -> Int64.of_int (Bytes.get_uint8 t.data addr)
  | 1, true -> Int64.of_int (Bytes.get_int8 t.data addr)
  | _ -> raise (Fault "bad access size")

let store t ~addr ~size v =
  check t addr size;
  match size with
  | 8 -> Bytes.set_int64_le t.data addr v
  | 4 -> Bytes.set_int32_le t.data addr (Int64.to_int32 v)
  | 2 -> Bytes.set_uint16_le t.data addr (Int64.to_int v land 0xFFFF)
  | 1 -> Bytes.set_uint8 t.data addr (Int64.to_int v land 0xFF)
  | _ -> raise (Fault "bad access size")

(** Raw byte access for the runtime (string contents etc.). *)
let load_bytes t addr n =
  check t addr (max n 1);
  Bytes.sub_string t.data addr n

let store_bytes t addr s =
  let n = String.length s in
  if n > 0 then begin
    check t addr n;
    Bytes.blit_string s 0 t.data addr n
  end

let blit t ~src ~dst ~len =
  if len > 0 then begin
    check t src len;
    check t dst len;
    Bytes.blit t.data src t.data dst len
  end

let fill t ~addr ~len c =
  if len > 0 then begin
    check t addr len;
    Bytes.fill t.data addr len c
  end
