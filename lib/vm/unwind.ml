(** DWARF-CFI-style unwind information.

    Umbra registers unwinding data for every compiled function because
    runtime functions may throw C++ exceptions through generated frames. We
    model the *cost and shape* of this: back-ends produce a frame
    description table (FDE) per function — either synchronous-only (valid
    at call sites, as DirectEmit writes) or full (valid at every
    instruction) — and register it here. Tests query the table to check
    that a CFA rule exists for given code offsets. *)

type cfa_rule = {
  cfa_offset : int;  (** CFA = sp + offset at this point *)
  saved_regs : (int * int) list;  (** (reg, offset from CFA) *)
}

type fde = {
  fde_start : int;  (** absolute code address *)
  fde_size : int;
  fde_sync_only : bool;
  (* Sorted list of (code offset within function, rule). *)
  fde_rows : (int * cfa_rule) array;
}

type t = {
  mu : Mutex.t;  (** back-ends on different domains register concurrently *)
  mutable fdes : fde list;
  mutable bytes_written : int;
}

let create () = { mu = Mutex.create (); fdes = []; bytes_written = 0 }

(** Size in bytes of the encoded FDE: models the amount of unwind data a
    back-end writes (DirectEmit's synchronous-only tables are smaller). *)
let encoded_size rows =
  16 + Array.fold_left (fun acc (_, r) -> acc + 4 + (2 * List.length r.saved_regs)) 0 rows

let register t ~start ~size ~sync_only rows =
  let rows = Array.of_list (List.sort (fun (a, _) (b, _) -> compare a b) rows) in
  let fde = { fde_start = start; fde_size = size; fde_sync_only = sync_only; fde_rows = rows } in
  Mutex.protect t.mu (fun () ->
      t.fdes <- fde :: t.fdes;
      t.bytes_written <- t.bytes_written + encoded_size rows)

(** Drop every FDE whose function starts inside [\[base, base+size)] —
    called when the code region owning those functions is released, so the
    unwind table cannot answer for recycled addresses with stale frame
    descriptions. [bytes_written] stays cumulative: it models how much
    unwind data was ever emitted, not what is currently registered. *)
let deregister_range t ~base ~size =
  Mutex.protect t.mu (fun () ->
      t.fdes <-
        List.filter
          (fun f -> not (f.fde_start >= base && f.fde_start < base + size))
          t.fdes)

let find_fde t addr =
  Mutex.protect t.mu (fun () ->
      List.find_opt
        (fun f -> addr >= f.fde_start && addr < f.fde_start + f.fde_size)
        t.fdes)

(** The CFA rule in effect at [addr], if registered. *)
let rule_at t addr =
  match find_fde t addr with
  | None -> None
  | Some f ->
      let off = addr - f.fde_start in
      let rec last best = function
        | [] -> best
        | (o, r) :: rest -> if o <= off then last (Some r) rest else best
      in
      last None (Array.to_list f.fde_rows)

let num_fdes t = Mutex.protect t.mu (fun () -> List.length t.fdes)
let bytes_written t = Mutex.protect t.mu (fun () -> t.bytes_written)
