(** Zipf-literal workload: TPC-H shapes repeated with varying predicate
    literals.

    Real serving traffic is a handful of plan {e shapes} instantiated with
    many different literals — the exact pattern parameterized-plan
    specialization targets. This generator draws from a small set of
    templates over the {!Tpch} tables; each draw picks a template
    uniformly and a literal by a Zipf law (heavily skewed towards the
    first few values, with a long tail), so a shape-keyed cache sees a few
    exact repeats and a stream of fresh literals per shape, while a
    per-query-keyed cache sees mostly misses.

    Every (template, literal) variant has a stable distinct name
    ([zrev_017]), so [serve --validate] can look up each query's expected
    result by name. All varied literals are {!Qcomp_plan.Paramize}
    eligible (Int32/Date/Decimal ints and SSO-short strings), so with
    paramization on, the whole stream compiles [shape_count] modules. *)

open Qcomp_support
open Qcomp_plan
open Spec
open Expr
open Algebra

let li = Qcomp_storage.Schema.col_index Tpch.lineitem
let od = Qcomp_storage.Schema.col_index Tpch.orders
let cu = Qcomp_storage.Schema.col_index Tpch.customer
let pa = Qcomp_storage.Schema.col_index Tpch.part

let scan t = Scan { table = t; filter = None }
let scanf t p = Scan { table = t; filter = Some p }

(* disc_price = extendedprice * (1 - discount), as in Q1/Q6 *)
let disc_price ep disc = ep *% (dec ~scale:2 100 -% disc)

(* Q6-like revenue scan: the date cutoff varies per query instance *)
let zrev k =
  Group_by
    {
      input =
        scanf "lineitem"
          (col (li "l_shipdate") <=% date (600 + (k * 53))
          &&% (col (li "l_discount") <=% dec ~scale:2 8));
      keys = [];
      aggs =
        [
          Sum (disc_price (col (li "l_extendedprice")) (col (li "l_discount")));
          Count_star;
        ];
    }

(* Q2-like part probe: the size equality literal varies *)
let zsize k =
  Order_by
    {
      input =
        Group_by
          {
            input = scanf "part" (col (pa "p_size") =% int32 (1 + (k mod 50)));
            keys = [ col (pa "p_brand") ];
            aggs = [ Min (col (pa "p_retailprice")); Count_star ];
          };
      keys = [ (col 0, Asc) ];
      limit = None;
    }

(* Q3-like join: the order-date cutoff varies *)
let zord k =
  Group_by
    {
      input =
        Hash_join
          {
            probe = scanf "orders" (col (od "o_orderdate") <% date (500 + (k * 60)));
            build = scan "customer";
            probe_keys = [ col (od "o_custkey") ];
            build_keys = [ col (cu "c_custkey") ];
          };
      (* output: orders(0-6) ++ customer(7-11) *)
      keys = [ col (7 + cu "c_nationkey") ];
      aggs = [ Sum (col (od "o_totalprice")); Count_star ];
    }

(* string-literal shape: the market segment (SSO-short) varies *)
let zseg k =
  Group_by
    {
      input =
        scanf "customer"
          (col (cu "c_mktsegment")
          =% str Tpch.segments.(k mod Array.length Tpch.segments));
      keys = [ col (cu "c_nationkey") ];
      aggs = [ Sum (col (cu "c_acctbal")); Count_star ];
    }

let templates = [| ("zrev", zrev); ("zsize", zsize); ("zord", zord); ("zseg", zseg) |]
let shape_count = Array.length templates

(** Distinct literal values drawn per template (the [zseg] template has
    only [Array.length Tpch.segments] distinct plans — several indices
    alias the same segment, which only makes its exact-hit rate higher). *)
let literals_per_shape = 32

(* Zipf(s = 1.1) over ranks 1..literals_per_shape: rank r has probability
   proportional to 1 / r^s. Skewed enough that a few literals dominate,
   long-tailed enough that fresh literals keep arriving deep into a run. *)
let zipf_cdf =
  lazy
    (let s = 1.1 in
     let w = Array.init literals_per_shape (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
     let total = Array.fold_left ( +. ) 0.0 w in
     let acc = ref 0.0 in
     Array.map
       (fun x ->
         acc := !acc +. (x /. total);
         !acc)
       w)

let zipf_draw rng =
  let u = Rng.float rng in
  let cdf = Lazy.force zipf_cdf in
  let rec go i = if i >= Array.length cdf - 1 || u < cdf.(i) then i else go (i + 1) in
  go 0

let variant_name tname k = Printf.sprintf "%s_%03d" tname k

let variant i k =
  let tname, mk = templates.(i) in
  { q_name = variant_name tname k; q_plan = mk k }

(** [stream ~seed ~n] is [n] seeded draws in arrival order: template
    uniform, literal Zipf. Repeated draws of the same (template, literal)
    produce the identical named query. *)
let stream ~seed ~n =
  let rng = Rng.create seed in
  List.init n (fun _ ->
      let i = Rng.int rng shape_count in
      variant i (zipf_draw rng))

(** Every distinct query a {!stream} can emit (any seed), one per
    (template, literal) pair — the name->plan table [serve --validate]
    resolves expected results against. *)
let all_variants =
  lazy
    (List.concat_map
       (fun i -> List.init literals_per_shape (fun k -> variant i k))
       (List.init shape_count (fun i -> i)))

let queries : query list = Lazy.force all_variants
