(** TPC-H-like workload: the 8-table schema with deterministic synthetic
    data and hand-written approximations of queries Q1–Q22.

    The approximations keep each query's skeleton — which tables join, the
    selectivity structure, the aggregation/ordering shape — while mapping
    subqueries and semi-joins onto the engine's operator set (inner hash
    joins, hash aggregation, sort; documented per query). Scale factor
    [sf] maps to [sf * 2000] lineitem rows, with the other tables in the
    original proportions. *)

open Qcomp_storage
open Qcomp_plan
open Spec

(* dates are days since 1992-01-01; the TPC-H range spans ~2500 days *)
let date_lo = 0
let date_hi = 2500

let lineitem =
  Schema.make "lineitem"
    [
      ("l_orderkey", Schema.Int64);
      ("l_partkey", Schema.Int64);
      ("l_suppkey", Schema.Int64);
      ("l_linenumber", Schema.Int32);
      ("l_quantity", Schema.Decimal 2);
      ("l_extendedprice", Schema.Decimal 2);
      ("l_discount", Schema.Decimal 2);
      ("l_tax", Schema.Decimal 2);
      ("l_returnflag", Schema.Str);
      ("l_linestatus", Schema.Str);
      ("l_shipdate", Schema.Date);
      ("l_commitdate", Schema.Date);
      ("l_receiptdate", Schema.Date);
      ("l_shipmode", Schema.Str);
    ]

let orders =
  Schema.make "orders"
    [
      ("o_orderkey", Schema.Int64);
      ("o_custkey", Schema.Int64);
      ("o_orderstatus", Schema.Str);
      ("o_totalprice", Schema.Decimal 2);
      ("o_orderdate", Schema.Date);
      ("o_orderpriority", Schema.Str);
      ("o_shippriority", Schema.Int32);
    ]

let customer =
  Schema.make "customer"
    [
      ("c_custkey", Schema.Int64);
      ("c_name", Schema.Str);
      ("c_nationkey", Schema.Int32);
      ("c_acctbal", Schema.Decimal 2);
      ("c_mktsegment", Schema.Str);
    ]

let part =
  Schema.make "part"
    [
      ("p_partkey", Schema.Int64);
      ("p_name", Schema.Str);
      ("p_brand", Schema.Str);
      ("p_type", Schema.Str);
      ("p_size", Schema.Int32);
      ("p_retailprice", Schema.Decimal 2);
    ]

let supplier =
  Schema.make "supplier"
    [
      ("s_suppkey", Schema.Int64);
      ("s_name", Schema.Str);
      ("s_nationkey", Schema.Int32);
      ("s_acctbal", Schema.Decimal 2);
    ]

let partsupp =
  Schema.make "partsupp"
    [
      ("ps_partkey", Schema.Int64);
      ("ps_suppkey", Schema.Int64);
      ("ps_availqty", Schema.Int32);
      ("ps_supplycost", Schema.Decimal 2);
    ]

let nation =
  Schema.make "nation"
    [ ("n_nationkey", Schema.Int32); ("n_name", Schema.Str); ("n_regionkey", Schema.Int32) ]

let region = Schema.make "region" [ ("r_regionkey", Schema.Int32); ("r_name", Schema.Str) ]

let flags = [| "A"; "N"; "R" |]
let statuses = [| "F"; "O" |]
let modes = [| "AIR"; "SHIP"; "TRUCK"; "MAIL"; "RAIL"; "REG AIR"; "FOB" |]
let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "HOUSEHOLD"; "MACHINERY" |]
let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]
let brands = [| "Brand#11"; "Brand#22"; "Brand#33"; "Brand#44"; "Brand#55" |]
let types =
  [| "STANDARD BRASS"; "SMALL STEEL"; "MEDIUM COPPER"; "LARGE TIN"; "ECONOMY NICKEL";
     "PROMO BRASS"; "STANDARD STEEL"; "PROMO POLISHED TIN" |]
let nations =
  [| "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA"; "FRANCE";
     "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN"; "JORDAN"; "KENYA";
     "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA"; "ROMANIA"; "SAUDI ARABIA";
     "VIETNAM"; "RUSSIA"; "UNITED KINGDOM"; "UNITED STATES" |]
let regions = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

(* row counts per scale factor (ratios from the benchmark, downscaled) *)
let li_rows sf = sf * 2000
let ord_rows sf = sf * 500
let cust_rows sf = sf * 50
let part_rows sf = sf * 70
let supp_rows sf = max 10 (sf * 4)
let ps_rows sf = sf * 280

let tables sf : table_spec list =
  [
    {
      schema = lineitem;
      rows_at = li_rows;
      seed = 101L;
      gens =
        [|
          Datagen.Fk (ord_rows sf);
          Datagen.Fk (part_rows sf);
          Datagen.Fk (supp_rows sf);
          Datagen.Uniform (1, 7);
          Datagen.DecimalRange (100, 5000);
          Datagen.DecimalRange (100, 1000000);
          Datagen.DecimalRange (0, 10);
          Datagen.DecimalRange (0, 8);
          Datagen.Words (flags, 1);
          Datagen.Words (statuses, 1);
          Datagen.DateRange (date_lo, date_hi);
          Datagen.DateRange (date_lo, date_hi);
          Datagen.DateRange (date_lo, date_hi);
          Datagen.Words (modes, 1);
        |];
    };
    {
      schema = orders;
      rows_at = ord_rows;
      seed = 102L;
      gens =
        [|
          Datagen.Serial 0;
          Datagen.Fk (cust_rows sf);
          Datagen.Words (statuses, 1);
          Datagen.DecimalRange (1000, 50000000);
          Datagen.DateRange (date_lo, date_hi);
          Datagen.Words (priorities, 1);
          Datagen.Uniform (0, 1);
        |];
    };
    {
      schema = customer;
      rows_at = cust_rows;
      seed = 103L;
      gens =
        [|
          Datagen.Serial 0;
          Datagen.Pattern "Customer#@@@@@";
          Datagen.Uniform (0, 24);
          Datagen.DecimalRange (-99999, 999999);
          Datagen.Words (segments, 1);
        |];
    };
    {
      schema = part;
      rows_at = part_rows;
      seed = 104L;
      gens =
        [|
          Datagen.Serial 0;
          Datagen.Words (Datagen.word_pool, 3);
          Datagen.Words (brands, 1);
          Datagen.Words (types, 1);
          Datagen.Uniform (1, 50);
          Datagen.DecimalRange (90000, 200000);
        |];
    };
    {
      schema = supplier;
      rows_at = supp_rows;
      seed = 105L;
      gens =
        [|
          Datagen.Serial 0;
          Datagen.Pattern "Supplier#@@@@";
          Datagen.Uniform (0, 24);
          Datagen.DecimalRange (-99999, 999999);
        |];
    };
    {
      schema = partsupp;
      rows_at = ps_rows;
      seed = 106L;
      gens =
        [|
          Datagen.Fk (part_rows sf);
          Datagen.Fk (supp_rows sf);
          Datagen.Uniform (1, 9999);
          Datagen.DecimalRange (100, 100000);
        |];
    };
    {
      schema = nation;
      rows_at = (fun _ -> 25);
      seed = 107L;
      gens = [| Datagen.Serial 0; Datagen.Words (nations, 1); Datagen.Uniform (0, 4) |];
    };
    {
      schema = region;
      rows_at = (fun _ -> 5);
      seed = 108L;
      gens = [| Datagen.Serial 0; Datagen.Words (regions, 1) |];
    };
  ]

(* ------------------------------------------------------------------ *)
(* column indices *)

let li = Schema.col_index lineitem
let od = Schema.col_index orders
let cu = Schema.col_index customer
let pa = Schema.col_index part
let su = Schema.col_index supplier
let ps = Schema.col_index partsupp
let na = Schema.col_index nation

open Expr
open Algebra

let scan t = Scan { table = t; filter = None }
let scanf t p = Scan { table = t; filter = Some p }

(* disc_price = extendedprice * (1 - discount); charge = disc_price*(1+tax) *)
let one = dec ~scale:2 100
let disc_price ep disc = ep *% (one -% disc)

(* join output position helper: probe columns come first *)
let pcol i = col i

let queries : query list =
  [
    (* Q1: pricing summary report — full-table aggregation *)
    {
      q_name = "q01";
      q_plan =
        Order_by
          {
            input =
              Group_by
                {
                  input = scanf "lineitem" (col (li "l_shipdate") <=% date (date_hi - 90));
                  keys = [ col (li "l_returnflag"); col (li "l_linestatus") ];
                  aggs =
                    [
                      Sum (col (li "l_quantity"));
                      Sum (col (li "l_extendedprice"));
                      Sum (disc_price (col (li "l_extendedprice")) (col (li "l_discount")));
                      Sum
                        (disc_price (col (li "l_extendedprice")) (col (li "l_discount"))
                        *% (one +% col (li "l_tax")));
                      Avg (col (li "l_quantity"));
                      Avg (col (li "l_extendedprice"));
                      Avg (col (li "l_discount"));
                      Count_star;
                    ];
                };
            keys = [ (col 0, Asc); (col 1, Asc) ];
            limit = None;
          };
    };
    (* Q2: minimum-cost supplier (flattened: partsupp⋈part⋈supplier⋈nation,
       min aggregation replaces the correlated subquery) *)
    {
      q_name = "q02";
      q_plan =
        (let join1 =
           Hash_join
             {
               probe = scanf "partsupp" (bool_ true);
               build = scanf "part" (col (pa "p_size") =% int32 15);
               probe_keys = [ col (ps "ps_partkey") ];
               build_keys = [ col (pa "p_partkey") ];
             }
         in
         (* output: partsupp(0-3) ++ part(4-9) *)
         let join2 =
           Hash_join
             {
               probe = join1;
               build = scan "supplier";
               probe_keys = [ col (ps "ps_suppkey") ];
               build_keys = [ col (su "s_suppkey") ];
             }
         in
         (* ++ supplier(10-13) *)
         Order_by
           {
             input =
               Group_by
                 {
                   input = join2;
                   keys = [ col (4 + pa "p_brand"); col (10 + su "s_nationkey") ];
                   aggs = [ Min (col (ps "ps_supplycost")); Count_star ];
                 };
             keys = [ (col 2, Asc); (col 0, Asc) ];
             limit = Some 100;
           });
    };
    (* Q3: shipping priority *)
    {
      q_name = "q03";
      q_plan =
        (let cust_f = scanf "customer" (Like (col (cu "c_mktsegment"), "BUILDING")) in
         let ord_f = scanf "orders" (col (od "o_orderdate") <% date 1200) in
         let j1 =
           Hash_join
             {
               probe = ord_f;
               build = cust_f;
               probe_keys = [ col (od "o_custkey") ];
               build_keys = [ col (cu "c_custkey") ];
             }
         in
         (* orders(0-6) ++ customer(7-11) *)
         let j2 =
           Hash_join
             {
               probe = scanf "lineitem" (col (li "l_shipdate") >% date 1200);
               build = j1;
               probe_keys = [ col (li "l_orderkey") ];
               build_keys = [ pcol (od "o_orderkey") ];
             }
         in
         (* lineitem(0-13) ++ orders(14-20) ++ customer(21-25) *)
         Order_by
           {
             input =
               Group_by
                 {
                   input = j2;
                   keys = [ col (li "l_orderkey"); col (14 + od "o_orderdate") ];
                   aggs =
                     [ Sum (disc_price (col (li "l_extendedprice")) (col (li "l_discount"))) ];
                 };
             keys = [ (col 2, Desc); (col 1, Asc) ];
             limit = Some 10;
           });
    };
    (* Q4: order priority checking (semi-join approximated by join+group) *)
    {
      q_name = "q04";
      q_plan =
        (let ord_f =
           scanf "orders"
             (col (od "o_orderdate") >=% date 800 &&% (col (od "o_orderdate") <% date 890))
         in
         let j =
           Hash_join
             {
               probe = scanf "lineitem" (col (li "l_commitdate") <% col (li "l_receiptdate"));
               build = ord_f;
               probe_keys = [ col (li "l_orderkey") ];
               build_keys = [ col (od "o_orderkey") ];
             }
         in
         Order_by
           {
             input =
               Group_by
                 { input = j; keys = [ col (14 + od "o_orderpriority") ]; aggs = [ Count_star ] };
             keys = [ (col 0, Asc) ];
             limit = None;
           });
    };
    (* Q5: local supplier volume — 5-way join *)
    {
      q_name = "q05";
      q_plan =
        (let j1 =
           Hash_join
             {
               probe = scan "nation";
               build = scanf "region" (Like (col 1, "ASIA"));
               probe_keys = [ col (na "n_regionkey") ];
               build_keys = [ col 0 ];
             }
         in
         (* nation(0-2) ++ region(3-4) *)
         let j2 =
           Hash_join
             {
               probe = scan "supplier";
               build = j1;
               probe_keys = [ col (su "s_nationkey") ];
               build_keys = [ col (na "n_nationkey") ];
             }
         in
         (* supplier(0-3) ++ nation(4-6) ++ region(7-8) *)
         let j3 =
           Hash_join
             {
               probe =
                 scanf "lineitem"
                   (col (li "l_shipdate") >=% date 400 &&% (col (li "l_shipdate") <% date 765));
               build = j2;
               probe_keys = [ col (li "l_suppkey") ];
               build_keys = [ col (su "s_suppkey") ];
             }
         in
         (* lineitem(0-13) ++ supplier(14-17) ++ nation(18-20) ++ region(21-22) *)
         Order_by
           {
             input =
               Group_by
                 {
                   input = j3;
                   keys = [ col (18 + na "n_name") ];
                   aggs =
                     [ Sum (disc_price (col (li "l_extendedprice")) (col (li "l_discount"))) ];
                 };
             keys = [ (col 1, Desc) ];
             limit = None;
           });
    };
    (* Q6: forecasting revenue change — pure scan/filter/aggregate *)
    {
      q_name = "q06";
      q_plan =
        Group_by
          {
            input =
              scanf "lineitem"
                (col (li "l_shipdate") >=% date 365
                &&% (col (li "l_shipdate") <% date 730)
                &&% Between (col (li "l_discount"), dec ~scale:2 5, dec ~scale:2 7)
                &&% (col (li "l_quantity") <% dec ~scale:2 2400));
            keys = [ int32 1 ];
            aggs = [ Sum (col (li "l_extendedprice") *% col (li "l_discount")); Count_star ];
          };
    };
    (* Q7: volume shipping between two nations *)
    {
      q_name = "q07";
      q_plan =
        (let j1 =
           Hash_join
             {
               probe = scan "supplier";
               build =
                 scanf "nation"
                   (Like (col 1, "FRANCE") ||% Like (col 1, "GERMANY"));
               probe_keys = [ col (su "s_nationkey") ];
               build_keys = [ col (na "n_nationkey") ];
             }
         in
         let j2 =
           Hash_join
             {
               probe = scanf "lineitem" (col (li "l_shipdate") >=% date 1000);
               build = j1;
               probe_keys = [ col (li "l_suppkey") ];
               build_keys = [ col (su "s_suppkey") ];
             }
         in
         (* lineitem ++ supplier(14-17) ++ nation(18-20) *)
         Order_by
           {
             input =
               Group_by
                 {
                   input = j2;
                   keys = [ col (18 + na "n_name") ];
                   aggs =
                     [
                       Sum (disc_price (col (li "l_extendedprice")) (col (li "l_discount")));
                       Count_star;
                     ];
                 };
             keys = [ (col 0, Asc) ];
             limit = None;
           });
    };
    (* Q8: national market share (simplified join tree) *)
    {
      q_name = "q08";
      q_plan =
        (let j1 =
           Hash_join
             {
               probe = scanf "part" (Like (col (pa "p_type"), "%STEEL%"));
               build = scan "supplier";
               probe_keys = [ col (pa "p_partkey") ];
               build_keys = [ col (su "s_suppkey") ];
             }
         in
         let j2 =
           Hash_join
             {
               probe = scan "lineitem";
               build = j1;
               probe_keys = [ col (li "l_partkey") ];
               build_keys = [ pcol (pa "p_partkey") ];
             }
         in
         (* lineitem ++ part(14-19) ++ supplier(20-23) *)
         Group_by
           {
             input = j2;
             keys = [ col (20 + su "s_nationkey") ];
             aggs =
               [
                 Sum (disc_price (col (li "l_extendedprice")) (col (li "l_discount")));
                 Avg (col (li "l_discount"));
               ];
           });
    };
    (* Q9: product type profit measure *)
    {
      q_name = "q09";
      q_plan =
        (let j1 =
           Hash_join
             {
               probe = scan "partsupp";
               build = scanf "part" (Like (col (pa "p_name"), "%a%"));
               probe_keys = [ col (ps "ps_partkey") ];
               build_keys = [ col (pa "p_partkey") ];
             }
         in
         (* partsupp(0-3) ++ part(4-9) *)
         let j2 =
           Hash_join
             {
               probe = scan "lineitem";
               build = j1;
               probe_keys = [ col (li "l_partkey"); col (li "l_suppkey") ];
               build_keys = [ col (ps "ps_partkey"); col (ps "ps_suppkey") ];
             }
         in
         (* lineitem(0-13) ++ partsupp(14-17) ++ part(18-23) *)
         Order_by
           {
             input =
               Group_by
                 {
                   input = j2;
                   keys = [ col (18 + pa "p_brand") ];
                   aggs =
                     [
                       Sum
                         (disc_price (col (li "l_extendedprice")) (col (li "l_discount"))
                         -% (col (14 + ps "ps_supplycost") *% col (li "l_quantity")));
                     ];
                 };
             keys = [ (col 0, Asc) ];
             limit = None;
           });
    };
    (* Q10: returned item reporting *)
    {
      q_name = "q10";
      q_plan =
        (let j1 =
           Hash_join
             {
               probe =
                 scanf "orders"
                   (col (od "o_orderdate") >=% date 600 &&% (col (od "o_orderdate") <% date 690));
               build = scan "customer";
               probe_keys = [ col (od "o_custkey") ];
               build_keys = [ col (cu "c_custkey") ];
             }
         in
         (* orders(0-6) ++ customer(7-11) *)
         let j2 =
           Hash_join
             {
               probe = scanf "lineitem" (Like (col (li "l_returnflag"), "R"));
               build = j1;
               probe_keys = [ col (li "l_orderkey") ];
               build_keys = [ col (od "o_orderkey") ];
             }
         in
         (* lineitem(0-13) ++ orders(14-20) ++ customer(21-25) *)
         Order_by
           {
             input =
               Group_by
                 {
                   input = j2;
                   keys = [ col (21 + cu "c_custkey"); col (21 + cu "c_name") ];
                   aggs =
                     [ Sum (disc_price (col (li "l_extendedprice")) (col (li "l_discount"))) ];
                 };
             keys = [ (col 2, Desc) ];
             limit = Some 20;
           });
    };
    (* Q11: important stock identification *)
    {
      q_name = "q11";
      q_plan =
        (let j1 =
           Hash_join
             {
               probe = scan "supplier";
               build = scanf "nation" (Like (col 1, "GERMANY"));
               probe_keys = [ col (su "s_nationkey") ];
               build_keys = [ col (na "n_nationkey") ];
             }
         in
         let j2 =
           Hash_join
             {
               probe = scan "partsupp";
               build = j1;
               probe_keys = [ col (ps "ps_suppkey") ];
               build_keys = [ col (su "s_suppkey") ];
             }
         in
         (* partsupp(0-3) ++ supplier(4-7) ++ nation(8-10) *)
         Order_by
           {
             input =
               Group_by
                 {
                   input = j2;
                   keys = [ col (ps "ps_partkey") ];
                   aggs =
                     [
                       Sum
                         (col (ps "ps_supplycost")
                         *% Cast (col (ps "ps_availqty"), Sqlty.Decimal 0));
                     ];
                 };
             keys = [ (col 1, Desc) ];
             limit = Some 50;
           });
    };
    (* Q12: shipping modes and order priority *)
    {
      q_name = "q12";
      q_plan =
        (let j =
           Hash_join
             {
               probe =
                 scanf "lineitem"
                   ((Like (col (li "l_shipmode"), "MAIL") ||% Like (col (li "l_shipmode"), "SHIP"))
                   &&% (col (li "l_commitdate") <% col (li "l_receiptdate"))
                   &&% (col (li "l_shipdate") <% col (li "l_commitdate"))
                   &&% (col (li "l_receiptdate") >=% date 1095));
               build = scan "orders";
               probe_keys = [ col (li "l_orderkey") ];
               build_keys = [ col (od "o_orderkey") ];
             }
         in
         (* lineitem ++ orders(14-20) *)
         Order_by
           {
             input =
               Group_by
                 {
                   input = j;
                   keys = [ col (li "l_shipmode") ];
                   aggs =
                     [
                       Sum
                         (Case
                            ( [
                                ( Like (col (14 + od "o_orderpriority"), "1-URGENT")
                                  ||% Like (col (14 + od "o_orderpriority"), "2-HIGH"),
                                  int64 1L );
                              ],
                              int64 0L ));
                       Count_star;
                     ];
                 };
             keys = [ (col 0, Asc) ];
             limit = None;
           });
    };
    (* Q13: customer distribution (outer join approximated as inner) *)
    {
      q_name = "q13";
      q_plan =
        (let j =
           Hash_join
             {
               probe = scanf "orders" (Not (Like (col (od "o_orderpriority"), "%special%")));
               build = scan "customer";
               probe_keys = [ col (od "o_custkey") ];
               build_keys = [ col (cu "c_custkey") ];
             }
         in
         let per_cust =
           Group_by { input = j; keys = [ col (od "o_custkey") ]; aggs = [ Count_star ] }
         in
         Order_by
           {
             input = Group_by { input = per_cust; keys = [ col 1 ]; aggs = [ Count_star ] };
             keys = [ (col 1, Desc); (col 0, Desc) ];
             limit = None;
           });
    };
    (* Q14: promotion effect *)
    {
      q_name = "q14";
      q_plan =
        (let j =
           Hash_join
             {
               probe =
                 scanf "lineitem"
                   (col (li "l_shipdate") >=% date 900 &&% (col (li "l_shipdate") <% date 930));
               build = scan "part";
               probe_keys = [ col (li "l_partkey") ];
               build_keys = [ col (pa "p_partkey") ];
             }
         in
         (* lineitem ++ part(14-19) *)
         Group_by
           {
             input = j;
             keys = [ int32 1 ];
             aggs =
               [
                 Sum
                   (Case
                      ( [
                          ( Like (col (14 + pa "p_type"), "PROMO%"),
                            disc_price (col (li "l_extendedprice")) (col (li "l_discount")) );
                        ],
                        dec ~scale:2 0 ));
                 Sum (disc_price (col (li "l_extendedprice")) (col (li "l_discount")));
               ];
           });
    };
    (* Q15: top supplier (view flattened) *)
    {
      q_name = "q15";
      q_plan =
        (let revenue =
           Group_by
             {
               input =
                 scanf "lineitem"
                   (col (li "l_shipdate") >=% date 1500 &&% (col (li "l_shipdate") <% date 1590));
               keys = [ col (li "l_suppkey") ];
               aggs = [ Sum (disc_price (col (li "l_extendedprice")) (col (li "l_discount"))) ];
             }
         in
         let j =
           Hash_join
             {
               probe = revenue;
               build = scan "supplier";
               probe_keys = [ col 0 ];
               build_keys = [ col (su "s_suppkey") ];
             }
         in
         (* revenue(0-1) ++ supplier(2-5) *)
         Order_by
           {
             input = Project { input = j; exprs = [ col 0; col (2 + su "s_name"); col 1 ] };
             keys = [ (col 2, Desc) ];
             limit = Some 10;
           });
    };
    (* Q16: parts/supplier relationship *)
    {
      q_name = "q16";
      q_plan =
        (let j =
           Hash_join
             {
               probe = scan "partsupp";
               build =
                 scanf "part"
                   (Not (Like (col (pa "p_brand"), "Brand#33"))
                   &&% (col (pa "p_size") <% int32 20));
               probe_keys = [ col (ps "ps_partkey") ];
               build_keys = [ col (pa "p_partkey") ];
             }
         in
         (* partsupp(0-3) ++ part(4-9) *)
         Order_by
           {
             input =
               Group_by
                 {
                   input = j;
                   keys = [ col (4 + pa "p_brand"); col (4 + pa "p_type"); col (4 + pa "p_size") ];
                   aggs = [ Count_star ];
                 };
             keys = [ (col 3, Desc); (col 0, Asc) ];
             limit = None;
           });
    };
    (* Q17: small-quantity-order revenue (correlated subquery flattened to
       per-part average then re-joined) *)
    {
      q_name = "q17";
      q_plan =
        (let avg_qty =
           Group_by
             {
               input = scan "lineitem";
               keys = [ col (li "l_partkey") ];
               aggs = [ Avg (col (li "l_quantity")) ];
             }
         in
         let j1 =
           Hash_join
             {
               probe = scanf "part" (Like (col (pa "p_brand"), "Brand#22"));
               build = avg_qty;
               probe_keys = [ col (pa "p_partkey") ];
               build_keys = [ col 0 ];
             }
         in
         (* part(0-5) ++ avg(6-7) *)
         let j2 =
           Hash_join
             {
               probe = scan "lineitem";
               build = j1;
               probe_keys = [ col (li "l_partkey") ];
               build_keys = [ pcol (pa "p_partkey") ];
             }
         in
         (* lineitem(0-13) ++ part(14-19) ++ avg(20-21) *)
         Group_by
           {
             input =
               Filter
                 {
                   input = j2;
                   pred = col (li "l_quantity") <% col 21;
                 };
             keys = [ int32 1 ];
             aggs = [ Sum (col (li "l_extendedprice")); Count_star ];
           });
    };
    (* Q18: large volume customer *)
    {
      q_name = "q18";
      q_plan =
        (let per_order =
           Group_by
             {
               input = scan "lineitem";
               keys = [ col (li "l_orderkey") ];
               aggs = [ Sum (col (li "l_quantity")) ];
             }
         in
         let big = Filter { input = per_order; pred = col 1 >% dec ~scale:2 12000 } in
         let j =
           Hash_join
             {
               probe = scan "orders";
               build = big;
               probe_keys = [ col (od "o_orderkey") ];
               build_keys = [ col 0 ];
             }
         in
         (* orders(0-6) ++ big(7-8) *)
         Order_by
           {
             input =
               Project
                 {
                   input = j;
                   exprs = [ col (od "o_orderkey"); col (od "o_totalprice"); col 8 ];
                 };
             keys = [ (col 1, Desc) ];
             limit = Some 100;
           });
    };
    (* Q19: discounted revenue — disjunctive predicates *)
    {
      q_name = "q19";
      q_plan =
        (let j =
           Hash_join
             {
               probe = scan "lineitem";
               build = scan "part";
               probe_keys = [ col (li "l_partkey") ];
               build_keys = [ col (pa "p_partkey") ];
             }
         in
         (* lineitem ++ part(14-19) *)
         Group_by
           {
             input =
               Filter
                 {
                   input = j;
                   pred =
                     (Like (col (14 + pa "p_brand"), "Brand#11")
                     &&% Between (col (li "l_quantity"), dec ~scale:2 100, dec ~scale:2 1100)
                     &&% (col (14 + pa "p_size") <=% int32 5))
                     ||% (Like (col (14 + pa "p_brand"), "Brand#44")
                         &&% Between (col (li "l_quantity"), dec ~scale:2 1000, dec ~scale:2 2000)
                         &&% (col (14 + pa "p_size") <=% int32 10));
                 };
             keys = [ int32 1 ];
             aggs = [ Sum (disc_price (col (li "l_extendedprice")) (col (li "l_discount"))) ];
           });
    };
    (* Q20: potential part promotion *)
    {
      q_name = "q20";
      q_plan =
        (let j1 =
           Hash_join
             {
               probe = scan "partsupp";
               build = scanf "part" (Like (col (pa "p_name"), "f%"));
               probe_keys = [ col (ps "ps_partkey") ];
               build_keys = [ col (pa "p_partkey") ];
             }
         in
         let j2 =
           Hash_join
             {
               probe = j1;
               build = scan "supplier";
               probe_keys = [ col (ps "ps_suppkey") ];
               build_keys = [ col (su "s_suppkey") ];
             }
         in
         (* partsupp(0-3) ++ part(4-9) ++ supplier(10-13) *)
         Order_by
           {
             input =
               Group_by
                 {
                   input = j2;
                   keys = [ col (10 + su "s_name") ];
                   aggs = [ Sum (Cast (col (ps "ps_availqty"), Sqlty.Int64)) ];
                 };
             keys = [ (col 0, Asc) ];
             limit = None;
           });
    };
    (* Q21: suppliers who kept orders waiting *)
    {
      q_name = "q21";
      q_plan =
        (let j1 =
           Hash_join
             {
               probe = scanf "lineitem" (col (li "l_receiptdate") >% col (li "l_commitdate"));
               build = scan "supplier";
               probe_keys = [ col (li "l_suppkey") ];
               build_keys = [ col (su "s_suppkey") ];
             }
         in
         (* lineitem ++ supplier(14-17) *)
         let j2 =
           Hash_join
             {
               probe = j1;
               build = scanf "orders" (Like (col (od "o_orderstatus"), "F"));
               probe_keys = [ col (li "l_orderkey") ];
               build_keys = [ col (od "o_orderkey") ];
             }
         in
         (* ++ orders(18-24) *)
         Order_by
           {
             input =
               Group_by
                 { input = j2; keys = [ col (14 + su "s_name") ]; aggs = [ Count_star ] };
             keys = [ (col 1, Desc); (col 0, Asc) ];
             limit = Some 100;
           });
    };
    (* Q22: global sales opportunity *)
    {
      q_name = "q22";
      q_plan =
        (let cust_f =
           scanf "customer"
             (col (cu "c_acctbal") >% dec ~scale:2 0
             &&% (col (cu "c_nationkey") <% int32 7));
         in
         let j =
           Hash_join
             {
               probe = scan "orders";
               build = cust_f;
               probe_keys = [ col (od "o_custkey") ];
               build_keys = [ col (cu "c_custkey") ];
             }
         in
         (* orders(0-6) ++ customer(7-11) *)
         Order_by
           {
             input =
               Group_by
                 {
                   input = j;
                   keys = [ col (7 + cu "c_nationkey") ];
                   aggs = [ Count_star; Sum (col (7 + cu "c_acctbal")) ];
                 };
             keys = [ (col 0, Asc) ];
             limit = None;
           });
    };
  ]

(* The row-count heuristic's blind spot, kept as a named query for the
   serving experiments and tests: every scan is tiny (70 + 280 + 10 rows at
   sf=1, under [Engine.adaptive_backend]'s interpreter threshold), but the
   bucketed join keys give each probe row ~1/8 of the part table as build
   matches, and each of those ~half the suppliers — the join output is
   orders of magnitude larger than any input. A pre-execution estimate
   parks this on the interpreter forever; observed cycles-per-row send it
   up the tier ladder within a few morsels. Not part of [queries]: the
   paper-replication experiments stay untouched. *)
let deceptive : query =
  let bucket e k = e -% (e /% int64 k *% int64 k) in
  {
    q_name = "qfan";
    q_plan =
      (let j1 =
         Hash_join
           {
             probe = scan "partsupp";
             build = scan "part";
             probe_keys = [ bucket (col (ps "ps_partkey")) 8L ];
             build_keys = [ bucket (col (pa "p_partkey")) 8L ];
           }
       in
       (* partsupp(0-3) ++ part(4-9) *)
       let j2 =
         Hash_join
           {
             probe = j1;
             build = scan "supplier";
             probe_keys = [ bucket (col (ps "ps_suppkey")) 2L ];
             build_keys = [ bucket (col (su "s_suppkey")) 2L ];
           }
       in
       (* ++ supplier(10-13) *)
       Project
         {
           input =
             Filter
               {
                 input = j2;
                 pred =
                   bucket (Cast (col (ps "ps_availqty"), Sqlty.Int64)) 29L
                   =% int64 0L;
               };
           exprs =
             [
               col (ps "ps_partkey");
               col (10 + su "s_suppkey");
               col (ps "ps_supplycost") *% col (4 + pa "p_retailprice");
             ];
         });
  }
