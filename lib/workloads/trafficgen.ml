(** Open-loop traffic generation: timed, tenant-tagged arrival traces over
    a query pool.

    A serving benchmark needs traffic that does not wait for the server —
    an {e open-loop} arrival process releases request [i] at a
    pre-computed timestamp regardless of how far the server has fallen
    behind, which is what exposes queueing delay, tail latency and the
    need for admission control. This module generates such traces
    deterministically (seeded) so the same trace can be replayed against
    the discrete-event scheduler (byte-identical reports) and the
    wall-clock pool.

    Two arrival processes:
    - {b Poisson}: independent exponential gaps at a target rate — the
      classic memoryless client population.
    - {b Burst}: the same exponential gaps, plus an idle pause injected
      after every [burst] arrivals — a square-wave load that alternates
      between a rate the server cannot sustain and silence. Under an
      admission cap this sheds during bursts and drains during pauses.

    Popularity over the pool is Zipf(1.1)-skewed (rank 1 dominates, long
    tail), matching the skew real plan-cache traffic shows; tenants are
    drawn uniformly. *)

open Qcomp_support

type arrival =
  | Poisson of { qps : float }
      (** exponential inter-arrival gaps with mean [1/qps] *)
  | Burst of { qps : float; burst : int; idle_s : float }
      (** exponential gaps at [qps] within a burst of [burst] arrivals,
          then [idle_s] of silence before the next burst *)

let arrival_name = function
  | Poisson { qps } -> Printf.sprintf "poisson(%.0f qps)" qps
  | Burst { qps; burst; idle_s } ->
      Printf.sprintf "burst(%.0f qps x %d, idle %.3fs)" qps burst idle_s

(* Zipf(s = 1.1) cumulative distribution over ranks 0..n-1 (same law the
   literal workload uses, but over the whole query pool). *)
let zipf_cdf n =
  let s = 1.1 in
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let zipf_draw cdf rng =
  let u = Rng.float rng in
  let rec go i = if i >= Array.length cdf - 1 || u < cdf.(i) then i else go (i + 1) in
  go 0

(* Exponential gap with the given mean; [1.0 -. u] keeps log's argument in
   (0, 1]. *)
let exp_gap rng mean = -.mean *. log (1.0 -. Rng.float rng)

(** [stream ~arrival ~seed ~n ?tenants pool] is [n] timed requests in
    arrival order over the (name, plan) [pool]: arrival times from the
    seeded [arrival] process, query popularity Zipf(1.1) over the pool's
    order (earlier entries are hotter), tenants uniform over
    [0..tenants-1]. Raises [Invalid_argument] on an empty pool, a
    non-positive rate, or [tenants < 1]. *)
let stream ~arrival ~seed ~n ?(tenants = 1) pool =
  if pool = [] then invalid_arg "Trafficgen.stream: empty query pool";
  if tenants < 1 then invalid_arg "Trafficgen.stream: tenants must be positive";
  (match arrival with
  | Poisson { qps } ->
      if qps <= 0.0 then invalid_arg "Trafficgen.stream: qps must be positive"
  | Burst { qps; burst; idle_s } ->
      if qps <= 0.0 then invalid_arg "Trafficgen.stream: qps must be positive";
      if burst < 1 then invalid_arg "Trafficgen.stream: burst must be positive";
      if idle_s < 0.0 then
        invalid_arg "Trafficgen.stream: idle_s must be non-negative");
  let rng = Rng.create seed in
  let arr = Array.of_list pool in
  let cdf = zipf_cdf (Array.length arr) in
  let t = ref 0.0 in
  List.init n (fun i ->
      (match arrival with
      | Poisson { qps } -> t := !t +. exp_gap rng (1.0 /. qps)
      | Burst { qps; burst; idle_s } ->
          if i > 0 && i mod burst = 0 then t := !t +. idle_s;
          t := !t +. exp_gap rng (1.0 /. qps));
      let name, plan = arr.(zipf_draw cdf rng) in
      let tenant = if tenants = 1 then 0 else Rng.int rng tenants in
      (name, plan, !t, tenant))
