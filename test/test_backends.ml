(* Cross-back-end differential tests: every compiling back-end must produce
   the interpreter's results on plans covering scans, joins, aggregation,
   strings, decimals and sorting — on both virtual targets. *)

open Qcomp_engine
open Qcomp_plan
open Qcomp_storage

let check = Alcotest.check

let make_db target =
  let db = Engine.create_db ~mem_size:(1 lsl 25) target in
  let t =
    Schema.make "t"
      [ ("id", Schema.Int64); ("grp", Schema.Int32); ("amt", Schema.Decimal 2);
        ("tag", Schema.Str); ("d", Schema.Date) ]
  in
  let dim = Schema.make "dim" [ ("k", Schema.Int32); ("name", Schema.Str) ] in
  let _ =
    Engine.add_table db t ~rows:300 ~seed:11L
      [| Datagen.Serial 0; Datagen.Uniform (0, 9); Datagen.DecimalRange (-500, 5000);
         Datagen.Words (Datagen.word_pool, 2); Datagen.DateRange (0, 1000) |]
  in
  let _ =
    Engine.add_table db dim ~rows:10 ~seed:12L
      [| Datagen.Serial 0; Datagen.Words (Datagen.word_pool, 1) |]
  in
  db

let scan = Algebra.Scan { table = "t"; filter = None }

let plans =
  [
    ("filter", Algebra.Filter { input = scan; pred = Expr.(col 1 >% int32 5) });
    ( "project",
      Algebra.Project
        { input = scan; exprs = Expr.[ col 0 *% int64 3L; col 2 +% col 2; col 2 *% col 2 ] } );
    ( "agg",
      Algebra.Group_by
        {
          input = scan;
          keys = [ Expr.col 1 ];
          aggs = [ Algebra.Count_star; Algebra.Sum (Expr.col 2); Algebra.Avg (Expr.col 2) ];
        } );
    ( "join",
      Algebra.Hash_join
        {
          build = Algebra.Scan { table = "dim"; filter = None };
          probe = scan;
          build_keys = [ Expr.col 0 ];
          probe_keys = [ Expr.col 1 ];
        } );
    ( "sort",
      Algebra.Order_by
        { input = scan; keys = [ (Expr.col 2, Algebra.Desc) ]; limit = Some 17 } );
    ( "strings",
      Algebra.Group_by
        {
          input = Algebra.Filter { input = scan; pred = Expr.Like (Expr.col 3, "%a%") };
          keys = [ Expr.col 3 ];
          aggs = [ Algebra.Count_star ];
        } );
    ( "dates",
      Algebra.Filter
        { input = scan; pred = Expr.(Between (col 4, date 100, date 500)) } );
  ]

let run target backend plan =
  let db = make_db target in
  let timing = Qcomp_support.Timing.create ~enabled:false () in
  let r, _, _ = Engine.run_plan db ~backend ~timing ~name:"q" plan in
  (Engine.checksum r.Engine.rows, r.Engine.output_count)

let backends_x64 =
  [
    ("stencil", Engine.stencil);
    ("directemit", Engine.directemit);
    ("cranelift", Engine.cranelift);
    ("llvm-cheap", Engine.llvm_cheap);
    ("llvm-opt", Engine.llvm_opt);
    ("gcc", Engine.gcc);
  ]

(* DirectEmit and the stencil back-end are x86-64-only, exactly like Umbra's *)
let backends_a64 =
  List.filter (fun (n, _) -> n <> "directemit" && n <> "stencil") backends_x64

let differential target backends =
  List.concat_map
    (fun (pname, plan) ->
      let expect = run target Engine.interpreter plan in
      List.map
        (fun (bname, backend) ->
          Alcotest.test_case (Printf.sprintf "%s/%s" bname pname) `Slow (fun () ->
              let got = run target backend plan in
              check
                Alcotest.(pair int64 int)
                "matches interpreter" expect got))
        backends)
    plans

let unit_cases =
  [
    Alcotest.test_case "all back-ends report code and functions" `Quick (fun () ->
        let db = make_db Qcomp_vm.Target.x64 in
        let cq = Engine.plan_to_ir db ~name:"q" (List.assoc "agg" plans) in
        List.iter
          (fun (name, b) ->
            let timing = Qcomp_support.Timing.create ~enabled:false () in
            let cm =
              Qcomp_backend.Backend.compile_module b ~timing ~emu:db.Engine.emu
                ~registry:db.Engine.registry ~unwind:db.Engine.unwind
                cq.Qcomp_codegen.Codegen.modul
            in
            check Alcotest.bool (name ^ " has functions") true
              (List.length cm.Qcomp_backend.Backend.cm_functions > 0);
            check Alcotest.bool (name ^ " nonzero code") true
              (cm.Qcomp_backend.Backend.cm_code_size > 0))
          backends_x64);
    Alcotest.test_case "fastisel reports fallback statistics" `Quick (fun () ->
        let db = make_db Qcomp_vm.Target.x64 in
        let cq = Engine.plan_to_ir db ~name:"q" (List.assoc "agg" plans) in
        let timing = Qcomp_support.Timing.create ~enabled:false () in
        let cm =
          Qcomp_backend.Backend.compile_module Engine.llvm_cheap ~timing
            ~emu:db.Engine.emu ~registry:db.Engine.registry ~unwind:db.Engine.unwind
            cq.Qcomp_codegen.Codegen.modul
        in
        (* decimal aggregation forces i128 fallbacks, as in the paper *)
        check Alcotest.bool "i128 fallbacks counted" true
          (List.exists
             (fun (k, v) -> k = "fallback_i128" && v > 0)
             cm.Qcomp_backend.Backend.cm_stats));
    Alcotest.test_case "cranelift reports btree statistics" `Quick (fun () ->
        let db = make_db Qcomp_vm.Target.x64 in
        let cq = Engine.plan_to_ir db ~name:"q" (List.assoc "join" plans) in
        let timing = Qcomp_support.Timing.create ~enabled:false () in
        let cm =
          Qcomp_backend.Backend.compile_module Engine.cranelift ~timing
            ~emu:db.Engine.emu ~registry:db.Engine.registry ~unwind:db.Engine.unwind
            cq.Qcomp_codegen.Codegen.modul
        in
        check Alcotest.bool "btree ops counted" true
          (List.exists
             (fun (k, v) -> k = "btree_ops" && v > 0)
             cm.Qcomp_backend.Backend.cm_stats));
  ]

let suite =
  unit_cases
  @ differential Qcomp_vm.Target.x64 backends_x64
  @ differential Qcomp_vm.Target.a64 backends_a64
