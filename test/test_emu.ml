(* Emulator semantics: arithmetic, flags, memory, control flow, calls into
   the runtime registry, and the cycle model — on both targets. *)

open Qcomp_vm

let check = Alcotest.check

(* assemble, load, call with args, return primary result *)
let run target insts ~args =
  let emu = Emu.create ~mem_size:(1 lsl 20) target in
  let a = Asm.create target in
  List.iter (Asm.emit a) insts;
  let base = Code_region.base (Emu.register_code emu (Asm.finish a)) in
  fst (Emu.call emu ~addr:base ~args)

let x64_args = Target.x64.Target.arg_regs
let a64_args = Target.a64.Target.arg_regs

let suite =
  [
    Alcotest.test_case "x64 add" `Quick (fun () ->
        let r =
          run Target.x64 ~args:[| 40L; 2L |]
            [
              Minst.Mov_rr (0, x64_args.(0));
              Minst.Alu_rr (Minst.Add, 0, x64_args.(1));
              Minst.Ret;
            ]
        in
        check Alcotest.int64 "42" 42L r);
    Alcotest.test_case "a64 three-address add" `Quick (fun () ->
        let r =
          run Target.a64 ~args:[| 40L; 2L |]
            [ Minst.Alu_rrr (Minst.Add, 0, a64_args.(0), a64_args.(1)); Minst.Ret ]
        in
        check Alcotest.int64 "42" 42L r);
    Alcotest.test_case "x64 flags: sub sets zero" `Quick (fun () ->
        let r =
          run Target.x64 ~args:[| 7L; 7L |]
            [
              Minst.Mov_rr (0, x64_args.(0));
              Minst.Cmp_rr (0, x64_args.(1));
              Minst.Setcc (Minst.Eq, 0);
              Minst.Ret;
            ]
        in
        check Alcotest.int64 "eq" 1L r);
    Alcotest.test_case "signed overflow flag on add" `Quick (fun () ->
        let r =
          run Target.x64 ~args:[| Int64.max_int; 1L |]
            [
              Minst.Mov_rr (0, x64_args.(0));
              Minst.Alu_rr (Minst.Add, 0, x64_args.(1));
              Minst.Setcc (Minst.Ov, 0);
              Minst.Ret;
            ]
        in
        check Alcotest.int64 "overflowed" 1L r);
    Alcotest.test_case "no overflow on benign add" `Quick (fun () ->
        let r =
          run Target.x64 ~args:[| 1L; 1L |]
            [
              Minst.Mov_rr (0, x64_args.(0));
              Minst.Alu_rr (Minst.Add, 0, x64_args.(1));
              Minst.Setcc (Minst.Ov, 0);
              Minst.Ret;
            ]
        in
        check Alcotest.int64 "clean" 0L r);
    Alcotest.test_case "adc/sbb carry chain (128-bit add)" `Quick (fun () ->
        (* lo=all-ones + 1 carries into hi *)
        let r =
          run Target.x64 ~args:[| -1L; 1L |]
            [
              Minst.Mov_rr (0, x64_args.(0));
              Minst.Alu_ri (Minst.Add, 0, 1L);
              (* carry set; hi = 0 + 0 + carry *)
              Minst.Mov_ri (1, 0L);
              Minst.Alu_ri (Minst.Adc, 1, 0L);
              Minst.Mov_rr (0, 1);
              Minst.Ret;
            ]
        in
        check Alcotest.int64 "carried" 1L r);
    Alcotest.test_case "mul_wide rdx:rax" `Quick (fun () ->
        (* (2^32)^2 = 2^64: rax = 0, rdx = 1 *)
        let r =
          run Target.x64 ~args:[| 0x1_0000_0000L |]
            [
              Minst.Mov_rr (0, x64_args.(0));
              Minst.Mov_rr (1, x64_args.(0));
              Minst.Mul_wide { signed = false; src = 1 };
              Minst.Mov_rr (0, 2) (* rdx *);
              Minst.Ret;
            ]
        in
        check Alcotest.int64 "high word" 1L r);
    Alcotest.test_case "x64 div and remainder" `Quick (fun () ->
        let insts want_rem =
          [
            Minst.Mov_rr (0, x64_args.(0));
            Minst.Mov_ri (2, 0L);
            Minst.Div { signed = false; src = x64_args.(1) };
            Minst.Mov_rr (0, if want_rem then 2 else 0);
            Minst.Ret;
          ]
        in
        check Alcotest.int64 "quot" 6L (run Target.x64 ~args:[| 45L; 7L |] (insts false));
        check Alcotest.int64 "rem" 3L (run Target.x64 ~args:[| 45L; 7L |] (insts true)));
    Alcotest.test_case "a64 div + msub remainder idiom" `Quick (fun () ->
        let r =
          run Target.a64 ~args:[| 45L; 7L |]
            [
              Minst.Div_rrr { signed = true; dst = 2; a = a64_args.(0); b = a64_args.(1) };
              Minst.Msub { dst = 0; a = 2; b = a64_args.(1); c = a64_args.(0) };
              Minst.Ret;
            ]
        in
        check Alcotest.int64 "rem" 3L r);
    Alcotest.test_case "load/store roundtrip with sizes" `Quick (fun () ->
        let emu = Emu.create ~mem_size:(1 lsl 20) Target.x64 in
        let a = Asm.create Target.x64 in
        (* store arg1 byte at [arg0], load back sign-extended *)
        List.iter (Asm.emit a)
          [
            Minst.St { src = x64_args.(1); base = x64_args.(0); off = 0; size = 1 };
            Minst.Ld { dst = 0; base = x64_args.(0); off = 0; size = 1; sext = true };
            Minst.Ret;
          ];
        let base = Code_region.base (Emu.register_code emu (Asm.finish a)) in
        let buf = Memory.alloc (Emu.memory emu) 16 in
        let r, _ = Emu.call emu ~addr:base ~args:[| Int64.of_int buf; 0xFFL |] in
        check Alcotest.int64 "sext byte" (-1L) r);
    Alcotest.test_case "crc32 instruction matches Hashes" `Quick (fun () ->
        let r =
          run Target.x64 ~args:[| 0x1234L; 0x5678L |]
            [
              Minst.Mov_rr (0, x64_args.(0));
              Minst.Crc32_rr (0, x64_args.(1));
              Minst.Ret;
            ]
        in
        check Alcotest.int64 "crc" (Qcomp_support.Hashes.crc32c 0x1234L 0x5678L) r);
    Alcotest.test_case "branches: loop sums 1..n" `Quick (fun () ->
        (* while (n > 0) { acc += n; n--; } return acc *)
        let emu = Emu.create ~mem_size:(1 lsl 20) Target.x64 in
        let a = Asm.create Target.x64 in
        let head = Asm.new_label a and exit = Asm.new_label a in
        Asm.emit a (Minst.Mov_ri (0, 0L));
        Asm.bind a head;
        Asm.emit a (Minst.Cmp_ri (x64_args.(0), 0L));
        Asm.jcc a Minst.Sle exit;
        Asm.emit a (Minst.Alu_rr (Minst.Add, 0, x64_args.(0)));
        Asm.emit a (Minst.Alu_ri (Minst.Sub, x64_args.(0), 1L));
        Asm.jmp a head;
        Asm.bind a exit;
        Asm.emit a Minst.Ret;
        let base = Code_region.base (Emu.register_code emu (Asm.finish a)) in
        let r, _ = Emu.call emu ~addr:base ~args:[| 10L |] in
        check Alcotest.int64 "55" 55L r);
    Alcotest.test_case "runtime dispatch: OCaml function callable" `Quick (fun () ->
        let emu = Emu.create ~mem_size:(1 lsl 20) Target.x64 in
        let addr =
          Emu.add_runtime emu "double_it" (fun e ->
              let v = Emu.reg e (Emu.arg_reg e 0) in
              Emu.set_reg e Target.x64.Target.ret_regs.(0) (Int64.mul v 2L))
        in
        let a = Asm.create Target.x64 in
        List.iter (Asm.emit a)
          [
            Minst.Mov_ri (1, addr);
            Minst.Call_ind 1;
            Minst.Ret;
          ];
        let base = Code_region.base (Emu.register_code emu (Asm.finish a)) in
        let r, _ = Emu.call emu ~addr:base ~args:[| 21L |] in
        check Alcotest.int64 "doubled" 42L r);
    Alcotest.test_case "runtime call balances the stack" `Quick (fun () ->
        let emu = Emu.create ~mem_size:(1 lsl 20) Target.x64 in
        let addr = Emu.add_runtime emu "noop" (fun _ -> ()) in
        let a = Asm.create Target.x64 in
        let sp = Target.x64.Target.sp in
        List.iter (Asm.emit a)
          [
            Minst.Mov_rr (0, sp);
            Minst.Mov_ri (1, addr);
            Minst.Call_ind 1;
            Minst.Call_ind 1;
            Minst.Alu_rr (Minst.Sub, 0, sp);
            Minst.Ret;
          ];
        let base = Code_region.base (Emu.register_code emu (Asm.finish a)) in
        let r, _ = Emu.call emu ~addr:base ~args:[||] in
        check Alcotest.int64 "sp preserved" 0L r);
    Alcotest.test_case "brk raises Trap" `Quick (fun () ->
        match run Target.x64 ~args:[||] [ Minst.Brk 7 ] with
        | exception Emu.Trap _ -> ()
        | _ -> Alcotest.fail "expected trap");
    Alcotest.test_case "jump to unmapped address traps" `Quick (fun () ->
        match
          run Target.x64 ~args:[||]
            [ Minst.Mov_ri (1, 0xDEAD000L); Minst.Jmp_ind 1 ]
        with
        | exception Emu.Trap _ -> ()
        | _ -> Alcotest.fail "expected trap");
    Alcotest.test_case "cycles accumulate monotonically" `Quick (fun () ->
        let emu = Emu.create ~mem_size:(1 lsl 20) Target.x64 in
        let a = Asm.create Target.x64 in
        List.iter (Asm.emit a) [ Minst.Mov_ri (0, 1L); Minst.Ret ];
        let base = Code_region.base (Emu.register_code emu (Asm.finish a)) in
        ignore (Emu.call emu ~addr:base ~args:[||]);
        let c1 = Emu.cycles emu in
        ignore (Emu.call emu ~addr:base ~args:[||]);
        check Alcotest.bool "grows" true (Emu.cycles emu > c1);
        Emu.reset_counters emu;
        check Alcotest.int "reset" 0 (Emu.cycles emu));
    Alcotest.test_case "a64 csel both ways" `Quick (fun () ->
        let prog c =
          [
            Minst.Cmp_rr (a64_args.(0), a64_args.(1));
            Minst.Csel { cond = c; dst = 0; a = a64_args.(0); b = a64_args.(1) };
            Minst.Ret;
          ]
        in
        check Alcotest.int64 "min" 3L (run Target.a64 ~args:[| 3L; 9L |] (prog Minst.Slt));
        check Alcotest.int64 "max" 9L (run Target.a64 ~args:[| 3L; 9L |] (prog Minst.Sgt)));
    Alcotest.test_case "float ops on bit patterns" `Quick (fun () ->
        let bits f = Int64.bits_of_float f in
        let r =
          run Target.x64 ~args:[| bits 1.5; bits 2.25 |]
            [
              Minst.Mov_rr (0, x64_args.(0));
              Minst.Falu_rr (Minst.Fadd, 0, x64_args.(1));
              Minst.Ret;
            ]
        in
        check (Alcotest.float 1e-9) "sum" 3.75 (Int64.float_of_bits r));
    Alcotest.test_case "cvt int<->float" `Quick (fun () ->
        let r =
          run Target.x64 ~args:[| 7L |]
            [
              Minst.Cvt_si2f (0, x64_args.(0));
              Minst.Cvt_f2si (0, 0);
              Minst.Ret;
            ]
        in
        check Alcotest.int64 "roundtrip" 7L r);
    Alcotest.test_case "page_align boundary sizes" `Quick (fun () ->
        check Alcotest.int "0" 0 (Emu.page_align 0);
        check Alcotest.int "1" 4096 (Emu.page_align 1);
        check Alcotest.int "4096" 4096 (Emu.page_align 4096);
        check Alcotest.int "4097" 8192 (Emu.page_align 4097));
    Alcotest.test_case "code region release recycles the address range" `Quick
      (fun () ->
        let emu = Emu.create ~mem_size:(1 lsl 20) Target.x64 in
        let blob v =
          let a = Asm.create Target.x64 in
          List.iter (Asm.emit a) [ Minst.Mov_ri (0, v); Minst.Ret ];
          Asm.finish a
        in
        let r1 = Emu.register_code emu (blob 7L) in
        check Alcotest.bool "live" true (Code_region.is_live r1);
        check Alcotest.int "accounted" (Code_region.size r1)
          (Emu.live_code_bytes emu);
        Emu.release_code emu r1;
        check Alcotest.bool "dead" false (Code_region.is_live r1);
        check Alcotest.int "live zero" 0 (Emu.live_code_bytes emu);
        check Alcotest.int "freed counted" (Code_region.size r1)
          (Emu.freed_code_bytes emu);
        (* same-size registration reuses the released span *)
        let r2 = Emu.register_code emu (blob 9L) in
        check Alcotest.int "address recycled" (Code_region.base r1)
          (Code_region.base r2);
        let v, _ = Emu.call emu ~addr:(Code_region.base r2) ~args:[||] in
        check Alcotest.int64 "recycled region executes" 9L v;
        check Alcotest.int "peak is one region"
          (Code_region.size r1)
          (Emu.peak_code_bytes emu));
    Alcotest.test_case "fetch from freed region traps as use-after-free" `Quick
      (fun () ->
        let emu = Emu.create ~mem_size:(1 lsl 20) Target.x64 in
        let a = Asm.create Target.x64 in
        List.iter (Asm.emit a) [ Minst.Mov_ri (0, 1L); Minst.Ret ];
        let r = Emu.register_code emu (Asm.finish a) in
        let base = Code_region.base r in
        ignore (Emu.call emu ~addr:base ~args:[||]);
        Emu.release_code emu r;
        (match Emu.call emu ~addr:base ~args:[||] with
        | exception Emu.Trap msg ->
            check Alcotest.bool
              ("trap names use-after-free: " ^ msg)
              true
              (String.length msg >= 14 && String.sub msg 0 14 = "use-after-free")
        | _ -> Alcotest.fail "expected use-after-free trap");
        match Emu.release_code emu r with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument on double release");
    Alcotest.test_case "runtime slots recycle and trap after removal" `Quick
      (fun () ->
        let emu = Emu.create ~mem_size:(1 lsl 20) Target.x64 in
        let a1 = Emu.add_runtime emu "f1" (fun _ -> ()) in
        Emu.remove_runtime emu a1;
        (match Emu.call emu ~addr:(Int64.to_int a1) ~args:[||] with
        | exception Emu.Trap msg ->
            check Alcotest.bool
              ("trap names use-after-free: " ^ msg)
              true
              (String.length msg >= 14 && String.sub msg 0 14 = "use-after-free")
        | _ -> Alcotest.fail "expected use-after-free trap");
        (* freed slot is reused by the next registration and works again *)
        let a2 = Emu.add_runtime emu "f2" (fun _ -> ()) in
        check Alcotest.int64 "slot recycled" a1 a2;
        ignore (Emu.call emu ~addr:(Int64.to_int a2) ~args:[||]);
        match Emu.remove_runtime emu a2 with
        | () -> (
            match Emu.remove_runtime emu a2 with
            | exception Invalid_argument _ -> ()
            | () -> Alcotest.fail "expected Invalid_argument on double remove"));
    Alcotest.test_case "two-domain register/release stress" `Quick (fun () ->
        (* two domains each hammer the shared code registry through their
           own execution context: register a blob, execute it, release it.
           Freed spans from one domain get recycled by the other; the
           shared live/freed gauges must balance exactly at the end. *)
        let emu = Emu.create ~mem_size:(1 lsl 22) Target.x64 in
        let iters = 200 in
        let blob v =
          let a = Asm.create Target.x64 in
          List.iter (Asm.emit a) [ Minst.Mov_ri (0, v); Minst.Ret ];
          Asm.finish a
        in
        let registered = Atomic.make 0 in
        let failure = Atomic.make None in
        let worker seed () =
          let ctx = Emu.context emu in
          for i = 1 to iters do
            let v = Int64.of_int ((seed * 1_000_000) + i) in
            let r = Emu.register_code ctx (blob v) in
            ignore (Atomic.fetch_and_add registered (Code_region.size r));
            let got, _ = Emu.call ctx ~addr:(Code_region.base r) ~args:[||] in
            if got <> v then
              Atomic.set failure
                (Some (Printf.sprintf "domain %d iter %d: %Ld <> %Ld" seed i got v));
            Emu.release_code ctx r
          done
        in
        let d1 = Domain.spawn (worker 1) and d2 = Domain.spawn (worker 2) in
        Domain.join d1;
        Domain.join d2;
        (match Atomic.get failure with
        | Some msg -> Alcotest.fail msg
        | None -> ());
        check Alcotest.int "all code released" 0 (Emu.live_code_bytes emu);
        check Alcotest.int "freed equals registered" (Atomic.get registered)
          (Emu.freed_code_bytes emu));
    Alcotest.test_case "contexts: isolated registers and stacks across domains"
      `Quick (fun () ->
        (* one shared loop blob, executed simultaneously from two contexts
           with different arguments: registers, flags and call stacks are
           per-context, so both must compute their own sums *)
        let emu = Emu.create ~mem_size:(1 lsl 22) Target.x64 in
        let a = Asm.create Target.x64 in
        let head = Asm.new_label a and exit = Asm.new_label a in
        Asm.emit a (Minst.Mov_ri (0, 0L));
        Asm.bind a head;
        Asm.emit a (Minst.Cmp_ri (x64_args.(0), 0L));
        Asm.jcc a Minst.Sle exit;
        Asm.emit a (Minst.Alu_rr (Minst.Add, 0, x64_args.(0)));
        Asm.emit a (Minst.Alu_ri (Minst.Sub, x64_args.(0), 1L));
        Asm.jmp a head;
        Asm.bind a exit;
        Asm.emit a Minst.Ret;
        let base = Code_region.base (Emu.register_code emu (Asm.finish a)) in
        let sum n = Int64.of_int (n * (n + 1) / 2) in
        let bad = Atomic.make 0 in
        let worker n () =
          let ctx = Emu.context emu in
          for _ = 1 to 500 do
            let r, _ = Emu.call ctx ~addr:base ~args:[| Int64.of_int n |] in
            if r <> sum n then ignore (Atomic.fetch_and_add bad 1)
          done
        in
        let d1 = Domain.spawn (worker 100) and d2 = Domain.spawn (worker 37) in
        Domain.join d1;
        Domain.join d2;
        check Alcotest.int "no cross-context corruption" 0 (Atomic.get bad));
    Alcotest.test_case "memory claim pins spans above the break" `Quick
      (fun () ->
        let m = Memory.create (1 lsl 20) in
        let raises f =
          match f () with
          | _ -> false
          | exception Invalid_argument _ -> true
        in
        let below = Memory.alloc m 64 in
        (* pin a span well above the break, as a snapshot load would *)
        let addr = below + 4096 in
        Memory.claim m ~addr ~size:16 ~align:16;
        Memory.store64 m addr 0xBEEFL;
        (* the bump allocator must route around the claimed span *)
        for _ = 1 to 1024 do
          let a = Memory.alloc m 64 in
          if a < addr + 16 && addr < a + 64 then
            Alcotest.failf "alloc 0x%x overlaps the claimed span 0x%x" a addr
        done;
        check Alcotest.int64 "claimed bytes survive the alloc storm" 0xBEEFL
          (Memory.load64 m addr);
        (* every invalid claim fails loud *)
        check Alcotest.bool "below the break" true
          (raises (fun () -> Memory.claim m ~addr:below ~size:16 ~align:16));
        check Alcotest.bool "double claim" true
          (raises (fun () -> Memory.claim m ~addr ~size:16 ~align:16));
        check Alcotest.bool "overlapping claim" true
          (raises (fun () -> Memory.claim m ~addr:(addr + 8) ~size:16 ~align:8));
        check Alcotest.bool "misaligned" true
          (raises (fun () -> Memory.claim m ~addr:(addr + 33) ~size:8 ~align:8));
        check Alcotest.bool "zero size" true
          (raises (fun () -> Memory.claim m ~addr:(addr + 64) ~size:0 ~align:8));
        check Alcotest.bool "out of range" true
          (raises (fun () ->
               Memory.claim m ~addr:((1 lsl 20) - 8) ~size:16 ~align:8)));
  ]
