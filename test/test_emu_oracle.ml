(* Differential emulator testing: random straight-line programs in a small
   well-defined DSL are lowered to each target's instruction forms,
   assembled, executed by the emulator, and compared against a direct OCaml
   evaluation of the DSL. This pins the ALU/compare/select semantics that
   every back-end relies on (canonical sign-extension, shift masking,
   rotate, flag-based selects). *)

open Qcomp_vm

type op =
  | Ldi of int * int64
  | Mov of int * int
  | Alu of Minst.alu * int * int * int  (** d, a, b — three-address, d<>b *)
  | CmpSet of Minst.cond * int * int * int  (** d = (a cond b) *)
  | Sel of Minst.cond * int * int * int * int  (** d = (a cond b) ? d : y *)
  | Ext of int * int * int * bool  (** d, s, bits, signed *)

(* registers: avoid sp on both targets (x64: 4, a64: 31) and keep within
   the x64 file so one program runs on both targets *)
let regs = [| 0; 1; 2; 3; 5; 6; 7; 8; 9; 12; 13 |]

let gen_op =
  let open QCheck2.Gen in
  let r = map (Array.get regs) (int_bound (Array.length regs - 1)) in
  let alu =
    oneofl Minst.[ Add; Sub; And; Or; Xor; Mul; Shl; Shr; Sar; Ror ]
  in
  let cond =
    oneofl Minst.[ Eq; Ne; Slt; Sle; Sgt; Sge; Ult; Ule; Ugt; Uge ]
  in
  oneof
    [
      map2 (fun d v -> Ldi (d, v)) r ui64;
      map2 (fun d s -> Mov (d, s)) r r;
      (map3 (fun op (d, a) b -> Alu (op, d, a, b)) alu (pair r r) r
      |> map (function Alu (op, d, a, b) when d = b -> Alu (op, d, a, a) | o -> o));
      map3 (fun c d (a, b) -> CmpSet (c, d, a, b)) cond r (pair r r);
      map3
        (fun c (d, y) (a, b) -> Sel (c, d, a, b, y))
        cond (pair r r) (pair r r);
      map3 (fun d s (bits, signed) -> Ext (d, s, bits, signed)) r r
        (pair (oneofl [ 8; 16; 32 ]) bool);
    ]

let gen_prog = QCheck2.Gen.(list_size (int_range 1 30) gen_op)

(* ---- reference evaluation ---- *)

let eval_cond (c : Minst.cond) a b =
  match c with
  | Minst.Eq -> Int64.equal a b
  | Minst.Ne -> not (Int64.equal a b)
  | Minst.Slt -> Int64.compare a b < 0
  | Minst.Sle -> Int64.compare a b <= 0
  | Minst.Sgt -> Int64.compare a b > 0
  | Minst.Sge -> Int64.compare a b >= 0
  | Minst.Ult -> Int64.unsigned_compare a b < 0
  | Minst.Ule -> Int64.unsigned_compare a b <= 0
  | Minst.Ugt -> Int64.unsigned_compare a b > 0
  | Minst.Uge -> Int64.unsigned_compare a b >= 0
  | _ -> assert false

let eval_alu (op : Minst.alu) a b =
  match op with
  | Minst.Add -> Int64.add a b
  | Minst.Sub -> Int64.sub a b
  | Minst.And -> Int64.logand a b
  | Minst.Or -> Int64.logor a b
  | Minst.Xor -> Int64.logxor a b
  | Minst.Mul -> Int64.mul a b
  | Minst.Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Minst.Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Minst.Sar -> Int64.shift_right a (Int64.to_int b land 63)
  | Minst.Ror ->
      let n = Int64.to_int b land 63 in
      if n = 0 then a
      else Int64.logor (Int64.shift_right_logical a n) (Int64.shift_left a (64 - n))
  | _ -> assert false

let eval_ext v ~bits ~signed =
  let shift = 64 - bits in
  if signed then Int64.shift_right (Int64.shift_left v shift) shift
  else Int64.shift_right_logical (Int64.shift_left v shift) shift

let reference prog =
  let f = Array.make 16 0L in
  List.iter
    (fun op ->
      match op with
      | Ldi (d, v) -> f.(d) <- v
      | Mov (d, s) -> f.(d) <- f.(s)
      | Alu (op, d, a, b) -> f.(d) <- eval_alu op f.(a) f.(b)
      | CmpSet (c, d, a, b) -> f.(d) <- (if eval_cond c f.(a) f.(b) then 1L else 0L)
      | Sel (c, d, a, b, y) -> f.(d) <- (if eval_cond c f.(a) f.(b) then f.(d) else f.(y))
      | Ext (d, s, bits, signed) -> f.(d) <- eval_ext f.(s) ~bits ~signed)
    prog;
  f.(0)

(* ---- lowering ---- *)

let lower_x64 prog =
  List.concat_map
    (fun op ->
      match op with
      | Ldi (d, v) -> [ Minst.Mov_ri (d, v) ]
      | Mov (d, s) -> [ Minst.Mov_rr (d, s) ]
      | Alu (op, d, a, b) ->
          (* two-address: d <> b by construction *)
          [ Minst.Mov_rr (d, a); Minst.Alu_rr (op, d, b) ]
      | CmpSet (c, d, a, b) -> [ Minst.Cmp_rr (a, b); Minst.Setcc (c, d) ]
      | Sel (c, d, a, b, y) ->
          [ Minst.Cmp_rr (a, b); Minst.Csel { cond = c; dst = d; a = d; b = y } ]
      | Ext (d, s, bits, signed) -> [ Minst.Ext { dst = d; src = s; bits; signed } ])
    prog
  @ [ Minst.Ret ]

let lower_a64 prog =
  List.concat_map
    (fun op ->
      match op with
      | Ldi (d, v) -> [ Minst.Mov_ri (d, v) ]
      | Mov (d, s) -> [ Minst.Mov_rr (d, s) ]
      | Alu (op, d, a, b) -> [ Minst.Alu_rrr (op, d, a, b) ]
      | CmpSet (c, d, a, b) -> [ Minst.Cmp_rr (a, b); Minst.Setcc (c, d) ]
      | Sel (c, d, a, b, y) ->
          [ Minst.Cmp_rr (a, b); Minst.Csel { cond = c; dst = d; a = d; b = y } ]
      | Ext (d, s, bits, signed) -> [ Minst.Ext { dst = d; src = s; bits; signed } ])
    prog
  @ [ Minst.Ret ]

let run_emu target insts =
  let emu = Emu.create ~mem_size:(1 lsl 18) target in
  let a = Asm.create target in
  List.iter (Asm.emit a) insts;
  let base = Code_region.base (Emu.register_code emu (Asm.finish a)) in
  fst (Emu.call emu ~addr:base ~args:[||])

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:400 ~name gen f)

let suite =
  [
    prop "x64 straight-line programs match the reference" gen_prog (fun prog ->
        Int64.equal (run_emu Target.x64 (lower_x64 prog)) (reference prog));
    prop "a64 straight-line programs match the reference" gen_prog (fun prog ->
        Int64.equal (run_emu Target.a64 (lower_a64 prog)) (reference prog));
    prop "x64 and a64 agree with each other" gen_prog (fun prog ->
        Int64.equal (run_emu Target.x64 (lower_x64 prog)) (run_emu Target.a64 (lower_a64 prog)));
  ]
