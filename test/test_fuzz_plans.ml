(* Randomized differential testing: generate small well-typed plans and
   demand that every compiling back-end produces exactly the interpreter's
   outcome — the same rows (order-sensitive checksum) or the same query
   error (overflow, division by zero). This is the property the whole
   system must uphold. *)

open Qcomp_engine
open Qcomp_plan
open Qcomp_storage

(* fixed schema: col0 int64, col1 int32 (small), col2 decimal(2), col3 str *)
let schema =
  Schema.make "t"
    [ ("a", Schema.Int64); ("g", Schema.Int32); ("d", Schema.Decimal 2);
      ("s", Schema.Str) ]

let make_db ?(target = Qcomp_vm.Target.x64) () =
  let db = Engine.create_db ~mem_size:(1 lsl 24) target in
  let _ =
    Engine.add_table db schema ~rows:64 ~seed:123L
      [| Datagen.Uniform (-50, 50); Datagen.Uniform (0, 5);
         Datagen.DecimalRange (-300, 300); Datagen.Words (Datagen.word_pool, 1) |]
  in
  db

(* ---- generators ---- *)

open QCheck2.Gen

(* numeric expressions over cols 0(i64), 1(i32), 2(dec2); kept shallow so
   most evaluations stay in range, while overflow still happens sometimes
   (trap parity is part of the property) *)
let gen_num =
  sized_size (int_bound 2) @@ fix (fun self n ->
      if n = 0 then
        oneof
          [
            oneofl [ Expr.col 0; Expr.col 1; Expr.col 2 ];
            map Expr.int32 (int_range (-20) 20);
            map (fun v -> Expr.int64 (Int64.of_int v)) (int_range (-100) 100);
            map (fun v -> Expr.dec ~scale:2 v) (int_range (-500) 500);
          ]
      else
        oneof
          [
            map2 (fun a b -> Expr.(a +% b)) (self (n - 1)) (self (n - 1));
            map2 (fun a b -> Expr.(a -% b)) (self (n - 1)) (self (n - 1));
            map2 (fun a b -> Expr.(a *% b)) (self (n - 1)) (self (n - 1));
            map2 (fun a b -> Expr.(a /% b)) (self (n - 1)) (self (n - 1));
            map (fun a -> Expr.Neg a) (self (n - 1));
          ])

let gen_pred =
  let cmp =
    oneofl [ (fun a b -> Expr.(a <% b)); (fun a b -> Expr.(a <=% b));
             (fun a b -> Expr.(a =% b)); (fun a b -> Expr.(a >% b)) ]
  in
  let atom =
    oneof
      [
        map3 (fun f a b -> f a b) cmp gen_num gen_num;
        map (fun p -> Expr.Like (Expr.col 3, p)) (oneofl [ "%a%"; "a%"; "%o"; "%li%" ]);
      ]
  in
  oneof
    [
      atom;
      map2 (fun a b -> Expr.(a &&% b)) atom atom;
      map2 (fun a b -> Expr.(a ||% b)) atom atom;
      map (fun a -> Expr.Not a) atom;
    ]

let gen_agg =
  oneof
    [
      return Algebra.Count_star;
      map (fun e -> Algebra.Sum e) gen_num;
      map (fun e -> Algebra.Min e) gen_num;
      map (fun e -> Algebra.Max e) gen_num;
      map (fun e -> Algebra.Avg e) gen_num;
    ]

let scan = Algebra.Scan { table = "t"; filter = None }

let gen_plan =
  let base =
    oneof
      [
        return scan;
        map (fun p -> Algebra.Filter { input = scan; pred = p }) gen_pred;
        map (fun es -> Algebra.Project { input = scan; exprs = es })
          (list_size (int_range 1 3) gen_num);
      ]
  in
  oneof
    [
      base;
      map2
        (fun input aggs ->
          Algebra.Group_by { input; keys = [ Expr.col 1 ]; aggs })
        base
        (list_size (int_range 1 2) gen_agg);
      map2
        (fun input limit ->
          Algebra.Order_by
            { input; keys = [ (Expr.col 0, Algebra.Desc) ]; limit })
        base
        (oneofl [ None; Some 5 ]);
      map
        (fun keys ->
          Algebra.Hash_join
            {
              build = Algebra.Filter { input = scan; pred = Expr.(col 1 =% int32 2) };
              probe = scan;
              build_keys = [ keys ];
              probe_keys = [ keys ];
            })
        (oneofl [ Expr.col 0; Expr.col 1 ]);
      (* spread keys: values span millions, defeating the hash table's
         direct-address window so the tagged probe path is exercised *)
      map
        (fun pred ->
          Algebra.Hash_join
            {
              build = Algebra.Filter { input = scan; pred };
              probe = scan;
              build_keys = [ Expr.(col 0 *% int64 131071L) ];
              probe_keys = [ Expr.(col 0 *% int64 131071L) ];
            })
        gen_pred;
      (* multi-key join: combined hashes, duplicate chains per pair *)
      return
        (Algebra.Hash_join
           {
             build = Algebra.Filter { input = scan; pred = Expr.(col 0 >% int64 0L) };
             probe = scan;
             build_keys = [ Expr.col 0; Expr.col 1 ];
             probe_keys = [ Expr.col 0; Expr.col 1 ];
           });
    ]

(* ---- printers for counterexamples ---- *)

let rec expr_str (e : Expr.t) =
  match e with
  | Expr.Col i -> Printf.sprintf "c%d" i
  | Expr.Const_int (ty, v) -> Printf.sprintf "%Ld:%s" v (Sqlty.to_string ty)
  | Expr.Const_str s -> Printf.sprintf "%S" s
  | Expr.Add (a, b) -> Printf.sprintf "(%s + %s)" (expr_str a) (expr_str b)
  | Expr.Sub (a, b) -> Printf.sprintf "(%s - %s)" (expr_str a) (expr_str b)
  | Expr.Mul (a, b) -> Printf.sprintf "(%s * %s)" (expr_str a) (expr_str b)
  | Expr.Div (a, b) -> Printf.sprintf "(%s / %s)" (expr_str a) (expr_str b)
  | Expr.Neg a -> Printf.sprintf "(- %s)" (expr_str a)
  | Expr.Cmp (p, a, b) ->
      let ps = match p with Expr.Eq -> "=" | Expr.Ne -> "<>" | Expr.Lt -> "<"
        | Expr.Le -> "<=" | Expr.Gt -> ">" | Expr.Ge -> ">=" in
      Printf.sprintf "(%s %s %s)" (expr_str a) ps (expr_str b)
  | Expr.And (a, b) -> Printf.sprintf "(%s and %s)" (expr_str a) (expr_str b)
  | Expr.Or (a, b) -> Printf.sprintf "(%s or %s)" (expr_str a) (expr_str b)
  | Expr.Not a -> Printf.sprintf "(not %s)" (expr_str a)
  | Expr.Like (a, p) -> Printf.sprintf "(%s like %S)" (expr_str a) p
  | Expr.Between (v, lo, hi) ->
      Printf.sprintf "(%s between %s and %s)" (expr_str v) (expr_str lo) (expr_str hi)
  | Expr.Case (ws, e) ->
      Printf.sprintf "(case %s else %s)"
        (String.concat " " (List.map (fun (w, t) -> Printf.sprintf "when %s then %s" (expr_str w) (expr_str t)) ws))
        (expr_str e)
  | Expr.Cast (a, ty) -> Printf.sprintf "(cast %s %s)" (expr_str a) (Sqlty.to_string ty)
  | Expr.Param (ty, i) -> Printf.sprintf "$%d:%s" i (Sqlty.to_string ty)

let agg_str = function
  | Algebra.Count_star -> "count(*)"
  | Algebra.Sum e -> Printf.sprintf "sum(%s)" (expr_str e)
  | Algebra.Min e -> Printf.sprintf "min(%s)" (expr_str e)
  | Algebra.Max e -> Printf.sprintf "max(%s)" (expr_str e)
  | Algebra.Avg e -> Printf.sprintf "avg(%s)" (expr_str e)

let rec plan_str (p : Algebra.t) =
  match p with
  | Algebra.Scan { table; filter } ->
      Printf.sprintf "scan(%s%s)" table
        (match filter with None -> "" | Some f -> ", " ^ expr_str f)
  | Algebra.Filter { input; pred } ->
      Printf.sprintf "filter(%s, %s)" (plan_str input) (expr_str pred)
  | Algebra.Project { input; exprs } ->
      Printf.sprintf "project(%s, [%s])" (plan_str input)
        (String.concat "; " (List.map expr_str exprs))
  | Algebra.Hash_join { build; probe; build_keys; probe_keys } ->
      Printf.sprintf "join(build=%s on [%s], probe=%s on [%s])" (plan_str build)
        (String.concat ";" (List.map expr_str build_keys))
        (plan_str probe)
        (String.concat ";" (List.map expr_str probe_keys))
  | Algebra.Group_by { input; keys; aggs } ->
      Printf.sprintf "group(%s, keys=[%s], aggs=[%s])" (plan_str input)
        (String.concat ";" (List.map expr_str keys))
        (String.concat ";" (List.map agg_str aggs))
  | Algebra.Order_by { input; keys; limit } ->
      Printf.sprintf "order(%s, [%s]%s)" (plan_str input)
        (String.concat ";"
           (List.map (fun (e, o) -> expr_str e ^ (match o with Algebra.Asc -> " asc" | Algebra.Desc -> " desc")) keys))
        (match limit with None -> "" | Some n -> Printf.sprintf ", limit %d" n)
  | Algebra.Limit { input; n } -> Printf.sprintf "limit(%s, %d)" (plan_str input) n

(* ---- the property ---- *)

type outcome = Rows of int64 * int | Error of string

let run_outcome ?target backend plan =
  (* typing rejections must also agree, but those happen before the
     back-end runs; treat them as an Error outcome keyed on the message *)
  match
    let db = make_db ?target () in
    let timing = Qcomp_support.Timing.create ~enabled:false () in
    Engine.run_plan db ~backend ~timing ~name:"fuzz" plan
  with
  | r, _, _ -> Rows (Engine.checksum r.Engine.rows, r.Engine.output_count)
  | exception Qcomp_runtime.Rt_error.Query_error e -> Error e
  | exception Expr.Type_error e -> Error ("type: " ^ e)

let backends =
  [
    ("stencil", Engine.stencil);
    ("directemit", Engine.directemit);
    ("cranelift", Engine.cranelift);
    ("llvm-cheap", Engine.llvm_cheap);
    ("llvm-opt", Engine.llvm_opt);
    ("gcc", Engine.gcc);
  ]

let mk_test ?target ?(suffix = "") (bname, backend) =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:120 ~print:plan_str
       ~name:(Printf.sprintf "random plans: %s = interpreter%s" bname suffix)
       gen_plan
       (fun plan ->
         let expect = run_outcome ?target Engine.interpreter plan in
         let got = run_outcome ?target backend plan in
         if expect <> got then
           QCheck2.Test.fail_reportf "outcomes differ: interp=%s %s=%s"
             (match expect with Rows (c, n) -> Printf.sprintf "rows(%Lx,%d)" c n | Error e -> "err:" ^ e)
             bname
             (match got with Rows (c, n) -> Printf.sprintf "rows(%Lx,%d)" c n | Error e -> "err:" ^ e)
         else true))

let suite =
  List.map (fun b -> mk_test b) backends
  @ List.map
      (fun b -> mk_test ~target:Qcomp_vm.Target.a64 ~suffix:" (a64)" b)
      (List.filter (fun (n, _) -> n <> "directemit" && n <> "stencil") backends)
