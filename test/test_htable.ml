(* The tagged-probe / direct-address hash table runtime: layout selection
   and fallback, duplicate-chain order across growth, tag false-positive
   bounds, probe-cost calibration, zeroing charges, the stale-address
   guard, and the grow-leak regression. *)

open Qcomp_vm
open Qcomp_runtime
module Hashes = Qcomp_support.Hashes

let check = Alcotest.check
let fresh_mem () = Memory.create (1 lsl 24)

(* Creation takes the profile as an explicit argument now (no
   process-wide toggle); [with_profile] hands the callback a [create]
   preconfigured with it. *)
let with_profile p f =
  f (fun m ~payload_size ~capacity_hint ->
      Htable.create m ~profile:p ~payload_size ~capacity_hint ())

let unhash =
  match Hashes.unhash64_opt with
  | Some f -> f
  | None -> fun _ -> Alcotest.fail "unhash64 unavailable for these seeds"

(* a spread 64-bit value whose unhash is pseudorandom (combined hashes
   never unhash to anything dense) *)
let scrambled i = Hashes.combine (Hashes.hash64 (Int64.of_int i)) 0x5BD1E995L

let mode_cases =
  [
    Alcotest.test_case "unhash64 inverts hash64" `Quick (fun () ->
        List.iter
          (fun x ->
            check Alcotest.int64 "roundtrip" x (unhash (Hashes.hash64 x)))
          [ 0L; 1L; -1L; 42L; Int64.min_int; Int64.max_int; 0xDEADBEEFL ];
        for i = 0 to 999 do
          let x = Hashes.hash64 (Int64.of_int (i * 7919)) in
          check Alcotest.int64 "roundtrip rand" x (unhash (Hashes.hash64 x))
        done);
    Alcotest.test_case "dense integer keys select direct addressing" `Quick
      (fun () ->
        let m = fresh_mem () in
        let ht, _ = Htable.create m ~payload_size:8 ~capacity_hint:16 () in
        for k = 0 to 999 do
          let p, _ = Htable.insert m ht (Hashes.hash64 (Int64.of_int k)) in
          Memory.store64 m p (Int64.of_int (k * 3))
        done;
        check Alcotest.bool "direct" true (Htable.mode m ht = `Direct);
        check Alcotest.int "count" 1000 (Htable.count m ht);
        for k = 0 to 999 do
          let e, _ = Htable.lookup m ht (Hashes.hash64 (Int64.of_int k)) in
          check Alcotest.bool "found" true (e <> 0);
          check Alcotest.int64 "payload" (Int64.of_int (k * 3))
            (Memory.load64 m (e + 8))
        done;
        (* absent keys: in-range gaps and out-of-range both miss *)
        let e, c = Htable.lookup m ht (Hashes.hash64 123456789L) in
        check Alcotest.int "range miss" 0 e;
        check Alcotest.bool "range miss is cheap" true (c <= 3));
    Alcotest.test_case "sparse keys fall back to tagged mid-build" `Quick
      (fun () ->
        let m = fresh_mem () in
        let ht, _ = Htable.create m ~payload_size:8 ~capacity_hint:16 () in
        let keys =
          List.init 100 (fun k -> Int64.of_int k) @ [ 10_000_000L ]
        in
        List.iteri
          (fun i k ->
            let p, _ = Htable.insert m ht (Hashes.hash64 k) in
            Memory.store64 m p (Int64.of_int i))
          keys;
        check Alcotest.bool "tagged after outlier" true
          (Htable.mode m ht = `Tagged);
        List.iteri
          (fun i k ->
            let e, _ = Htable.lookup m ht (Hashes.hash64 k) in
            check Alcotest.bool "found" true (e <> 0);
            check Alcotest.int64 "payload survives migration"
              (Int64.of_int i)
              (Memory.load64 m (e + 8)))
          keys);
    Alcotest.test_case "direct/tagged/legacy lookup equivalence" `Quick
      (fun () ->
        (* same inserts under all three layouts must expose the same
           per-key payload multisets *)
        let keys =
          List.init 200 (fun k -> Int64.of_int (k mod 120))
          (* dups: 80 keys twice *)
        in
        let collect profile extra =
          with_profile profile (fun create ->
              let m = fresh_mem () in
              let ht, _ = create m ~payload_size:8 ~capacity_hint:4 in
              List.iteri
                (fun i k ->
                  let p, _ = Htable.insert m ht (Hashes.hash64 k) in
                  Memory.store64 m p (Int64.of_int i))
                (keys @ extra);
              List.map
                (fun k ->
                  let h = Hashes.hash64 k in
                  let rec walk e acc =
                    if e = 0 then List.rev acc
                    else
                      let v = Memory.load64 m (e + 8) in
                      let e', _ = Htable.next m ht e h in
                      walk e' (v :: acc)
                  in
                  let e, _ = Htable.lookup m ht h in
                  (k, walk e []))
                (List.sort_uniq compare (keys @ extra)))
        in
        let direct = collect Htable.Tagged [] in
        let fallback = collect Htable.Tagged [ 99_999_999L ] in
        let legacy = collect Htable.Legacy [] in
        List.iter2
          (fun (k, a) (k', b) ->
            check Alcotest.int64 "same key" k k';
            check Alcotest.(list int64) "direct = legacy chains" a b)
          direct legacy;
        List.iter
          (fun (k, chain) ->
            if not (Int64.equal k 99_999_999L) then
              check Alcotest.(list int64) "fallback chain matches"
                (List.assoc k direct) chain)
          fallback);
  ]

let chain_cases =
  let dup_chain_test name profile keys =
    Alcotest.test_case name `Quick (fun () ->
        with_profile profile (fun create ->
            let m = fresh_mem () in
            let ht, _ = create m ~payload_size:8 ~capacity_hint:4 in
            (* three duplicates per key, interleaved so several grows land
               mid-stream; payload encodes (key, dup ordinal) *)
            List.iter
              (fun d ->
                List.iter
                  (fun k ->
                    let p, _ = Htable.insert m ht (Hashes.hash64 k) in
                    Memory.store64 m p Int64.(add (mul k 10L) (of_int d)))
                  keys)
              [ 0; 1; 2 ];
            check Alcotest.bool "grew" true
              (Htable.capacity m ht > 16 || Htable.count m ht <= 11);
            List.iter
              (fun k ->
                let h = Hashes.hash64 k in
                let e1, _ = Htable.lookup m ht h in
                let e2, _ = Htable.next m ht e1 h in
                let e3, _ = Htable.next m ht e2 h in
                let e4, _ = Htable.next m ht e3 h in
                check Alcotest.int "chain exhausted" 0 e4;
                check
                  Alcotest.(list int64)
                  "insertion order preserved across grow"
                  Int64.[ mul k 10L; add (mul k 10L) 1L; add (mul k 10L) 2L ]
                  (List.map (fun e -> Memory.load64 m (e + 8)) [ e1; e2; e3 ]))
              keys))
  in
  [
    dup_chain_test "duplicate chain order across grow (tagged)" Htable.Tagged
      (List.init 60 (fun i -> Int64.of_int ((i * 131071) + 7)));
    dup_chain_test "duplicate chain order across grow (direct)" Htable.Tagged
      (List.init 60 (fun i -> Int64.of_int i));
    dup_chain_test "duplicate chain order across grow (legacy)" Htable.Legacy
      (List.init 60 (fun i -> Int64.of_int ((i * 131071) + 7)));
  ]

let probe_cases =
  [
    Alcotest.test_case "tag false-positive rate is bounded" `Quick (fun () ->
        let m = fresh_mem () in
        let ht, _ = Htable.create m ~payload_size:8 ~capacity_hint:16 () in
        for i = 0 to 4095 do
          ignore (Htable.insert m ht (scrambled i))
        done;
        check Alcotest.bool "tagged" true (Htable.mode m ht = `Tagged);
        let s0 = Htable.stats () in
        let misses = 4096 in
        for i = 0 to misses - 1 do
          let e, _ = Htable.lookup m ht (scrambled (1_000_000 + i)) in
          check Alcotest.int "absent" 0 e
        done;
        let s1 = Htable.stats () in
        let hits = s1.Htable.tag_hits - s0.Htable.tag_hits in
        let words = s1.Htable.tag_words - s0.Htable.tag_words in
        (* each scanned word covers 4 slots; a 16-bit tag false-positives
           at ~2^-16 per occupied slot, so even with the forced-nonzero
           fold the expected count here is < 1. Allow a loose 16. *)
        check Alcotest.bool
          (Printf.sprintf "few false positives (%d hits / %d words)" hits
             words)
          true
          (hits <= 16);
        (* the whole point: a miss probe costs ~7 cycles, not 12+ *)
        let cycles =
          s1.Htable.probe_cycles - s0.Htable.probe_cycles
        in
        check Alcotest.bool
          (Printf.sprintf "miss probes are cheap (%d cycles / %d probes)"
             cycles misses)
          true
          (cycles < 9 * misses));
    Alcotest.test_case "lookup/next probe cost monotone and calibrated"
      `Quick (fun () ->
        let walk_costs ?(force_tagged = false) profile k dups =
          with_profile profile (fun create ->
              let m = fresh_mem () in
              let ht, _ = create m ~payload_size:8 ~capacity_hint:64 in
              (* a single repeated key keeps the direct window at span 0;
                 two far-apart warm-up keys force the tagged fallback *)
              if force_tagged then begin
                ignore (Htable.insert m ht (Hashes.hash64 7L));
                ignore (Htable.insert m ht (Hashes.hash64 777_777_777L));
                check Alcotest.bool "fallback forced" true
                  (Htable.mode m ht <> `Direct)
              end;
              let h = Hashes.hash64 k in
              for _ = 1 to dups do
                ignore (Htable.insert m ht h)
              done;
              let e0, c0 = Htable.lookup m ht h in
              let rec walk e acc =
                let e', c = Htable.next m ht e h in
                if e' = 0 then List.rev (c :: acc) else walk e' (c :: acc)
              in
              (c0, walk e0 []))
          (* per-step costs, last one is the exhausted probe *)
        in
        let dups = 12 in
        let c0, steps =
          walk_costs ~force_tagged:true Htable.Tagged 987_654_321L dups
        in
        check Alcotest.int "chain length" dups (List.length steps);
        check Alcotest.bool "tagged lookup base" true (c0 >= 6 && c0 <= 14);
        List.iter
          (fun c -> check Alcotest.bool "tagged step bounded" true (c >= 4 && c <= 14))
          steps;
        (* cumulative cost is strictly monotone in chain position *)
        let _ =
          List.fold_left
            (fun acc c ->
              let acc' = acc + c in
              check Alcotest.bool "monotone" true (acc' > acc);
              acc')
            c0 steps
        in
        let c0d, steps_d = walk_costs Htable.Tagged 5L dups in
        check Alcotest.bool "direct lookup flat" true (c0d <= 5);
        List.iter
          (fun c -> check Alcotest.int "direct step is 3" 3 c)
          steps_d;
        let c0l, steps_l = walk_costs Htable.Legacy 987_654_321L dups in
        check Alcotest.int "legacy lookup base" 8 c0l;
        (* legacy: consecutive dups sit in adjacent slots: 6 + 4*0 *)
        List.iter
          (fun c -> check Alcotest.bool "legacy step" true (c >= 6))
          steps_l);
    Alcotest.test_case "legacy profile preserves pre-tag charges" `Quick
      (fun () ->
        with_profile Htable.Legacy (fun create ->
            let m = fresh_mem () in
            let ht, ccost = create m ~payload_size:8 ~capacity_hint:16 in
            check Alcotest.int "create 200" 200 ccost;
            let _, icost = Htable.insert m ht 0xABCL in
            check Alcotest.int "insert 10" 10 icost;
            let e, lcost = Htable.lookup m ht 0xABCL in
            check Alcotest.bool "found" true (e <> 0);
            check Alcotest.int "lookup 8" 8 lcost;
            let _, ncost = Htable.next m ht e 0xABCL in
            check Alcotest.int "next 6" 6 ncost));
  ]

let accounting_cases =
  [
    Alcotest.test_case "create and growth charge for arena zeroing" `Quick
      (fun () ->
        let m = fresh_mem () in
        let ht, cost = Htable.create m ~payload_size:8 ~capacity_hint:1024 () in
        let esz = Htable.entry_size m ht in
        check Alcotest.bool
          (Printf.sprintf "create charges zeroing (%d)" cost)
          true
          (cost >= 200 + (1024 * esz / 32));
        (* force fallback then growth; the growing insert must charge at
           least the fresh arena's zero cost *)
        let max_insert = ref 0 in
        for i = 0 to 2999 do
          let _, c = Htable.insert m ht (scrambled i) in
          if c > !max_insert then max_insert := c
        done;
        let cap = Htable.capacity m ht in
        check Alcotest.bool "grew" true (cap * esz > 1024 * esz);
        check Alcotest.bool
          (Printf.sprintf "grow insert charged zeroing (max %d)" !max_insert)
          true
          (!max_insert >= cap * esz / 32));
    Alcotest.test_case "grow frees the old arena (leak regression)" `Quick
      (fun () ->
        let m = fresh_mem () in
        let live0 = Memory.live_data_bytes m in
        let freed0 = Memory.freed_data_bytes m in
        let ht, _ = Htable.create m ~payload_size:16 ~capacity_hint:16 () in
        for i = 0 to 4999 do
          ignore (Htable.insert m ht (scrambled i))
        done;
        let esz = Htable.entry_size m ht in
        let cap = Htable.capacity m ht in
        let live = Memory.live_data_bytes m - live0 in
        (* live = header + current arena + tag array; every older arena
           must have been freed *)
        check Alcotest.bool
          (Printf.sprintf "no abandoned arenas (live %d, arena %d)" live
             (cap * esz))
          true
          (live <= 64 + (cap * esz) + (cap * 2) + 512);
        check Alcotest.bool "growth freed bytes" true
          (Memory.freed_data_bytes m > freed0));
    Alcotest.test_case "zero net growth across 100 grow cycles" `Quick
      (fun () ->
        let m = fresh_mem () in
        let live0 = Memory.live_data_bytes m in
        let s0 = Htable.stats () in
        for _round = 1 to 12 do
          let scope = Memory.new_scope () in
          Memory.with_scope scope (fun () ->
              let ht, _ = Htable.create m ~payload_size:8 ~capacity_hint:16 () in
              (* 3000 sparse keys drive 16 -> 8192: nine grows per round *)
              for i = 0 to 2999 do
                ignore (Htable.insert m ht (scrambled i))
              done);
          Memory.free_scope m scope;
          check Alcotest.int "live returns to baseline" live0
            (Memory.live_data_bytes m)
        done;
        let s1 = Htable.stats () in
        check Alcotest.bool "exercised 100+ grows" true
          (s1.Htable.grows - s0.Htable.grows >= 100));
  ]

let guard_cases =
  [
    Alcotest.test_case "stale entry address after grow is rejected" `Quick
      (fun () ->
        let m = fresh_mem () in
        let ht, _ = Htable.create m ~payload_size:8 ~capacity_hint:16 () in
        let h = scrambled 1 in
        ignore (Htable.insert m ht h);
        let e, _ = Htable.lookup m ht h in
        check Alcotest.bool "found" true (e <> 0);
        (* grow several times: the old arena is freed and recycled *)
        for i = 2 to 2000 do
          ignore (Htable.insert m ht (scrambled i))
        done;
        (match Htable.next m ht e h with
        | exception Qcomp_runtime.Rt_error.Query_error msg ->
            check Alcotest.bool "mentions staleness" true
              (String.length msg > 0)
        | e', _ ->
            (* only acceptable if the address is coincidentally still a
               valid slot of the *current* arena — never silent garbage *)
            Alcotest.failf "stale next returned 0x%x" e');
        (* a fresh lookup still works *)
        let e2, _ = Htable.lookup m ht h in
        check Alcotest.bool "fresh lookup fine" true (e2 <> 0));
    Alcotest.test_case "zero hash is normalized in every layout" `Quick
      (fun () ->
        List.iter
          (fun profile ->
            with_profile profile (fun create ->
                let m = fresh_mem () in
                let ht, _ = create m ~payload_size:8 ~capacity_hint:4 in
                let p, _ = Htable.insert m ht 0L in
                Memory.store64 m p 9L;
                let e, _ = Htable.lookup m ht 0L in
                check Alcotest.bool "found" true (e <> 0);
                check Alcotest.int64 "payload" 9L (Memory.load64 m (e + 8))))
          [ Htable.Legacy; Htable.Tagged ]);
    Alcotest.test_case "iter visits every payload once (direct + tagged)"
      `Quick (fun () ->
        List.iter
          (fun mk ->
            let m = fresh_mem () in
            let ht, _ = Htable.create m ~payload_size:8 ~capacity_hint:4 () in
            for i = 1 to 40 do
              let p, _ = Htable.insert m ht (mk i) in
              Memory.store64 m p (Int64.of_int i)
            done;
            let seen = Hashtbl.create 40 in
            Htable.iter m ht (fun p ->
                Hashtbl.replace seen (Memory.load64 m p) ());
            check Alcotest.int "40 distinct" 40 (Hashtbl.length seen))
          [ (fun i -> Hashes.hash64 (Int64.of_int i)) (* direct *);
            (fun i -> scrambled i) (* tagged *) ]);
  ]

let suite =
  mode_cases @ chain_cases @ probe_cases @ accounting_cases @ guard_cases
