(* Serving under load: the admission queue (cap, sheds, tenant-fair
   dequeue), the latency histogram, the open-loop traffic generator, and
   the load-path properties that matter — an idle Domain pool burning no
   host CPU, concurrent cache misses deduplicating to one back-end
   compile, the bound-instance MRU cap disposing overflow (claims
   excepted), and the capped/uncapped overload differential on both
   serving drivers. *)

open Qcomp_engine
open Qcomp_server
open Qcomp_plan
open Qcomp_storage

let check = Alcotest.check

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* ---------------- admission queue ---------------- *)

let admission_tests =
  [
    Alcotest.test_case "cap bounds occupancy and counts sheds" `Quick (fun () ->
        let q = Admission.create ~cap:2 ~tenants:1 () in
        check Alcotest.bool "first admitted" true (Admission.offer q ~tenant:0 "a");
        check Alcotest.bool "second admitted" true (Admission.offer q ~tenant:0 "b");
        check Alcotest.bool "third shed" false (Admission.offer q ~tenant:0 "c");
        check Alcotest.int "length" 2 (Admission.length q);
        check Alcotest.int "sheds" 1 (Admission.sheds q);
        check Alcotest.int "admitted" 2 (Admission.admitted q);
        (* a take opens a slot again *)
        check Alcotest.(option string) "fifo head" (Some "a") (Admission.take q);
        check Alcotest.bool "readmits after take" true
          (Admission.offer q ~tenant:0 "d");
        check Alcotest.(option string) "order kept" (Some "b") (Admission.take q);
        check Alcotest.(option string) "order kept" (Some "d") (Admission.take q);
        check Alcotest.(option string) "empty" None (Admission.take q));
    Alcotest.test_case "dequeue is round-robin over tenants" `Quick (fun () ->
        let q = Admission.create ~tenants:3 () in
        List.iter
          (fun (t, x) -> assert (Admission.offer q ~tenant:t x))
          [ (0, "a"); (0, "b"); (1, "c"); (2, "d"); (2, "e") ];
        let drained = List.init 5 (fun _ -> Option.get (Admission.take q)) in
        (* tenant 0 holds 2 of 5 entries but gets only its fair turn *)
        check
          Alcotest.(list string)
          "fair interleave" [ "a"; "c"; "d"; "b"; "e" ] drained);
    Alcotest.test_case "peak tracks the high-water mark" `Quick (fun () ->
        let q = Admission.create ~tenants:2 () in
        assert (Admission.offer q ~tenant:0 1);
        assert (Admission.offer q ~tenant:1 2);
        assert (Admission.offer q ~tenant:1 3);
        ignore (Admission.take q);
        ignore (Admission.take q);
        assert (Admission.offer q ~tenant:0 4);
        check Alcotest.int "peak" 3 (Admission.peak q);
        check Alcotest.int "length" 2 (Admission.length q);
        check Alcotest.int "tenants" 2 (Admission.tenants q));
    Alcotest.test_case "invalid configs fail loud" `Quick (fun () ->
        check Alcotest.bool "zero tenants" true
          (raises_invalid (fun () ->
               ignore (Admission.create ~tenants:0 () : int Admission.t)));
        check Alcotest.bool "zero cap" true
          (raises_invalid (fun () ->
               ignore (Admission.create ~cap:0 ~tenants:1 () : int Admission.t)));
        (* out-of-range tenants wrap into a real slot (drivers normalize
           with mod, so a hostile tag can never crash the queue) *)
        let q = Admission.create ~tenants:2 () in
        assert (Admission.offer q ~tenant:5 7);
        check Alcotest.(option int) "tenant wraps to slot 1" (Some 7)
          (Admission.take q));
  ]

(* ---------------- latency histogram ---------------- *)

let hist_tests =
  [
    Alcotest.test_case "count, mean, max; empty percentile is zero" `Quick
      (fun () ->
        let h = Hist.create () in
        check (Alcotest.float 0.0) "empty percentile" 0.0 (Hist.percentile h 0.99);
        check Alcotest.int "empty count" 0 (Hist.count h);
        List.iter (Hist.add h) [ 0.001; 0.002; 0.003 ];
        check Alcotest.int "count" 3 (Hist.count h);
        check (Alcotest.float 1e-12) "mean exact" 0.002 (Hist.mean h);
        check (Alcotest.float 1e-12) "max exact" 0.003 (Hist.max_value h));
    Alcotest.test_case "percentiles are monotone and bracket the data" `Quick
      (fun () ->
        let h = Hist.create () in
        for i = 1 to 100 do
          Hist.add h (0.001 *. float_of_int i)
        done;
        let p50 = Hist.percentile h 0.5
        and p95 = Hist.percentile h 0.95
        and p99 = Hist.percentile h 0.99 in
        check Alcotest.bool "p50 <= p95" true (p50 <= p95);
        check Alcotest.bool "p95 <= p99" true (p95 <= p99);
        (* log buckets overestimate by at most one bucket width (< 19%) and
           never undershoot the true rank value *)
        check Alcotest.bool "p50 bracket" true (p50 >= 0.050 && p50 <= 0.0595);
        check Alcotest.bool "p99 bracket" true (p99 >= 0.099 && p99 <= 0.118);
        check Alcotest.bool "p100 within max bucket" true
          (Hist.percentile h 1.0 <= 0.1 *. 1.19));
    Alcotest.test_case "merge adds counts and preserves moments" `Quick
      (fun () ->
        let a = Hist.create () and b = Hist.create () in
        for _ = 1 to 100 do Hist.add a 0.001 done;
        for _ = 1 to 50 do Hist.add b 0.016 done;
        let m = Hist.merge a b in
        check Alcotest.int "count adds" 150 (Hist.count m);
        check (Alcotest.float 1e-12) "max is joint max" 0.016 (Hist.max_value m);
        check (Alcotest.float 1e-9) "mean is weighted" 0.006 (Hist.mean m);
        (* 100 of 150 samples at 1ms: p50 in the low bucket, p99 high *)
        check Alcotest.bool "p50 low" true (Hist.percentile m 0.5 <= 0.00125);
        check Alcotest.bool "p99 high" true (Hist.percentile m 0.99 >= 0.016);
        (* bucket totals survive the merge *)
        let total h =
          List.fold_left (fun a (_, _, c) -> a + c) 0 (Hist.buckets h)
        in
        check Alcotest.int "bucket mass" 150 (total m));
  ]

(* ---------------- traffic generator ---------------- *)

let tiny_pool = [ ("p", Algebra.Scan { table = "t"; filter = None }) ]

let pool5 =
  List.init 5 (fun i ->
      (Printf.sprintf "p%d" i, Algebra.Scan { table = "t"; filter = None }))

let trafficgen_tests =
  [
    Alcotest.test_case "stream is deterministic, ordered and in range" `Quick
      (fun () ->
        let mk () =
          Qcomp_workloads.Trafficgen.stream
            ~arrival:(Qcomp_workloads.Trafficgen.Poisson { qps = 1000.0 })
            ~seed:9L ~n:50 ~tenants:3 pool5
        in
        let s = mk () in
        check Alcotest.int "n requests" 50 (List.length s);
        check Alcotest.bool "same seed, same trace" true (mk () = s);
        let last = ref 0.0 in
        List.iter
          (fun (name, _, at, tenant) ->
            check Alcotest.bool "time non-decreasing" true (at >= !last);
            last := at;
            check Alcotest.bool "tenant in range" true (tenant >= 0 && tenant < 3);
            check Alcotest.bool "name from pool" true
              (List.mem_assoc name pool5))
          s);
    Alcotest.test_case "burst arrivals insert the idle gap" `Quick (fun () ->
        let idle = 0.5 in
        let s =
          Qcomp_workloads.Trafficgen.stream
            ~arrival:
              (Qcomp_workloads.Trafficgen.Burst
                 { qps = 1.0e6; burst = 4; idle_s = idle })
            ~seed:1L ~n:12 tiny_pool
        in
        let at = Array.of_list (List.map (fun (_, _, t, _) -> t) s) in
        (* within a burst gaps are ~1us; across the boundary >= idle *)
        check Alcotest.bool "gap at burst boundary" true
          (at.(4) -. at.(3) >= idle && at.(8) -. at.(7) >= idle);
        check Alcotest.bool "no stray idle inside a burst" true
          (at.(3) -. at.(0) < idle && at.(7) -. at.(4) < idle));
    Alcotest.test_case "invalid arguments fail loud" `Quick (fun () ->
        let poisson = Qcomp_workloads.Trafficgen.Poisson { qps = 100.0 } in
        let bad f = check Alcotest.bool "rejected" true (raises_invalid f) in
        bad (fun () ->
            ignore
              (Qcomp_workloads.Trafficgen.stream ~arrival:poisson ~seed:1L ~n:1
                 []));
        bad (fun () ->
            ignore
              (Qcomp_workloads.Trafficgen.stream
                 ~arrival:(Qcomp_workloads.Trafficgen.Poisson { qps = 0.0 })
                 ~seed:1L ~n:1 tiny_pool));
        bad (fun () ->
            ignore
              (Qcomp_workloads.Trafficgen.stream
                 ~arrival:
                   (Qcomp_workloads.Trafficgen.Burst
                      { qps = 1.0; burst = 0; idle_s = 0.0 })
                 ~seed:1L ~n:1 tiny_pool));
        bad (fun () ->
            ignore
              (Qcomp_workloads.Trafficgen.stream ~arrival:poisson ~seed:1L ~n:1
                 ~tenants:0 tiny_pool)))
  ]

(* ---------------- shared fixtures ---------------- *)

let schema =
  Schema.make "t"
    [ ("a", Schema.Int64); ("g", Schema.Int32); ("d", Schema.Decimal 2);
      ("s", Schema.Str) ]

let make_db ?(rows = 64) () =
  let db = Engine.create_db ~mem_size:(1 lsl 26) Qcomp_vm.Target.x64 in
  let _ =
    Engine.add_table db schema ~rows ~seed:123L
      [| Datagen.Uniform (-50, 50); Datagen.Uniform (0, 5);
         Datagen.DecimalRange (-300, 300); Datagen.Words (Datagen.word_pool, 1) |]
  in
  db

let scan = Algebra.Scan { table = "t"; filter = None }

let fixed_plans =
  [
    ("scan", scan);
    ("filter", Algebra.Filter { input = scan; pred = Expr.(col 1 <% int32 3) });
    ( "agg",
      Algebra.Group_by
        {
          input = scan;
          keys = [ Expr.col 1 ];
          aggs = [ Algebra.Count_star; Algebra.Sum (Expr.col 0) ];
        } );
    ( "sort",
      Algebra.Order_by
        { input = scan; keys = [ (Expr.col 0, Algebra.Desc) ]; limit = Some 10 } );
  ]

let multiset (r : Server.report) =
  List.sort compare
    (List.map
       (fun (q : Server.query_metrics) ->
         (q.Report.qm_name, q.Report.qm_rows, q.Report.qm_checksum))
       r.Report.r_queries)

let percentiles_ordered (r : Server.report) =
  r.Report.r_p99_latency >= r.Report.r_p95_latency
  && r.Report.r_p95_latency >= r.Report.r_p50_latency
  && r.Report.r_p99_first_row >= r.Report.r_p95_first_row
  && r.Report.r_p95_first_row >= r.Report.r_p50_first_row

(* the overload trace both drivers replay: bursts far above the drain
   rate, so a small cap must shed *)
let overload_requests =
  List.map
    (fun (name, plan, at, tenant) ->
      { Server.rq_name = name; rq_plan = plan; rq_arrival = at;
        rq_tenant = tenant })
    (Qcomp_workloads.Trafficgen.stream
       ~arrival:
         (Qcomp_workloads.Trafficgen.Burst
            { qps = 100_000.0; burst = 16; idle_s = 1e-5 })
       ~seed:42L ~n:60 ~tenants:2 fixed_plans)

let load_cfg cap =
  {
    Server.default_config with
    Server.mode = Server.Tiered;
    Server.admission_cap = cap;
    Server.tenants = 2;
  }

(* ---------------- load-path properties ---------------- *)

let idle_pool_cpu_test =
  Alcotest.test_case "idle pool burns no host CPU while waiting" `Quick
    (fun () ->
      (* one request 0.3s away: 2 worker domains (plus compile slots) sit
         on the condition variable the whole time. The pre-fix busy-poll
         spun every worker through the queue lock, burning ~1 CPU-second
         here; blocked domains burn none. *)
      let db = make_db () in
      let reqs =
        [ { Server.rq_name = "late"; rq_plan = scan; rq_arrival = 0.3;
            rq_tenant = 0 } ]
      in
      let cpu0 = Sys.time () and wall0 = Unix.gettimeofday () in
      let r = Server.run_requests ~parallel:2 db (load_cfg None) reqs in
      let cpu = Sys.time () -. cpu0 and wall = Unix.gettimeofday () -. wall0 in
      check Alcotest.int "query served" 1 (List.length r.Report.r_queries);
      check Alcotest.bool "waited for the arrival" true (wall >= 0.28);
      check Alcotest.bool
        (Printf.sprintf "cpu %.3fs for %.3fs wall" cpu wall)
        true
        (cpu < 0.15))

let dedup_compile_test =
  Alcotest.test_case "concurrent misses dedup to one back-end compile" `Quick
    (fun () ->
      let db = make_db ~rows:256 () in
      let cache = Code_cache.create ~capacity:8 in
      let plan = List.assoc "agg" fixed_plans in
      let domains =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                Code_cache.get_or_compile cache db ~backend:Engine.cranelift
                  ~stats:false ~name:"agg" plan))
      in
      let entries = List.map (fun d -> fst (Domain.join d)) domains in
      let ms = Code_cache.mem_stats cache in
      check Alcotest.int "one back-end compile" 1 ms.Code_cache.ms_backend_compiles;
      check Alcotest.int "one cache entry" 1 (Code_cache.stats cache).Lru.entries;
      (match entries with
      | e :: rest ->
          List.iter
            (fun e' ->
              check Alcotest.bool "all domains share the entry" true (e == e'))
            rest
      | [] -> Alcotest.fail "no entries"))

let to_pv = function
  | Paramize.V_int (_, v) -> Qcomp_backend.Artifact.Pv_int v
  | Paramize.V_str s -> Qcomp_backend.Artifact.Pv_str s

let mru_overflow_test =
  Alcotest.test_case
    "bound-instance MRU cap disposes overflow, claims survive" `Slow
    (fun () ->
      let db = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1 in
      let cache = Code_cache.create ~capacity:8 in
      let tname, mk = Qcomp_workloads.Paramgen.templates.(0) in
      let shape, vals0 = Paramize.normalize (mk 0) in
      let vec k = Array.map to_pv (snd (Paramize.normalize (mk k))) in
      let entry, _ =
        Code_cache.get_or_compile cache db ~backend:Engine.stencil
          ~params:(Array.map to_pv vals0) ~name:tname shape
      in
      (* pin v0 alive through the churn *)
      let _, cm0, fresh0 =
        Code_cache.force cache db ~params:(vec 0) ~claim:true entry
      in
      check Alcotest.bool "v0 reused the submitter's instance" false fresh0;
      (* churn 16 fresh vectors through the cap-8 instance list: live code
         must reach a steady state, not grow per vector *)
      let live () = Qcomp_vm.Emu.live_code_bytes db.Engine.emu in
      let freed () = (Code_cache.mem_stats cache).Code_cache.ms_bytes_freed in
      let steady = ref 0 and freed_last = ref (freed ()) in
      for k = 1 to 16 do
        let _, _, fresh = Code_cache.force cache db ~params:(vec k) entry in
        check Alcotest.bool "distinct vector binds fresh" true fresh;
        if k = 9 then steady := live ();
        if k > 9 then begin
          check Alcotest.bool
            (Printf.sprintf "live code stable at vector %d" k)
            true
            (live () <= !steady);
          check Alcotest.bool "disposal accounted in bytes_freed" true
            (freed () > !freed_last)
        end;
        freed_last := freed ()
      done;
      (* the claimed instance outlived 16 evictions' worth of churn *)
      let _, cm0', fresh0' = Code_cache.force cache db ~params:(vec 0) entry in
      check Alcotest.bool "claimed instance not disposed" false fresh0';
      check Alcotest.bool "same module returned" true (cm0 == cm0');
      Code_cache.release cache entry cm0;
      check Alcotest.int "no pins left" 0 (Code_cache.live_pins cache))

let overload_event_test =
  Alcotest.test_case "overload differential on the event driver" `Quick
    (fun () ->
      let run cap = Server.run_requests (make_db ~rows:1024 ()) (load_cfg cap)
          overload_requests
      in
      let capped = run (Some 2) and capped2 = run (Some 2) in
      let uncapped = run None in
      check Alcotest.int "uncapped admits everything" 60
        (List.length uncapped.Report.r_queries);
      check Alcotest.(list string) "uncapped sheds none" []
        (List.map (fun s -> s.Report.sh_name) uncapped.Report.r_sheds);
      check Alcotest.bool "capped sheds under burst" true
        (capped.Report.r_sheds <> []);
      check Alcotest.int "completed + shed = offered" 60
        (List.length capped.Report.r_queries
        + List.length capped.Report.r_sheds);
      check Alcotest.bool "queue peak bounded by cap" true
        (capped.Report.r_queue_peak <= 2);
      (* every admitted query is bit-identical to its uncapped twin *)
      let unc = multiset uncapped in
      check Alcotest.bool "admitted results identical uncapped" true
        (List.for_all (fun k -> List.mem k unc) (multiset capped));
      (* sheds are part of the deterministic report *)
      check Alcotest.bool "same seed, same sheds" true
        (capped.Report.r_sheds = capped2.Report.r_sheds
        && multiset capped = multiset capped2
        && capped.Report.r_makespan = capped2.Report.r_makespan);
      check Alcotest.bool "percentiles ordered (capped)" true
        (percentiles_ordered capped);
      check Alcotest.bool "percentiles ordered (uncapped)" true
        (percentiles_ordered uncapped))

let overload_pool_test =
  Alcotest.test_case "overload differential on the domain pool" `Quick
    (fun () ->
      let uncapped_ref =
        multiset
          (Server.run_requests (make_db ~rows:1024 ()) (load_cfg None)
             overload_requests)
      in
      (* over-provisioned: everything must be admitted, results must match
         the deterministic driver bit-for-bit *)
      let roomy =
        Server.run_requests ~parallel:2 (make_db ~rows:1024 ())
          (load_cfg (Some 1000)) overload_requests
      in
      check Alcotest.(list string) "roomy cap sheds none" []
        (List.map (fun s -> s.Report.sh_name) roomy.Report.r_sheds);
      check
        Alcotest.(list (triple string int int64))
        "pool results = event-driver results" uncapped_ref (multiset roomy);
      check Alcotest.bool "percentiles ordered (pool)" true
        (percentiles_ordered roomy);
      (* tight cap: sheds are wall-clock here, but accounting must close
         and every admitted result must still be bit-exact *)
      let tight =
        Server.run_requests ~parallel:2 (make_db ~rows:1024 ())
          (load_cfg (Some 2)) overload_requests
      in
      check Alcotest.int "completed + shed = offered" 60
        (List.length tight.Report.r_queries + List.length tight.Report.r_sheds);
      check Alcotest.bool "queue peak bounded by cap" true
        (tight.Report.r_queue_peak <= 2);
      check Alcotest.bool "admitted results identical uncapped" true
        (List.for_all (fun k -> List.mem k uncapped_ref) (multiset tight)))

let sharded_cache_test =
  Alcotest.test_case "sharded cache serves identically and snapshots" `Quick
    (fun () ->
      let stream = Server.make_stream ~seed:7L ~n:40 fixed_plans in
      let cfg shards =
        {
          Server.default_config with
          Server.mode = Server.Cached;
          Server.cache_capacity = 32;
          Server.cache_shards = shards;
        }
      in
      let one = Server.run (make_db ~rows:1024 ()) (cfg 1) stream in
      let four_cache = Code_cache.create_sharded ~capacity:32 ~shards:4 in
      let four =
        Server.run ~cache:four_cache (make_db ~rows:1024 ()) (cfg 4) stream
      in
      check Alcotest.int "shard count" 4 (Code_cache.shard_count four_cache);
      check
        Alcotest.(list (triple string int int64))
        "4 shards = 1 shard" (multiset one) (multiset four);
      check Alcotest.int "same hits"
        one.Report.r_cache.Lru.hits four.Report.r_cache.Lru.hits;
      check Alcotest.int "same misses"
        one.Report.r_cache.Lru.misses four.Report.r_cache.Lru.misses;
      (* snapshot from a 4-shard cache reloads into a 2-shard one *)
      let snap = Filename.temp_file "qcss" ".snap" in
      Fun.protect
        ~finally:(fun () -> Sys.remove snap)
        (fun () ->
          Code_cache.save four_cache snap;
          let db2 = make_db ~rows:1024 () in
          let warm = Code_cache.load ~capacity:32 ~shards:2 ~db:db2 snap in
          check Alcotest.int "entries survive re-sharding"
            (Code_cache.stats four_cache).Lru.entries
            (Code_cache.stats warm).Lru.entries;
          let rewarm = Server.run ~cache:warm db2 (cfg 2) stream in
          check Alcotest.int "warm run never misses" 0
            (Code_cache.stats warm).Lru.misses;
          check
            Alcotest.(list (triple string int int64))
            "warm results identical" (multiset one) (multiset rewarm)))

let suite =
  admission_tests @ hist_tests @ trafficgen_tests
  @ [
      idle_pool_cpu_test;
      dedup_compile_test;
      mru_overflow_test;
      overload_event_test;
      overload_pool_test;
      sharded_cache_test;
    ]
