let () =
  Alcotest.run "qcomp"
    [
      ("i128", Test_i128.suite);
      ("hashes", Test_hashes.suite);
      ("vec", Test_vec.suite);
      ("bitset", Test_bitset.suite);
      ("btree", Test_btree.suite);
      ("rng", Test_rng.suite);
      ("timing", Test_timing.suite);
      ("ir", Test_ir.suite);
      ("graph", Test_graph.suite);
      ("asm", Test_asm.suite);
      ("emu", Test_emu.suite);
      ("runtime", Test_runtime.suite);
      ("htable", Test_htable.suite);
      ("expr", Test_expr.suite);
      ("storage", Test_storage.suite);
      ("codegen", Test_codegen.suite);
      ("layout", Test_layout.suite);
      ("interp", Test_interp.suite);
      ("engine", Test_engine.suite);
      ("elf", Test_elf.suite);
      ("jitlink", Test_jitlink.suite);
      ("cparse", Test_cparse.suite);
      ("lpasses", Test_lpasses.suite);
      ("backends", Test_backends.suite);
      ("stencil", Test_stencil.suite);
      ("workloads", Test_workloads.suite);
      ("fuzz-plans", Test_fuzz_plans.suite);
      ("props-extra", Test_props_extra.suite);
      ("emu-oracle", Test_emu_oracle.suite);
      ("server", Test_server.suite);
      ("param", Test_param.suite);
      ("load", Test_load.suite);
      ("morsel", Test_morsel.suite);
    ]
