(* Intra-query morsel-driven parallelism: the pipeline/morsel API surface,
   the morsel-partitioned differential (every TPC-H query at intra 1/2/4
   must produce the sequential multiset, across back-ends and both serving
   drivers), the wall-vs-total cycle accounting, and the two-phase build's
   exact-size merge under genuinely concurrent lane-local builds. *)

open Qcomp_vm
open Qcomp_engine
open Qcomp_server
module Htable = Qcomp_runtime.Htable
module Hashes = Qcomp_support.Hashes
module Spec = Qcomp_workloads.Spec

let check = Alcotest.check
let timing = Qcomp_support.Timing.create ~enabled:false ()

let tpch_queries =
  List.map
    (fun (q : Spec.query) -> (q.Spec.q_name, q.Spec.q_plan))
    (Experiments.queries_of Experiments.Tpch)

(* Lane merges emit rows in lane order, not sequential insert order, so
   every comparison here is over the sorted multiset. *)
let multiset_checksum rows = Engine.checksum (List.sort compare rows)

(* Run [cq]/[cm] to completion, optionally over a lane pool; returns
   (multiset checksum, row count, total cycles, wall cycles). Lane
   contexts are permanent, so callers create one scheduler per db and
   reuse it across queries. *)
let run_lanes ?sched db cq cm ~morsel =
  let ex = Exec.start ?sched db cq cm in
  Fun.protect ~finally:(fun () -> Exec.dispose ex) @@ fun () ->
  Exec.run_to_end ex ~morsel;
  let r = Exec.result ex in
  ( multiset_checksum r.Engine.rows,
    r.Engine.output_count,
    Exec.cycles ex,
    Exec.wall_cycles ex )

(* ---------------- the Morsel/Pipeline API surface ---------------- *)

let api_cases =
  [
    Alcotest.test_case "Morsel ranges: clamp, rows, split, chunks" `Quick
      (fun () ->
        let m = Engine.Morsel.make ~lo:10 ~hi:110 in
        check Alcotest.int "rows" 100 (Engine.Morsel.rows m);
        let c = Engine.Morsel.clamp Engine.Morsel.whole ~rows:42 in
        check Alcotest.int "whole clamps" 42 (Engine.Morsel.rows c);
        let parts = Engine.Morsel.split m ~parts:3 in
        check Alcotest.int "split count" 3 (List.length parts);
        check Alcotest.int "split covers" 100
          (List.fold_left (fun a p -> a + Engine.Morsel.rows p) 0 parts);
        (* contiguous and ordered *)
        ignore
          (List.fold_left
             (fun lo (p : Engine.Morsel.t) ->
               check Alcotest.int "contiguous" lo p.Engine.Morsel.lo;
               p.Engine.Morsel.hi)
             10 parts);
        let chunks = Engine.Morsel.chunks m ~size:33 in
        check Alcotest.int "chunk count" 4 (List.length chunks);
        List.iter
          (fun p ->
            check Alcotest.bool "chunk size" true (Engine.Morsel.rows p <= 33))
          chunks);
    Alcotest.test_case
      "pipelines split at breakers; only sinked table bodies parallelize"
      `Quick (fun () ->
        let db = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1 in
        List.iter
          (fun (name, plan) ->
            let cq = Engine.plan_to_ir db ~name plan in
            let pipes = Engine.Pipeline.of_compiled cq in
            check Alcotest.bool (name ^ ": has pipelines") true (pipes <> []);
            (* pipelines partition the step list in order *)
            let steps =
              List.concat_map
                (fun (p : Engine.Pipeline.t) ->
                  p.Engine.Pipeline.p_prologue
                  @ match p.Engine.Pipeline.p_body with
                    | Some s -> [ s ]
                    | None -> [])
                pipes
            in
            check Alcotest.int (name ^ ": steps partitioned")
              (List.length cq.Qcomp_codegen.Codegen.steps)
              (List.length steps);
            List.iter
              (fun (p : Engine.Pipeline.t) ->
                match p.Engine.Pipeline.p_body with
                | Some s ->
                    check Alcotest.bool (name ^ ": body is table-ranged") true
                      (match s.Engine.Pipeline.range with
                      | `Table _ -> true
                      | `Whole -> false);
                    if Engine.Pipeline.parallelizable p then
                      check Alcotest.bool (name ^ ": parallel body has sinks")
                        true
                        (s.Engine.Pipeline.sinks <> [])
                | None -> ())
              pipes)
          tpch_queries);
  ]

(* ---------------- morsel-partitioned differential ---------------- *)

(* Every TPC-H query, sequential vs 2 and 4 simulated lanes on the stencil
   tier: identical multisets, and wall cycles never exceed total work. *)
let lanes_differential_case =
  Alcotest.test_case "all TPC-H queries: intra 1/2/4 multisets identical"
    `Quick (fun () ->
      let db = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1 in
      let scheds =
        List.map
          (fun lanes -> (lanes, Morsel_sched.create ~parallel:false db ~lanes))
          [ 2; 4 ]
      in
      List.iter
        (fun (name, plan) ->
          Engine.with_compiled db ~backend:Engine.stencil ~timing ~name plan
            (fun cq cm _ ->
              let sum1, n1, c1, w1 = run_lanes db cq cm ~morsel:128 in
              check Alcotest.int (name ^ ": serial wall = total") c1 w1;
              List.iter
                (fun (lanes, sched) ->
                  let sum, n, c, w = run_lanes ~sched db cq cm ~morsel:128 in
                  check Alcotest.int
                    (Printf.sprintf "%s: rows @%d lanes" name lanes)
                    n1 n;
                  check Alcotest.int64
                    (Printf.sprintf "%s: multiset @%d lanes" name lanes)
                    sum1 sum;
                  check Alcotest.bool
                    (Printf.sprintf "%s: wall <= total @%d lanes" name lanes)
                    true (w <= c))
                scheds))
        tpch_queries)

(* A heavy scan-dominated aggregate must actually get faster in modeled
   wall-clock when its body fans out. *)
let speedup_case =
  Alcotest.test_case "scan-heavy aggregate: intra 4 wall < serial wall"
    `Quick (fun () ->
      let db = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:4 in
      let name, plan =
        List.find (fun (n, _) -> n = "q01") tpch_queries
      in
      let sched = Morsel_sched.create ~parallel:false db ~lanes:4 in
      Engine.with_compiled db ~backend:Engine.stencil ~timing ~name plan
        (fun cq cm _ ->
          let _, _, _, w1 = run_lanes db cq cm ~morsel:256 in
          let _, _, c4, w4 = run_lanes ~sched db cq cm ~morsel:256 in
          check Alcotest.bool "wall shrinks" true (w4 < w1);
          check Alcotest.bool "total work >= wall" true (c4 > w4)))

(* A smaller query subset across every applicable back-end at 4 lanes:
   each must reproduce its own sequential multiset, and all back-ends must
   agree with each other. *)
let backend_matrix_case =
  Alcotest.test_case "query subset: every back-end at intra 4 agrees" `Quick
    (fun () ->
      let db = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1 in
      let sched = Morsel_sched.create ~parallel:false db ~lanes:4 in
      let subset =
        List.filter
          (fun (n, _) -> List.mem n [ "q01"; "q03"; "q06"; "q18" ])
          tpch_queries
      in
      List.iter
        (fun (name, plan) ->
          let reference = ref None in
          List.iter
            (fun backend ->
              let bname = Qcomp_backend.Backend.name backend in
              Engine.with_compiled db ~backend ~timing ~name plan
                (fun cq cm _ ->
                  let sum1, n1, _, _ = run_lanes db cq cm ~morsel:97 in
                  let sum4, n4, _, _ = run_lanes ~sched db cq cm ~morsel:97 in
                  check Alcotest.int64
                    (Printf.sprintf "%s/%s: 4 lanes = serial" name bname)
                    sum1 sum4;
                  check Alcotest.int
                    (Printf.sprintf "%s/%s: rows" name bname)
                    n1 n4;
                  match !reference with
                  | None -> reference := Some (sum1, n1)
                  | Some (rs, rn) ->
                      check Alcotest.int64
                        (Printf.sprintf "%s/%s: cross-backend" name bname)
                        rs sum4;
                      check Alcotest.int
                        (Printf.sprintf "%s/%s: cross-backend rows" name bname)
                        rn n4))
            (Engine.all_backends db))
        subset)

(* ---------------- both serving drivers ---------------- *)

let server_intra_case =
  Alcotest.test_case "event driver at intra 2 reproduces run_plan" `Quick
    (fun () ->
      let db = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1 in
      let cfg = { Server.default_config with Server.intra = 2; workers = 2 } in
      let report = Server.run db cfg tpch_queries in
      check Alcotest.int "all served"
        (List.length tpch_queries)
        (List.length report.Report.r_queries);
      let vdb = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1 in
      List.iter
        (fun (q : Report.query_metrics) ->
          let plan = List.assoc q.Report.qm_name tpch_queries in
          let expect =
            Engine.with_compiled vdb ~backend:Engine.interpreter ~timing
              ~name:q.Report.qm_name plan (fun cq cm _ ->
                multiset_checksum (Engine.execute vdb cq cm).Engine.rows)
          in
          check Alcotest.int64 (q.Report.qm_name ^ ": served checksum") expect
            q.Report.qm_checksum)
        report.Report.r_queries)

let pool_intra_case =
  Alcotest.test_case "domain pool at domains 2 x intra 2 reproduces results"
    `Quick (fun () ->
      let stream =
        List.filter
          (fun (n, _) -> List.mem n [ "q01"; "q03"; "q06"; "q12"; "q18" ])
          tpch_queries
      in
      let cfg =
        {
          Server.default_config with
          Server.workers = 2;
          intra = 2;
          mean_gap_s = 0.0;
        }
      in
      let db = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1 in
      let preport = Pool.run db ~domains:2 cfg stream in
      let sdb = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1 in
      let sreport = Server.run sdb cfg stream in
      let key (q : Report.query_metrics) =
        (q.Report.qm_name, q.Report.qm_rows, q.Report.qm_checksum)
      in
      let multiset (r : Report.t) =
        List.sort compare (List.map key r.Report.r_queries)
      in
      check
        Alcotest.(list (triple string int int64))
        "pool = event driver" (multiset sreport) (multiset preport))

(* ---------------- two-phase build machinery ---------------- *)

let exact_capacity_case =
  Alcotest.test_case "exact_capacity never admits a grow" `Quick (fun () ->
      let m = Memory.create (1 lsl 24) in
      List.iter
        (fun n ->
          let ht, _ =
            Htable.create m ~payload_size:8
              ~capacity_hint:(Htable.exact_capacity n) ()
          in
          let cap0 = Htable.capacity m ht in
          for i = 1 to n do
            ignore (Htable.insert m ht (Hashes.hash64 (Int64.of_int i)))
          done;
          check Alcotest.int
            (Printf.sprintf "capacity stable at %d" n)
            cap0 (Htable.capacity m ht);
          check Alcotest.int (Printf.sprintf "count %d" n) n (Htable.count m ht))
        [ 0; 1; 7; 100; 1000; 5000 ])

let concurrent_build_merge_case =
  Alcotest.test_case
    "grow-under-concurrent-build: lane tables merge exactly" `Quick
    (fun () ->
      let m = Memory.create (1 lsl 26) in
      let lanes = 4 and per_lane = 5000 in
      (* each domain hammers its own lane-local table in the shared memory
         — tiny capacity hint forces several grows mid-build on every lane
         while the others are also allocating *)
      let build lane () =
        let ht, _ = Htable.create m ~payload_size:8 ~capacity_hint:4 () in
        for i = 0 to per_lane - 1 do
          let key = Int64.of_int ((lane * per_lane) + i) in
          let p, _ = Htable.insert m ht (Hashes.hash64 key) in
          Memory.store64 m p key
        done;
        ht
      in
      let doms = Array.init lanes (fun l -> Domain.spawn (build l)) in
      let lane_tables = Array.map Domain.join doms in
      let total = lanes * per_lane in
      let dst, _ =
        Htable.create m ~payload_size:8
          ~capacity_hint:(Htable.exact_capacity total) ()
      in
      let cap0 = Htable.capacity m dst in
      Array.iter (fun src -> ignore (Htable.merge_into m ~dst ~src)) lane_tables;
      check Alcotest.int "no grow during merge" cap0 (Htable.capacity m dst);
      check Alcotest.int "all entries merged" total (Htable.count m dst);
      (* every key is present exactly once with its payload *)
      for k = 0 to total - 1 do
        let key = Int64.of_int k in
        let e, _ = Htable.lookup m dst (Hashes.hash64 key) in
        if e = 0 then Alcotest.failf "key %d missing after merge" k;
        if not (Int64.equal (Memory.load64 m (e + 8)) key) then
          Alcotest.failf "key %d: wrong payload" k;
        let e', _ = Htable.next m dst e (Hashes.hash64 key) in
        if e' <> 0 && Int64.equal (Memory.load64 m (e' + 8)) key then
          Alcotest.failf "key %d merged twice" k
      done)

let suite =
  api_cases
  @ [
      lanes_differential_case; speedup_case; backend_matrix_case;
      server_intra_case; pool_intra_case; exact_capacity_case;
      concurrent_build_merge_case;
    ]
