(* Parameterized-plan specialization: the normalizer (literal extraction
   and re-substitution), wire transport of Param nodes, shape-key
   fingerprints, the param-version fold of snapshot keys, and the
   differential that matters — a shape compiled once with parameter holes
   and bound per literal vector must produce byte-identical results to
   compiling each literal-bearing plan whole, on every param-capable
   back-end and through both serving drivers. *)

open Qcomp_support
open Qcomp_engine
open Qcomp_server
open Qcomp_plan

let check = Alcotest.check

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* One plan per Zipf template at two literal indices: every eligible
   literal kind is covered (Date/Decimal in zrev, Int32 in zsize, Date in
   zord, SSO-short Str in zseg). *)
let variant i k =
  let tname, mk = Qcomp_workloads.Paramgen.templates.(i) in
  (Printf.sprintf "%s_%d" tname k, mk k)

let template_indices =
  List.init (Array.length Qcomp_workloads.Paramgen.templates) Fun.id

let sample_plans =
  List.concat_map (fun i -> [ variant i 0; variant i 7 ]) template_indices

let to_pv = function
  | Paramize.V_int (_, v) -> Qcomp_backend.Artifact.Pv_int v
  | Paramize.V_str s -> Qcomp_backend.Artifact.Pv_str s

(* ---------------- normalizer ---------------- *)

let normalize_roundtrip_test =
  Alcotest.test_case "normalize extracts literals, denormalize restores them"
    `Quick (fun () ->
      List.iter
        (fun (nm, p) ->
          let shape, vals = Paramize.normalize p in
          if Array.length vals = 0 then
            Alcotest.failf "%s: no literal extracted" nm;
          if shape = p then Alcotest.failf "%s: shape identical to plan" nm;
          (* denormalize . normalize = id *)
          if Paramize.denormalize shape vals <> p then
            Alcotest.failf "%s: denormalize(normalize p) <> p" nm;
          (* a shape is a fixed point: nothing left to extract *)
          let shape', vals' = Paramize.normalize shape in
          if shape' <> shape || Array.length vals' <> 0 then
            Alcotest.failf "%s: normalizing a shape is not the identity" nm)
        sample_plans)

let normalize_arity_test =
  Alcotest.test_case "denormalize rejects a wrong-arity vector" `Quick
    (fun () ->
      let _, p = variant 0 3 in
      let shape, vals = Paramize.normalize p in
      check Alcotest.bool "short vector fails loud" true
        (raises_invalid (fun () ->
             ignore
               (Paramize.denormalize shape
                  (Array.sub vals 0 (Array.length vals - 1)))));
      check Alcotest.bool "long vector fails loud" true
        (raises_invalid (fun () ->
             ignore (Paramize.denormalize shape (Array.append vals vals)))))

(* ---------------- wire transport ---------------- *)

let wire_param_test =
  Alcotest.test_case "wire codec round-trips Param nodes, rejects corruption"
    `Quick (fun () ->
      List.iter
        (fun (nm, p) ->
          let shape, _ = Paramize.normalize p in
          let s = Wire.to_string shape in
          if Wire.of_string s <> shape then
            Alcotest.failf "%s: decoded shape <> shape" nm;
          check Alcotest.bool (nm ^ " truncation fails loud") true
            (raises_invalid (fun () ->
                 Wire.of_string (String.sub s 0 (String.length s - 1))));
          check Alcotest.bool (nm ^ " trailing bytes fail loud") true
            (raises_invalid (fun () -> Wire.of_string (s ^ "\x00"))))
        sample_plans)

(* ---------------- shape keys ---------------- *)

let shape_key_test =
  Alcotest.test_case "literal variants share a shape key, shapes never collide"
    `Quick (fun () ->
      (* same template, different literals: identical shape fingerprint *)
      List.iter
        (fun i ->
          let _, pa = variant i 1 and _, pb = variant i 9 in
          let sa, _ = Paramize.normalize pa and sb, _ = Paramize.normalize pb in
          if sa <> sb then Alcotest.failf "template %d: shapes differ" i;
          if not (Int64.equal (Fingerprint.plan sa) (Fingerprint.plan sb)) then
            Alcotest.failf "template %d: shape fingerprints differ" i)
        template_indices;
      (* distinct templates: pairwise-distinct shape fingerprints; and the
         exact (literal-bearing) plans of one template stay distinct from
         each other, so an exact-keyed fallback entry can never alias *)
      let shape_keys =
        List.map
          (fun i ->
            Fingerprint.plan (fst (Paramize.normalize (snd (variant i 0)))))
          template_indices
      in
      let exact_keys =
        (* zseg aliases literals mod 5, so use zrev which never aliases *)
        List.init 8 (fun k -> Fingerprint.plan (snd (variant 0 k)))
      in
      let distinct l =
        List.length (List.sort_uniq Int64.compare l) = List.length l
      in
      check Alcotest.bool "shape keys pairwise distinct" true
        (distinct shape_keys);
      check Alcotest.bool "exact keys pairwise distinct" true
        (distinct exact_keys);
      (* a shape never collides with any exact plan of the same template *)
      List.iter
        (fun i ->
          let _, p = variant i 2 in
          let shape, _ = Paramize.normalize p in
          if Int64.equal (Fingerprint.plan shape) (Fingerprint.plan p) then
            Alcotest.failf "template %d: shape key collides with exact key" i)
        template_indices)

let key_v_param_version_test =
  Alcotest.test_case "key_v folds the parameter-format version" `Quick
    (fun () ->
      let _, p = variant 0 0 in
      let shape, _ = Paramize.normalize p in
      let k v =
        Fingerprint.key_v ~param_version:v ~version:1 ~backend:"stencil"
          ~target:"x86-64" shape
      in
      let base = k Paramize.format_version in
      if Int64.equal base (k (Paramize.format_version + 1)) then
        Alcotest.fail "param_version flip does not change key_v";
      (* the same flip must make a saved snapshot record unfindable *)
      let implicit =
        Fingerprint.key_v ~version:1 ~backend:"stencil" ~target:"x86-64" shape
      in
      if Int64.equal implicit (k (Paramize.format_version + 1)) then
        Alcotest.fail "flipped param_version collides with the default key")

(* ---------------- back-end differential ---------------- *)

(* compile the shape with parameter holes, bind [vals], execute *)
let run_param db backend ~name shape vals =
  let timing = Timing.create ~enabled:false () in
  let cq = Engine.plan_to_ir db ~name shape in
  let cm =
    Qcomp_backend.Backend.compile_module backend ~params:(Array.map to_pv vals)
      ~timing ~emu:db.Engine.emu ~registry:db.Engine.registry
      ~unwind:db.Engine.unwind cq.Qcomp_codegen.Codegen.modul
  in
  Fun.protect
    ~finally:(fun () -> Engine.dispose_module db cm)
    (fun () ->
      let r = Engine.execute db cq cm in
      (r.Engine.output_count, Engine.checksum r.Engine.rows))

let backend_differential_test =
  Alcotest.test_case
    "parameterized execution is byte-identical to whole-plan compilation"
    `Slow (fun () ->
      let db = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1 in
      let timing = Timing.create ~enabled:false () in
      let param_backends =
        List.filter Qcomp_backend.Backend.supports_params
          (Engine.all_backends db)
      in
      if List.length param_backends < 3 then
        Alcotest.fail "expected >= 3 param-capable back-ends on x86-64";
      List.iter
        (fun (nm, p) ->
          (* the oracle: the literal-bearing plan compiled whole *)
          let expect_rows, expect_sum =
            Engine.with_compiled db ~backend:Engine.interpreter ~timing
              ~name:nm p (fun cq cm _ ->
                let r = Engine.execute db cq cm in
                (r.Engine.output_count, Engine.checksum r.Engine.rows))
          in
          let shape, vals = Paramize.normalize p in
          List.iter
            (fun b ->
              let bname = Qcomp_backend.Backend.name b in
              let rows, sum = run_param db b ~name:nm shape vals in
              check Alcotest.int
                (Printf.sprintf "%s/%s rows" nm bname)
                expect_rows rows;
              check Alcotest.int64
                (Printf.sprintf "%s/%s checksum" nm bname)
                expect_sum sum)
            param_backends)
        sample_plans)

let non_param_backend_refusal_test =
  Alcotest.test_case "non-param back-ends refuse parameter vectors" `Quick
    (fun () ->
      let db = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1 in
      let nm, p = variant 3 1 in
      let shape, vals = Paramize.normalize p in
      let holdouts =
        List.filter
          (fun b -> not (Qcomp_backend.Backend.supports_params b))
          (Engine.all_backends db)
      in
      if holdouts = [] then Alcotest.fail "expected some non-param back-end";
      List.iter
        (fun b ->
          check Alcotest.bool
            (Qcomp_backend.Backend.name b ^ " refuses params")
            true
            (raises_invalid (fun () -> ignore (run_param db b ~name:nm shape vals))))
        holdouts)

(* a literal in a never-consumed projection column is extracted by the
   normalizer but dead-code-eliminated by codegen: the artifact's
   parameter descriptor must still be sized by declaration so the full
   vector binds (found by the plan fuzzer) *)
let dead_hole_test =
  Alcotest.test_case "a hole in dead code still binds its full vector" `Quick
    (fun () ->
      let cu = Qcomp_storage.Schema.col_index Qcomp_workloads.Tpch.customer in
      let p =
        Algebra.Group_by
          {
            input =
              Algebra.Project
                {
                  input = Algebra.Scan { table = "customer"; filter = None };
                  exprs = [ Expr.col (cu "c_nationkey"); Expr.int32 42 ];
                };
            keys = [ Expr.col 0 ];
            aggs = [ Algebra.Count_star ];
          }
      in
      let shape, vals = Paramize.normalize p in
      check Alcotest.int "dead literal extracted" 1 (Array.length vals);
      let db = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1 in
      let timing = Timing.create ~enabled:false () in
      let expect_rows, expect_sum =
        Engine.with_compiled db ~backend:Engine.interpreter ~timing
          ~name:"dead_hole" p (fun cq cm _ ->
            let r = Engine.execute db cq cm in
            (r.Engine.output_count, Engine.checksum r.Engine.rows))
      in
      (* stencil is artifact-backed: before the declared-signature fix this
         raised Invalid_argument at link time *)
      let rows, sum = run_param db Engine.stencil ~name:"dead_hole" shape vals in
      check Alcotest.int "rows" expect_rows rows;
      check Alcotest.int64 "checksum" expect_sum sum)

(* ---------------- serving differential ---------------- *)

let pairs qs =
  List.map
    (fun (q : Qcomp_workloads.Spec.query) ->
      (q.Qcomp_workloads.Spec.q_name, q.Qcomp_workloads.Spec.q_plan))
    qs

let multiset (r : Server.report) =
  List.sort compare
    (List.map
       (fun (q : Server.query_metrics) ->
         (q.Report.qm_name, q.Report.qm_rows, q.Report.qm_checksum))
       r.Report.r_queries)

let serving_differential_test =
  Alcotest.test_case
    "both serving drivers: paramized results = whole-plan results" `Slow
    (fun () ->
      let stream = pairs (Qcomp_workloads.Paramgen.stream ~seed:11L ~n:30) in
      let mkdb () =
        Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1
      in
      let cfg = Server.default_config in
      let on = Server.run (mkdb ()) { cfg with Server.paramize = true } stream in
      let off =
        Server.run (mkdb ()) { cfg with Server.paramize = false } stream
      in
      check
        Alcotest.(list (triple string int int64))
        "paramize on = off (event driver)" (multiset off) (multiset on);
      (* shape-keyed caching actually engaged on the paramized run *)
      if on.Report.r_shape_hits + on.Report.r_exact_hits = 0 then
        Alcotest.fail "paramized run saw no shape/exact hits";
      check Alcotest.int "whole-plan run never binds" 0 off.Report.r_binds;
      (* the domain-parallel driver serves the same stream identically *)
      let par =
        Server.run ~parallel:2 (mkdb ())
          { cfg with Server.paramize = true }
          stream
      in
      check
        Alcotest.(list (triple string int int64))
        "paramize on (pool driver) = whole-plan" (multiset off) (multiset par);
      if par.Report.r_shape_hits + par.Report.r_exact_hits = 0 then
        Alcotest.fail "paramized pool run saw no shape/exact hits")

let suite =
  [
    normalize_roundtrip_test;
    normalize_arity_test;
    wire_param_test;
    shape_key_test;
    key_v_param_version_test;
    backend_differential_test;
    non_param_backend_refusal_test;
    dead_hole_test;
    serving_differential_test;
  ]
