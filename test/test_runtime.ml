(* VM memory, SSO strings, the open-addressing hash table and the tuple
   buffer — the in-memory runtime the generated code manipulates. *)

open Qcomp_vm
open Qcomp_runtime

let check = Alcotest.check

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

let fresh_mem () = Memory.create (1 lsl 22)

let memory_cases =
  [
    Alcotest.test_case "alloc alignment" `Quick (fun () ->
        let m = fresh_mem () in
        let a = Memory.alloc m ~align:16 10 in
        let b = Memory.alloc m ~align:16 10 in
        check Alcotest.int "a aligned" 0 (a land 15);
        check Alcotest.int "b aligned" 0 (b land 15);
        check Alcotest.bool "disjoint" true (b >= a + 10));
    Alcotest.test_case "load/store widths and sign" `Quick (fun () ->
        let m = fresh_mem () in
        let a = Memory.alloc m 16 in
        Memory.store m ~addr:a ~size:4 0xFFFF_FFFFL;
        check Alcotest.int64 "sext" (-1L) (Memory.load m ~addr:a ~size:4 ~sext:true);
        check Alcotest.int64 "zext" 0xFFFF_FFFFL
          (Memory.load m ~addr:a ~size:4 ~sext:false);
        Memory.store m ~addr:a ~size:2 0x8000L;
        check Alcotest.int64 "sext16" (-32768L) (Memory.load m ~addr:a ~size:2 ~sext:true));
    Alcotest.test_case "store64 little-endian bytes" `Quick (fun () ->
        let m = fresh_mem () in
        let a = Memory.alloc m 8 in
        Memory.store64 m a 0x0102_0304_0506_0708L;
        check Alcotest.int64 "first byte is LSB" 8L
          (Memory.load m ~addr:a ~size:1 ~sext:false));
    Alcotest.test_case "out-of-range access faults" `Quick (fun () ->
        let m = Memory.create (16 * 4096) in
        match Memory.load64 m ((16 * 4096) - 4) with
        | exception Memory.Fault _ -> ()
        | _ -> Alcotest.fail "expected fault");
    Alcotest.test_case "low page is unmapped (null guard)" `Quick (fun () ->
        let m = Memory.create (16 * 4096) in
        match Memory.load64 m 0 with
        | exception Memory.Fault _ -> ()
        | _ -> Alcotest.fail "expected fault");
    Alcotest.test_case "blit and fill" `Quick (fun () ->
        let m = fresh_mem () in
        let a = Memory.alloc m 16 and b = Memory.alloc m 16 in
        Memory.store_bytes m a "hello world!";
        Memory.blit m ~src:a ~dst:b ~len:12;
        check Alcotest.string "copied" "hello world!"
          (Memory.load_bytes m b 12);
        Memory.fill m ~addr:b ~len:12 '\000';
        check Alcotest.int64 "zeroed" 0L (Memory.load64 m b));
  ]

let sso_cases =
  [
    Alcotest.test_case "short strings stay inline" `Quick (fun () ->
        let m = fresh_mem () in
        let a = Sso.alloc m "hi" in
        check Alcotest.string "read" "hi" (Sso.read m a);
        check Alcotest.int "len" 2 (Sso.length m a));
    Alcotest.test_case "12-byte boundary" `Quick (fun () ->
        let m = fresh_mem () in
        let s12 = String.make 12 'x' and s13 = String.make 13 'y' in
        check Alcotest.string "inline max" s12 (Sso.read m (Sso.alloc m s12));
        check Alcotest.string "first heap size" s13 (Sso.read m (Sso.alloc m s13)));
    Alcotest.test_case "long strings out of line" `Quick (fun () ->
        let m = fresh_mem () in
        let s = String.concat "," (List.init 50 string_of_int) in
        let a = Sso.alloc m s in
        check Alcotest.string "read" s (Sso.read m a);
        check Alcotest.int "len" (String.length s) (Sso.length m a));
    Alcotest.test_case "equal and compare" `Quick (fun () ->
        let m = fresh_mem () in
        let a = Sso.alloc m "apple" and b = Sso.alloc m "apple" in
        let c = Sso.alloc m "banana" in
        check Alcotest.bool "eq" true (Sso.equal m a b);
        check Alcotest.bool "ne" false (Sso.equal m a c);
        check Alcotest.bool "lt" true (Sso.compare_str m a c < 0));
    Alcotest.test_case "empty string" `Quick (fun () ->
        let m = fresh_mem () in
        let a = Sso.alloc m "" in
        check Alcotest.string "empty" "" (Sso.read m a);
        check Alcotest.int "len 0" 0 (Sso.length m a));
    Alcotest.test_case "like patterns" `Quick (fun () ->
        let m = fresh_mem () in
        let s = Sso.alloc m "warehouse #42" in
        let like pat = Sso.like m ~str:s ~pat:(Sso.alloc m pat) in
        check Alcotest.bool "%house%" true (like "%house%");
        check Alcotest.bool "ware%" true (like "ware%");
        check Alcotest.bool "%42" true (like "%42");
        check Alcotest.bool "_arehouse%" true (like "_arehouse%");
        check Alcotest.bool "no match" false (like "%shed%");
        check Alcotest.bool "exact" true (like "warehouse #42");
        check Alcotest.bool "underscore counts" false (like "warehouse #4_2"));
    Alcotest.test_case "hash equal strings equal, long strings differ" `Quick
      (fun () ->
        let m = fresh_mem () in
        let a = Sso.alloc m "some longer string ........ A" in
        let b = Sso.alloc m "some longer string ........ A" in
        let c = Sso.alloc m "some longer string ........ B" in
        check Alcotest.int64 "same" (Sso.hash m a) (Sso.hash m b);
        check Alcotest.bool "differs" true (not (Int64.equal (Sso.hash m a) (Sso.hash m c))));
  ]

let sso_props =
  [
    prop "sso roundtrip" QCheck2.Gen.(string_size (int_bound 64)) (fun s ->
        let m = fresh_mem () in
        Sso.read m (Sso.alloc m s) = s);
    prop "sso equal is string equality" QCheck2.Gen.(pair (string_size (int_bound 24)) (string_size (int_bound 24)))
      (fun (a, b) ->
        let m = fresh_mem () in
        Sso.equal m (Sso.alloc m a) (Sso.alloc m b) = (a = b));
    prop "sso compare is String.compare sign" QCheck2.Gen.(pair (string_size (int_bound 24)) (string_size (int_bound 24)))
      (fun (a, b) ->
        let m = fresh_mem () in
        compare (Sso.compare_str m (Sso.alloc m a) (Sso.alloc m b)) 0
        = compare (String.compare a b) 0);
  ]

let htable_cases =
  [
    Alcotest.test_case "insert then lookup" `Quick (fun () ->
        let m = fresh_mem () in
        let ht, _ = Htable.create m ~payload_size:16 ~capacity_hint:4 () in
        let p, _ = Htable.insert m ht 0xABCL in
        Memory.store64 m p 77L;
        let found, _ = Htable.lookup m ht 0xABCL in
        check Alcotest.bool "found" true (found <> 0);
        check Alcotest.int64 "payload" 77L (Memory.load64 m (found + 8)));
    Alcotest.test_case "lookup miss is 0" `Quick (fun () ->
        let m = fresh_mem () in
        let ht, _ = Htable.create m ~payload_size:8 ~capacity_hint:4 () in
        let found, _ = Htable.lookup m ht 0x123L in
        check Alcotest.int "miss" 0 found);
    Alcotest.test_case "duplicate hashes chained via next" `Quick (fun () ->
        let m = fresh_mem () in
        let ht, _ = Htable.create m ~payload_size:8 ~capacity_hint:4 () in
        let p1, _ = Htable.insert m ht 5L in
        let p2, _ = Htable.insert m ht 5L in
        Memory.store64 m p1 1L;
        Memory.store64 m p2 2L;
        let e1, _ = Htable.lookup m ht 5L in
        let e2, _ = Htable.next m ht e1 5L in
        let e3, _ = Htable.next m ht e2 5L in
        check Alcotest.bool "two entries" true (e1 <> 0 && e2 <> 0 && e1 <> e2);
        check Alcotest.int "exhausted" 0 e3;
        let vals = List.sort compare [ Memory.load64 m (e1 + 8); Memory.load64 m (e2 + 8) ] in
        check Alcotest.(list int64) "both payloads" [ 1L; 2L ] vals);
    Alcotest.test_case "growth preserves entries" `Quick (fun () ->
        let m = fresh_mem () in
        let ht, _ = Htable.create m ~payload_size:8 ~capacity_hint:4 () in
        let n = 500 in
        for i = 1 to n do
          let h = Qcomp_support.Hashes.hash64 (Int64.of_int i) in
          let p, _ = Htable.insert m ht h in
          Memory.store64 m p (Int64.of_int i)
        done;
        check Alcotest.int "count" n (Htable.count m ht);
        check Alcotest.bool "grew" true (Htable.capacity m ht > 16);
        for i = 1 to n do
          let h = Qcomp_support.Hashes.hash64 (Int64.of_int i) in
          let e, _ = Htable.lookup m ht h in
          check Alcotest.bool "found after growth" true (e <> 0)
        done);
    Alcotest.test_case "zero hash is normalized, still findable" `Quick (fun () ->
        let m = fresh_mem () in
        let ht, _ = Htable.create m ~payload_size:8 ~capacity_hint:4 () in
        let p, _ = Htable.insert m ht 0L in
        Memory.store64 m p 9L;
        let e, _ = Htable.lookup m ht 0L in
        check Alcotest.bool "found" true (e <> 0));
    Alcotest.test_case "iter visits every payload once" `Quick (fun () ->
        let m = fresh_mem () in
        let ht, _ = Htable.create m ~payload_size:8 ~capacity_hint:4 () in
        for i = 1 to 40 do
          let p, _ = Htable.insert m ht (Qcomp_support.Hashes.hash64 (Int64.of_int i)) in
          Memory.store64 m p (Int64.of_int i)
        done;
        let seen = Hashtbl.create 40 in
        Htable.iter m ht (fun p -> Hashtbl.replace seen (Memory.load64 m p) ());
        check Alcotest.int "40 distinct" 40 (Hashtbl.length seen));
  ]

let tuplebuf_cases =
  [
    Alcotest.test_case "append grows and preserves rows" `Quick (fun () ->
        let m = fresh_mem () in
        let buf = Tuplebuf.create m ~row_size:16 ~capacity_hint:2 in
        for i = 0 to 99 do
          let r, _ = Tuplebuf.append m buf in
          Memory.store64 m r (Int64.of_int i);
          Memory.store64 m (r + 8) (Int64.of_int (i * i))
        done;
        check Alcotest.int "count" 100 (Tuplebuf.count m buf);
        for i = 0 to 99 do
          let r = Tuplebuf.row m buf i in
          check Alcotest.int64 "k" (Int64.of_int i) (Memory.load64 m r);
          check Alcotest.int64 "v" (Int64.of_int (i * i)) (Memory.load64 m (r + 8))
        done);
    Alcotest.test_case "permute reorders rows" `Quick (fun () ->
        let m = fresh_mem () in
        let buf = Tuplebuf.create m ~row_size:8 ~capacity_hint:4 in
        List.iter
          (fun v ->
            let r, _ = Tuplebuf.append m buf in
            Memory.store64 m r v)
          [ 30L; 10L; 20L ];
        ignore (Tuplebuf.permute m buf [| 1; 2; 0 |]);
        let at i = Memory.load64 m (Tuplebuf.row m buf i) in
        check Alcotest.(list int64) "sorted" [ 10L; 20L; 30L ] [ at 0; at 1; at 2 ]);
  ]

let suite = memory_cases @ sso_cases @ sso_props @ htable_cases @ tuplebuf_cases
