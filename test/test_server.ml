(* The serving subsystem: LRU cache mechanics, canonical plan
   fingerprints, the discrete-event scheduler, and — the property that
   matters — tiered/cached serving reproducing the classic run_plan
   results exactly, on fixed plans, whole workloads and fuzzed plans. *)

open Qcomp_engine
open Qcomp_server
open Qcomp_plan
open Qcomp_storage

let check = Alcotest.check

(* ---------------- LRU ---------------- *)

let lru_tests =
  [
    Alcotest.test_case "lru evicts in least-recently-used order" `Quick (fun () ->
        let l = Lru.create ~capacity:2 in
        Lru.add l "a" ~weight:10 1;
        Lru.add l "b" ~weight:20 2;
        Lru.add l "c" ~weight:30 3;
        (* capacity 2: "a" (oldest) is gone *)
        check Alcotest.(option int) "a evicted" None (Lru.find l "a");
        (* touch "b", then insert "d": "c" must be the victim *)
        check Alcotest.(option int) "b live" (Some 2) (Lru.find l "b");
        Lru.add l "d" ~weight:40 4;
        check Alcotest.(option int) "c evicted" None (Lru.find l "c");
        check Alcotest.(option int) "b survives" (Some 2) (Lru.find l "b");
        check Alcotest.(list string) "mru order" [ "b"; "d" ] (Lru.keys_mru l));
    Alcotest.test_case "lru byte accounting" `Quick (fun () ->
        let l = Lru.create ~capacity:2 in
        Lru.add l "a" ~weight:10 1;
        Lru.add l "b" ~weight:20 2;
        check Alcotest.int "bytes" 30 (Lru.stats l).Lru.bytes;
        Lru.add l "c" ~weight:30 3;
        let s = Lru.stats l in
        check Alcotest.int "bytes after eviction" 50 s.Lru.bytes;
        check Alcotest.int "bytes evicted" 10 s.Lru.bytes_evicted;
        check Alcotest.int "evictions" 1 s.Lru.evictions;
        (* replacing re-weights without eviction *)
        Lru.add l "b" ~weight:5 20;
        check Alcotest.int "bytes after replace" 35 (Lru.stats l).Lru.bytes;
        check Alcotest.int "entries" 2 (Lru.stats l).Lru.entries);
    Alcotest.test_case "lru hit/miss counters" `Quick (fun () ->
        let l = Lru.create ~capacity:4 in
        Lru.add l 1 "x";
        ignore (Lru.find l 1);
        ignore (Lru.find l 2);
        ignore (Lru.find l 1);
        let s = Lru.stats l in
        check Alcotest.int "hits" 2 s.Lru.hits;
        check Alcotest.int "misses" 1 s.Lru.misses);
    Alcotest.test_case "lru on_drop fires on eviction and replacement" `Quick
      (fun () ->
        let l = Lru.create ~capacity:2 in
        let dropped = ref [] in
        Lru.set_on_drop l (fun v -> dropped := v :: !dropped);
        Lru.add l "a" 1;
        Lru.add l "b" 2;
        Lru.add l "c" 3;
        check Alcotest.(list int) "eviction drops the victim" [ 1 ]
          (List.rev !dropped);
        Lru.add l "b" 20;
        check Alcotest.(list int) "replacement drops the old value" [ 1; 2 ]
          (List.rev !dropped);
        (* re-adding the physically identical value must not drop it *)
        Lru.add l "b" 20;
        check Alcotest.(list int) "identical re-add is not a drop" [ 1; 2 ]
          (List.rev !dropped));
  ]

(* ---------------- fingerprints ---------------- *)

let plan_a () =
  Algebra.Group_by
    {
      input =
        Algebra.Filter
          {
            input = Algebra.Scan { table = "t"; filter = None };
            pred = Expr.(col 1 =% int32 2);
          };
      keys = [ Expr.col 1 ];
      aggs = [ Algebra.Count_star; Algebra.Sum (Expr.col 0) ];
    }

let fingerprint_tests =
  [
    Alcotest.test_case "structurally equal plans hash identically" `Quick
      (fun () ->
        (* two independently constructed (physically distinct) plan values *)
        check Alcotest.int64 "equal plans" (Fingerprint.plan (plan_a ()))
          (Fingerprint.plan (plan_a ())));
    Alcotest.test_case "any structural difference changes the hash" `Quick
      (fun () ->
        let base = Fingerprint.plan (plan_a ()) in
        let variants =
          [
            Algebra.Scan { table = "t"; filter = None };
            Algebra.Scan { table = "u"; filter = None };
            Algebra.Filter
              {
                input = Algebra.Scan { table = "t"; filter = None };
                pred = Expr.(col 1 =% int32 3);
              };
            Algebra.Group_by
              {
                input =
                  Algebra.Filter
                    {
                      input = Algebra.Scan { table = "t"; filter = None };
                      pred = Expr.(col 1 =% int32 2);
                    };
                keys = [ Expr.col 1 ];
                aggs = [ Algebra.Count_star; Algebra.Min (Expr.col 0) ];
              };
          ]
        in
        List.iter
          (fun v ->
            if Int64.equal base (Fingerprint.plan v) then
              Alcotest.fail "distinct plan collided with base fingerprint")
          variants;
        (* and all variants are mutually distinct *)
        let fps = List.map Fingerprint.plan variants in
        check Alcotest.int "all distinct" (List.length fps)
          (List.length (List.sort_uniq compare fps)));
    Alcotest.test_case "constant type participates in the hash" `Quick (fun () ->
        let p ty =
          Algebra.Filter
            {
              input = Algebra.Scan { table = "t"; filter = None };
              pred = Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Const_int (ty, 7L));
            }
        in
        if Int64.equal (Fingerprint.plan (p Sqlty.Int32)) (Fingerprint.plan (p Sqlty.Int64))
        then Alcotest.fail "int32/int64 constants collided");
  ]

(* ---------------- discrete-event scheduler ---------------- *)

let sim_tests =
  [
    Alcotest.test_case "events fire in time order, ties in schedule order" `Quick
      (fun () ->
        let sim = Sim.create () in
        let log = ref [] in
        Sim.at sim 2.0 (fun () -> log := "c" :: !log);
        Sim.at sim 1.0 (fun () -> log := "a" :: !log);
        Sim.at sim 1.0 (fun () -> log := "b" :: !log);
        (* handlers can schedule more events *)
        Sim.at sim 0.5 (fun () ->
            Sim.after sim 0.25 (fun () -> log := "z" :: !log));
        Sim.run sim;
        check Alcotest.(list string) "order" [ "z"; "a"; "b"; "c" ]
          (List.rev !log);
        check (Alcotest.float 1e-9) "clock at last event" 2.0 (Sim.now sim));
  ]

(* ---------------- serving vs run_plan (differential) ---------------- *)

let schema =
  Schema.make "t"
    [ ("a", Schema.Int64); ("g", Schema.Int32); ("d", Schema.Decimal 2);
      ("s", Schema.Str) ]

let make_db ?(rows = 64) () =
  let db = Engine.create_db ~mem_size:(1 lsl 26) Qcomp_vm.Target.x64 in
  let _ =
    Engine.add_table db schema ~rows ~seed:123L
      [| Datagen.Uniform (-50, 50); Datagen.Uniform (0, 5);
         Datagen.DecimalRange (-300, 300); Datagen.Words (Datagen.word_pool, 1) |]
  in
  db

let scan = Algebra.Scan { table = "t"; filter = None }

let fixed_plans =
  [
    ("scan", scan);
    ("filter", Algebra.Filter { input = scan; pred = Expr.(col 1 <% int32 3) });
    ( "agg",
      Algebra.Group_by
        {
          input = scan;
          keys = [ Expr.col 1 ];
          aggs = [ Algebra.Count_star; Algebra.Sum (Expr.col 0); Algebra.Avg (Expr.col 2) ];
        } );
    ( "sort",
      Algebra.Order_by
        { input = scan; keys = [ (Expr.col 0, Algebra.Desc) ]; limit = Some 10 } );
    ( "join",
      Algebra.Hash_join
        {
          build = Algebra.Filter { input = scan; pred = Expr.(col 1 =% int32 2) };
          probe = scan;
          build_keys = [ Expr.col 1 ];
          probe_keys = [ Expr.col 1 ];
        } );
  ]

(* run one plan through a 1-query tiered stream and return its checksum *)
let serve_checksum db mode plan =
  let r =
    Server.run db
      { Server.default_config with Server.mode; Server.morsel = 16 }
      [ ("q", plan) ]
  in
  match r.Report.r_queries with
  | [ q ] -> (q.Report.qm_checksum, q.Report.qm_rows)
  | _ -> Alcotest.fail "expected exactly one served query"

let runplan_checksum db plan =
  let timing = Qcomp_support.Timing.create ~enabled:false () in
  let r, _, _ = Engine.run_plan db ~backend:Engine.interpreter ~timing ~name:"ref" plan in
  (Engine.checksum r.Engine.rows, r.Engine.output_count)

let differential_tests =
  List.map
    (fun (name, plan) ->
      Alcotest.test_case ("tiered = run_plan: " ^ name) `Quick (fun () ->
          let expect = runplan_checksum (make_db ()) plan in
          List.iter
            (fun mode ->
              let got = serve_checksum (make_db ()) mode plan in
              check
                Alcotest.(pair int64 int)
                (Server.mode_name mode) expect got)
            [ Server.Tiered; Server.Cached; Server.Static Engine.cranelift ]))
    fixed_plans

(* larger table so the tiered path actually switches mid-query: the
   background directemit compile finishes while interpreter morsels of the
   4096-row scan are still running *)
let switchover_test =
  Alcotest.test_case "hot-swap occurs and result still matches" `Quick (fun () ->
      let rows = 4096 in
      let plan =
        Algebra.Group_by
          {
            input = scan;
            keys = [ Expr.col 1 ];
            aggs = [ Algebra.Count_star; Algebra.Sum (Expr.col 0) ];
          }
      in
      let expect = runplan_checksum (make_db ~rows ()) plan in
      let db = make_db ~rows () in
      let r =
        Server.run db
          { Server.default_config with Server.mode = Server.Tiered; Server.morsel = 64 }
          [ ("q", plan) ]
      in
      let q = List.hd r.Report.r_queries in
      check Alcotest.(pair int64 int) "checksum" expect
        (q.Report.qm_checksum, q.Report.qm_rows);
      check Alcotest.bool "switched" true (q.Report.qm_switch_s <> None);
      check Alcotest.bool "ran both tiers" true
        (q.Report.qm_quanta_tier0 > 0 && q.Report.qm_quanta_tier1 > 0))

(* repeated stream: cache hits and byte-identical reports *)
let determinism_test =
  Alcotest.test_case "same seed => byte-identical report; repeats hit cache" `Quick
    (fun () ->
      let stream =
        Server.make_stream ~seed:7L ~n:12
          (List.map (fun (n, p) -> (n, p)) fixed_plans)
      in
      let run () =
        let db = make_db ~rows:1024 () in
        let r = Server.run db { Server.default_config with Server.morsel = 64 } stream in
        Format.asprintf "%a" (Server.pp_report ~per_query:true) r
      in
      let a = run () and b = run () in
      check Alcotest.string "byte-identical" a b;
      let db = make_db ~rows:1024 () in
      let r = Server.run db { Server.default_config with Server.morsel = 64 } stream in
      check Alcotest.bool "cache hits" true (r.Report.r_cache.Lru.hits > 0))

(* code cache: eviction pressure still serves correct results *)
let eviction_test =
  Alcotest.test_case "tiny cache capacity: correct under eviction" `Quick
    (fun () ->
      (* enough rows that the adaptive choice leaves the interpreter-only
         fast path and the cache actually gets exercised *)
      let db = make_db ~rows:1024 () in
      let expects = List.map (fun (_, p) -> runplan_checksum (make_db ~rows:1024 ()) p) fixed_plans in
      let stream =
        List.concat [ fixed_plans; fixed_plans ]
        |> List.map (fun (n, p) -> (n, p))
      in
      let r =
        Server.run db
          { Server.default_config with Server.cache_capacity = 2; Server.morsel = 32 }
          stream
      in
      check Alcotest.bool "evictions happened" true
        (r.Report.r_cache.Lru.evictions > 0);
      List.iter
        (fun (q : Server.query_metrics) ->
          let i =
            match List.mapi (fun i (n, _) -> (n, i)) fixed_plans |> List.assoc_opt q.Report.qm_name with
            | Some i -> i
            | None -> Alcotest.fail "unknown query in report"
          in
          check Alcotest.(pair int64 int) ("evicted-cache " ^ q.Report.qm_name)
            (List.nth expects i)
            (q.Report.qm_checksum, q.Report.qm_rows))
        r.Report.r_queries)

(* code-memory lifecycle under eviction pressure: one warm db + cache
   serving repeated passes of a fuzzed stream with a tiny capacity must
   reach a steady state — resident generated code bounded by a
   capacity-derived limit instead of growing monotonically — while every
   served result still matches the classic run_plan path, and freed
   regions keep flowing back to the allocator *)
let eviction_pressure_test =
  Alcotest.test_case "eviction pressure: live code bounded, results exact"
    `Quick (fun () ->
      let db = make_db ~rows:1024 () in
      let expects =
        List.map
          (fun (n, p) -> (n, runplan_checksum (make_db ~rows:1024 ()) p))
          fixed_plans
      in
      let cfg =
        { Server.default_config with Server.cache_capacity = 2; Server.morsel = 32 }
      in
      let cache = Code_cache.create ~capacity:cfg.Server.cache_capacity in
      let stream = Server.make_stream ~seed:11L ~n:20 fixed_plans in
      let prev_freed = ref 0 in
      for pass = 1 to 3 do
        let r = Server.run ~cache db cfg stream in
        List.iter
          (fun (q : Server.query_metrics) ->
            check
              Alcotest.(pair int64 int)
              (Printf.sprintf "pass %d: %s matches run_plan" pass
                 q.Report.qm_name)
              (List.assoc q.Report.qm_name expects)
              (q.Report.qm_checksum, q.Report.qm_rows))
          r.Report.r_queries;
        (* every resident module is in the LRU (<= capacity), pinned by an
           in-flight query (<= workers) or compiled but not yet visible
           (<= compile_slots); +1 headroom *)
        let ms = Code_cache.mem_stats cache in
        let bound =
          (cfg.Server.cache_capacity + cfg.Server.workers
          + cfg.Server.compile_slots + 1)
          * ms.Code_cache.ms_max_entry_bytes
        in
        check Alcotest.bool
          (Printf.sprintf "pass %d: live %d <= bound %d" pass
             r.Report.r_live_code_bytes bound)
          true
          (r.Report.r_live_code_bytes <= bound);
        check Alcotest.bool
          (Printf.sprintf "pass %d: peak %d <= bound %d" pass
             r.Report.r_peak_code_bytes bound)
          true
          (r.Report.r_peak_code_bytes <= bound);
        check Alcotest.bool
          (Printf.sprintf "pass %d: eviction keeps freeing code" pass)
          true
          (r.Report.r_bytes_freed > !prev_freed);
        prev_freed := r.Report.r_bytes_freed;
        check Alcotest.bool
          (Printf.sprintf "pass %d: evictions happened" pass)
          true
          (r.Report.r_cache.Lru.evictions > 0)
      done)

(* morsel-range execute: partial scans compose to the full result *)
let range_test =
  Alcotest.test_case "Engine.execute_morsel partial scans" `Quick (fun () ->
      let db = make_db ~rows:100 () in
      let plan =
        Algebra.Group_by
          { input = scan; keys = []; aggs = [ Algebra.Count_star ] }
      in
      let cq = Engine.plan_to_ir db ~name:"range" plan in
      let timing = Qcomp_support.Timing.create ~enabled:false () in
      let cm =
        Qcomp_backend.Backend.compile_module Engine.interpreter ~timing
          ~emu:db.Engine.emu ~registry:db.Engine.registry ~unwind:db.Engine.unwind
          cq.Qcomp_codegen.Codegen.modul
      in
      let count r =
        match r.Engine.rows with
        | [ [| Engine.Int n |] ] -> Int64.to_int n
        | [] -> 0 (* empty range: the group is never materialized *)
        | _ -> Alcotest.fail "unexpected shape"
      in
      let over m = count (Engine.execute_morsel db cq cm m) in
      check Alcotest.int "full scan" 100 (count (Engine.execute db cq cm));
      check Alcotest.int "whole morsel" 100 (over Engine.Morsel.whole);
      check Alcotest.int "first half" 50 (over (Engine.Morsel.make ~lo:0 ~hi:50));
      check Alcotest.int "second half" 50
        (over (Engine.Morsel.make ~lo:50 ~hi:max_int));
      check Alcotest.int "empty range" 0
        (over (Engine.Morsel.make ~lo:60 ~hi:60));
      check Alcotest.int "clamped" 100 (over (Engine.Morsel.make ~lo:0 ~hi:1000));
      (* split morsels compose: thirds of the scan sum to the whole *)
      let parts =
        Engine.Morsel.split (Engine.Morsel.make ~lo:0 ~hi:100) ~parts:3
      in
      check Alcotest.int "split covers" 100
        (List.fold_left (fun acc m -> acc + over m) 0 parts);
      check Alcotest.bool "make rejects hi < lo" true
        (try
           ignore (Engine.Morsel.make ~lo:60 ~hi:40);
           false
         with Invalid_argument _ -> true))

(* unpin-underflow regression: an unbalanced unpin used to drive ce_pins
   negative, which a later eviction could turn into a double dispose; it
   is now clamped, counted, and harmless *)
let unpin_underflow_test =
  Alcotest.test_case "double unpin is clamped, counted, single-dispose" `Quick
    (fun () ->
      let db = make_db ~rows:64 () in
      let cache = Code_cache.create ~capacity:1 in
      let e1, _ =
        Code_cache.get_or_compile cache db ~backend:Engine.cranelift ~name:"q1"
          scan
      in
      Code_cache.pin cache e1;
      Code_cache.unpin cache e1;
      (* the bug: this second unpin went to -1 *)
      Code_cache.unpin cache e1;
      check Alcotest.int "clamped at zero" 0 (Code_cache.live_pins cache);
      check Alcotest.int "underflow counted" 1
        (Code_cache.mem_stats cache).Code_cache.ms_pin_underflows;
      (* a later eviction must free the module exactly once *)
      let plan2 =
        Algebra.Filter { input = scan; pred = Expr.(col 1 <% int32 3) }
      in
      let _e2, _ =
        Code_cache.get_or_compile cache db ~backend:Engine.cranelift ~name:"q2"
          plan2
      in
      check Alcotest.int "evicted module freed exactly once"
        e1.Code_cache.ce_code_bytes
        (Code_cache.mem_stats cache).Code_cache.ms_bytes_freed;
      check Alcotest.int "no further underflows" 1
        (Code_cache.mem_stats cache).Code_cache.ms_pin_underflows)

(* ---------------- parallel (Domain-pool) serving ---------------- *)

let result_multiset r =
  List.sort compare
    (List.map
       (fun (q : Server.query_metrics) ->
         (q.Report.qm_name, q.Report.qm_rows, q.Report.qm_checksum))
       r.Report.r_queries)

(* the Domain pool must produce the sequential scheduler's per-query
   results — rows and checksums as a multiset (completion order and every
   timing metric are wall-clock and excluded) — for all three policies *)
let parallel_differential_test =
  Alcotest.test_case
    "parallel = sequential: result multiset, 3 modes x 2 seeds" `Quick
    (fun () ->
      List.iter
        (fun seed ->
          let stream = Server.make_stream ~seed ~n:10 fixed_plans in
          List.iter
            (fun mode ->
              let cfg =
                {
                  Server.default_config with
                  Server.mode;
                  Server.morsel = 64;
                }
              in
              let seq = Server.run (make_db ~rows:1024 ()) cfg stream in
              let par =
                Server.run ~parallel:3 (make_db ~rows:1024 ()) cfg stream
              in
              check
                Alcotest.(list (triple string int int64))
                (Printf.sprintf "%s seed %Ld" (Server.mode_name mode) seed)
                (result_multiset seq) (result_multiset par);
              check Alcotest.int
                (Printf.sprintf "%s seed %Ld: live code bytes"
                   (Server.mode_name mode) seed)
                seq.Report.r_live_code_bytes par.Report.r_live_code_bytes)
            [ Server.Tiered; Server.Cached; Server.Static Engine.cranelift ])
        [ 3L; 11L ])

(* multiple domains hammering a 2-entry cache: evictions, deferred
   disposal of pinned entries, background compiles and hot-swaps all race;
   results must stay exact and the pin accounting must balance *)
let parallel_eviction_test =
  Alcotest.test_case "parallel eviction stress: tiny cache, 4 domains" `Quick
    (fun () ->
      let db = make_db ~rows:1024 () in
      let expects =
        List.map
          (fun (n, p) -> (n, runplan_checksum (make_db ~rows:1024 ()) p))
          fixed_plans
      in
      let cfg =
        {
          Server.default_config with
          Server.cache_capacity = 2;
          Server.morsel = 32;
          Server.mode = Server.Tiered;
        }
      in
      let cache = Code_cache.create ~capacity:cfg.Server.cache_capacity in
      let stream = Server.make_stream ~seed:13L ~n:24 fixed_plans in
      let r = Server.run ~cache ~parallel:4 db cfg stream in
      check Alcotest.int "all queries served" 24
        (List.length r.Report.r_queries);
      List.iter
        (fun (q : Server.query_metrics) ->
          check
            Alcotest.(pair int64 int)
            ("parallel evicted-cache " ^ q.Report.qm_name)
            (List.assoc q.Report.qm_name expects)
            (q.Report.qm_checksum, q.Report.qm_rows))
        r.Report.r_queries;
      check Alcotest.bool "evictions happened" true
        (r.Report.r_cache.Lru.evictions > 0);
      check Alcotest.bool "eviction freed code" true (r.Report.r_bytes_freed > 0);
      check Alcotest.int "no live pins after quiesce" 0
        (Code_cache.live_pins cache);
      check Alcotest.int "no pin underflows" 0
        (Code_cache.mem_stats cache).Code_cache.ms_pin_underflows)

(* ---------------- observation-driven re-optimization ---------------- *)

(* --reopt changes only the schedule (which tier runs which morsel), never
   the data: per-query rows/checksums must match the static-estimate
   Tiered baseline in both drivers *)
let reopt_differential_test =
  Alcotest.test_case
    "reopt = static-estimate tiered: result multiset, 2 seeds, both drivers"
    `Quick
    (fun () ->
      List.iter
        (fun seed ->
          let stream = Server.make_stream ~seed ~n:10 fixed_plans in
          let cfg =
            {
              Server.default_config with
              Server.mode = Server.Tiered;
              Server.morsel = 64;
            }
          in
          let rcfg = { cfg with Server.reopt = true } in
          let base = Server.run (make_db ~rows:1024 ()) cfg stream in
          let seq = Server.run (make_db ~rows:1024 ()) rcfg stream in
          let par = Server.run ~parallel:3 (make_db ~rows:1024 ()) rcfg stream in
          check
            Alcotest.(list (triple string int int64))
            (Printf.sprintf "seed %Ld: reopt sequential" seed)
            (result_multiset base) (result_multiset seq);
          check
            Alcotest.(list (triple string int int64))
            (Printf.sprintf "seed %Ld: reopt parallel" seed)
            (result_multiset base) (result_multiset par))
        [ 5L; 17L ])

(* the misfire the controller exists to correct: every scan of the fan-out
   query is tiny, so the pre-execution estimate parks it on the
   interpreter; its join output is ~3 orders of magnitude larger than any
   input, and the observed cycles-per-row send it up the ladder *)
let deceptive_upgrade_test =
  Alcotest.test_case
    "deceptive fan-out query: upgraded mid-flight past its static pick"
    `Quick
    (fun () ->
      let q = Qcomp_workloads.Tpch.deceptive in
      let name = q.Qcomp_workloads.Spec.q_name
      and plan = q.Qcomp_workloads.Spec.q_plan in
      let expect =
        runplan_checksum
          (Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1)
          plan
      in
      let db = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:1 in
      let static_pick, _ = Engine.adaptive_backend db plan in
      check Alcotest.string "static estimate under-predicts: interpreter pick"
        "interpreter" static_pick;
      let r =
        Server.run db
          {
            Server.default_config with
            Server.mode = Server.Tiered;
            Server.reopt = true;
            Server.morsel = 32;
          }
          [ (name, plan) ]
      in
      let m = List.hd r.Report.r_queries in
      check
        Alcotest.(pair int64 int)
        "checksum matches run_plan" expect
        (m.Report.qm_checksum, m.Report.qm_rows);
      check Alcotest.string "starts on the interpreter" "interpreter"
        (List.hd m.Report.qm_tiers);
      check Alcotest.bool "upgraded mid-flight" true
        (List.length m.Report.qm_tiers > 1);
      check Alcotest.bool "finishes stronger than the static pick" true
        (List.mem m.Report.qm_backend
           (List.map fst (Engine.stronger_than db static_pick))))

(* at a larger scale factor the same query keeps looking worse as it runs:
   the first decision (taken on cheap build-pipeline morsels) buys the
   cheap rung, the post-swap observations on the probe pipeline justify a
   second, stronger one *)
let second_upgrade_test =
  Alcotest.test_case "observed work keeps growing => second upgrade" `Quick
    (fun () ->
      let q = Qcomp_workloads.Tpch.deceptive in
      let name = q.Qcomp_workloads.Spec.q_name
      and plan = q.Qcomp_workloads.Spec.q_plan in
      let expect =
        runplan_checksum
          (Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:4)
          plan
      in
      let db = Experiments.make_db Qcomp_vm.Target.x64 Experiments.Tpch ~sf:4 in
      let r =
        Server.run db
          {
            Server.default_config with
            Server.mode = Server.Tiered;
            Server.reopt = true;
            Server.morsel = 64;
          }
          [ (name, plan) ]
      in
      let m = List.hd r.Report.r_queries in
      check
        Alcotest.(pair int64 int)
        "checksum matches run_plan" expect
        (m.Report.qm_checksum, m.Report.qm_rows);
      check Alcotest.bool
        (Printf.sprintf "two upgrades (tier path: %s)"
           (String.concat "->" m.Report.qm_tiers))
        true
        (List.length m.Report.qm_tiers >= 3))

(* ---------------- serving-memory accounting ---------------- *)

(* pre-fix, every execution leaked its state block, tuple buffers and hash
   arenas (Memory.alloc was a pure bump allocator): each 60-query pass
   allocates ~43 MB against a 16 MiB arena, so a single pass used to die
   of Fault "out of memory" part-way in, and this test serves 10 passes.
   Live data bytes must be flat across passes and the cumulative freed
   bytes must exceed the arena size many times over (proof the allocator
   reuses memory rather than growing). *)
let soak_test =
  Alcotest.test_case "bounded-memory soak: long stream recycles data blocks"
    `Slow
    (fun () ->
      let mem_size = 16 * 1024 * 1024 in
      let db = Engine.create_db ~mem_size Qcomp_vm.Target.x64 in
      let _ =
        Engine.add_table db schema ~rows:1024 ~seed:123L
          [| Datagen.Uniform (-50, 50); Datagen.Uniform (0, 5);
             Datagen.DecimalRange (-300, 300);
             Datagen.Words (Datagen.word_pool, 1) |]
      in
      let cfg =
        {
          Server.default_config with
          Server.mode = Server.Tiered;
          Server.cache_capacity = 2;
          Server.morsel = 64;
        }
      in
      let cache = Code_cache.create ~capacity:cfg.Server.cache_capacity in
      let stream = Server.make_stream ~seed:9L ~n:60 fixed_plans in
      let live_after_first = ref 0 in
      let freed_total = ref 0 in
      for pass = 1 to 10 do
        let r = Server.run ~cache db cfg stream in
        check Alcotest.int
          (Printf.sprintf "pass %d: all queries served" pass)
          60
          (List.length r.Report.r_queries);
        freed_total := r.Report.r_freed_data_bytes;
        if pass = 1 then live_after_first := r.Report.r_live_data_bytes
        else
          check Alcotest.int
            (Printf.sprintf "pass %d: live data bytes flat" pass)
            !live_after_first r.Report.r_live_data_bytes
      done;
      check Alcotest.bool "cumulative recycling exceeds the arena" true
        (!freed_total > mem_size))

(* every registered back-end must have an explicit coefficient row and
   execution rate; unknown names fail loud instead of silently getting
   mid-range numbers *)
let costmodel_coverage_test =
  Alcotest.test_case "cost model covers every registered back-end" `Quick
    (fun () ->
      let db = make_db () in
      let cq = Engine.plan_to_ir db ~name:"cov" scan in
      let m = cq.Qcomp_codegen.Codegen.modul in
      List.iter
        (fun b ->
          let nm = Qcomp_backend.Backend.name b in
          check Alcotest.bool
            (nm ^ " has a positive compile cost")
            true
            (Costmodel.compile_seconds ~backend:nm m > 0.0);
          check Alcotest.bool
            (nm ^ " has a positive execution rate")
            true
            (Costmodel.exec_rate nm > 0.0))
        (Engine.all_backends db);
      let raises f =
        match f () with
        | _ -> false
        | exception Invalid_argument _ -> true
      in
      check Alcotest.bool "unknown back-end: compile cost fails loud" true
        (raises (fun () -> Costmodel.compile_seconds ~backend:"no-such" m));
      check Alcotest.bool "unknown back-end: exec rate fails loud" true
        (raises (fun () -> Costmodel.exec_rate "no-such")))

(* both drivers reject non-positive sizing fields identically (no silent
   max-1 clamps) *)
let config_validation_test =
  Alcotest.test_case "config validation: both drivers, every field" `Quick
    (fun () ->
      let break field =
        let c = { Server.default_config with Server.mode = Server.Tiered } in
        match field with
        | "workers" -> { c with Server.workers = 0 }
        | "compile_slots" -> { c with Server.compile_slots = 0 }
        | "morsel" -> { c with Server.morsel = 0 }
        | _ -> { c with Server.cache_capacity = 0 }
      in
      List.iter
        (fun field ->
          let cfg = break field in
          let raises driver f =
            match f () with
            | (_ : Server.report) ->
                Alcotest.failf "%s accepted %s = 0" driver field
            | exception Invalid_argument msg ->
                check Alcotest.bool
                  (Printf.sprintf "%s names the field (%s)" driver msg)
                  true
                  (String.length msg > 0)
          in
          raises "Server.run" (fun () ->
              Server.run (make_db ()) cfg [ ("q", scan) ]);
          raises "Pool.run" (fun () ->
              Server.run ~parallel:1 (make_db ()) cfg [ ("q", scan) ]))
        [ "workers"; "compile_slots"; "morsel"; "cache_capacity" ])

(* Static mode has no cache semantics (the full modelled compile is
   charged every time), so its lookups must not pollute the hit/miss
   stats: a report claiming a 90% hit rate next to full compile charges
   would be meaningless *)
let static_stat_bypass_test =
  Alcotest.test_case "static mode bypasses cache hit/miss stats" `Quick
    (fun () ->
      let db = make_db ~rows:256 () in
      let cache = Code_cache.create ~capacity:8 in
      let cfg =
        {
          Server.default_config with
          Server.mode = Server.Static Engine.cranelift;
        }
      in
      let stream = Server.make_stream ~seed:3L ~n:8 fixed_plans in
      let r1 = Server.run ~cache db cfg stream in
      let r2 = Server.run ~cache db cfg stream in
      List.iter
        (fun (r : Server.report) ->
          check Alcotest.int "no hits counted" 0 r.Report.r_cache.Lru.hits;
          check Alcotest.int "no misses counted" 0 r.Report.r_cache.Lru.misses;
          List.iter
            (fun (q : Server.query_metrics) ->
              check Alcotest.bool
                (q.Report.qm_name ^ ": full compile charged")
                true
                (q.Report.qm_compile_s > 0.0))
            r.Report.r_queries)
        [ r1; r2 ])

(* ---------------- fuzzed plans ---------------- *)

(* reuse the generator and printer from the cross-back-end fuzz suite: the
   tiered server must agree with run_plan on arbitrary well-typed plans,
   including error outcomes (overflow, division by zero) *)
let fuzz_test =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~print:Test_fuzz_plans.plan_str
       ~name:"fuzzed plans: tiered serving = run_plan" Test_fuzz_plans.gen_plan
       (fun plan ->
         let expect =
           match runplan_checksum (make_db ()) plan with
           | cs -> Ok cs
           | exception Qcomp_runtime.Rt_error.Query_error e -> Error e
           | exception Expr.Type_error e -> Error ("type: " ^ e)
         in
         let got =
           match serve_checksum (make_db ()) Server.Tiered plan with
           | cs -> Ok cs
           | exception Qcomp_runtime.Rt_error.Query_error e -> Error e
           | exception Expr.Type_error e -> Error ("type: " ^ e)
         in
         if expect <> got then
           QCheck2.Test.fail_reportf "tiered differs: run_plan=%s tiered=%s"
             (match expect with
             | Ok (c, n) -> Printf.sprintf "rows(%Lx,%d)" c n
             | Error e -> "err:" ^ e)
             (match got with
             | Ok (c, n) -> Printf.sprintf "rows(%Lx,%d)" c n
             | Error e -> "err:" ^ e)
         else true))

(* ---------------- relocatable artifacts & snapshots ---------------- *)

(* exercises string constants on both SSO paths: inline (<= 12 bytes) and
   out-of-line body, which a snapshot must re-materialize at the exact
   addresses the artifact baked as immediates *)
let str_plan =
  Algebra.Filter
    {
      input = scan;
      pred =
        Expr.Or
          ( Expr.(col 3 =% str "fox"),
            Expr.(col 3 =% str "a-string-far-too-long-for-sso") );
    }

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

(* every back-end's relocatable artifact must survive
   serialize -> deserialize -> link and execute bit-identically to the
   module the back-end links directly *)
let artifact_roundtrip_test =
  Alcotest.test_case
    "artifact round-trip: serialize/deserialize/link = direct compile" `Quick
    (fun () ->
      let db = make_db () in
      let timing = Qcomp_support.Timing.create ~enabled:false () in
      let plan = List.assoc "join" fixed_plans in
      let cq = Engine.plan_to_ir db ~name:"rt" plan in
      let modul = cq.Qcomp_codegen.Codegen.modul in
      List.iter
        (fun b ->
          match Qcomp_backend.Backend.compile_artifact b with
          | None -> ()
          | Some compile ->
              let name = Qcomp_backend.Backend.name b in
              let cm_direct =
                Qcomp_backend.Backend.compile_module b ~timing
                  ~emu:db.Engine.emu ~registry:db.Engine.registry
                  ~unwind:db.Engine.unwind modul
              in
              let r1 = Engine.execute db cq cm_direct in
              let art = compile ~timing ~target:db.Engine.target
                  ~registry:db.Engine.registry modul
              in
              let art' =
                Qcomp_backend.Artifact.deserialize
                  (Qcomp_backend.Artifact.serialize art)
              in
              let cm2 =
                Qcomp_backend.Backend.link_artifact ~timing ~emu:db.Engine.emu
                  ~registry:db.Engine.registry ~unwind:db.Engine.unwind art'
              in
              let r2 = Engine.execute db cq cm2 in
              check Alcotest.int (name ^ " rows") r1.Engine.output_count
                r2.Engine.output_count;
              check Alcotest.int64 (name ^ " checksum")
                (Engine.checksum r1.Engine.rows)
                (Engine.checksum r2.Engine.rows);
              Engine.dispose_module db cm2;
              Engine.dispose_module db cm_direct)
        (Engine.all_backends db))

(* the plan wire codec: strict round-trip on every fixed plan, loud
   failure on truncation and trailing garbage *)
let wire_roundtrip_test =
  Alcotest.test_case "plan wire codec round-trips, rejects corruption" `Quick
    (fun () ->
      List.iter
        (fun (nm, p) ->
          let s = Wire.to_string p in
          if Wire.of_string s <> p then Alcotest.failf "%s: decode <> plan" nm;
          check Alcotest.bool (nm ^ " truncation fails loud") true
            (raises_invalid (fun () ->
                 Wire.of_string (String.sub s 0 (String.length s - 1))));
          check Alcotest.bool (nm ^ " trailing bytes fail loud") true
            (raises_invalid (fun () -> Wire.of_string (s ^ "\x00"))))
        (("strings", str_plan) :: fixed_plans))

(* key_v folds format version, back-end and target into the identity, so
   any of them changing makes a snapshot record unfindable by design *)
let key_v_test =
  Alcotest.test_case "key_v separates version/backend/target" `Quick (fun () ->
      let base =
        Fingerprint.key_v ~version:1 ~backend:"gcc" ~target:"x86-64" scan
      in
      List.iter
        (fun (what, k) ->
          if Int64.equal base k then Alcotest.failf "%s does not change key_v" what)
        [
          ("version", Fingerprint.key_v ~version:2 ~backend:"gcc" ~target:"x86-64" scan);
          ("backend", Fingerprint.key_v ~version:1 ~backend:"clif" ~target:"x86-64" scan);
          ("target", Fingerprint.key_v ~version:1 ~backend:"gcc" ~target:"aarch64" scan);
          ("plan", Fingerprint.key_v ~version:1 ~backend:"gcc" ~target:"x86-64" str_plan);
        ])

let snapshot_plans =
  [
    ("scan", scan);
    ("strings", str_plan);
    ("join", List.assoc "join" fixed_plans);
    ("agg", List.assoc "agg" fixed_plans);
  ]

let with_snapshot_file f =
  let file = Filename.temp_file "qcomp_test_snap" ".qcss" in
  Fun.protect ~finally:(fun () -> Sys.remove file) (fun () -> f file)

(* fill a fresh cache from [plans] on a fresh db, returning per-plan
   (rows, checksum) via the artifact-linked module *)
let fill_cache ~capacity ~backend plans =
  let db = make_db () in
  let cache = Code_cache.create ~capacity in
  let sums =
    List.map
      (fun (nm, p) ->
        let e, hit = Code_cache.get_or_compile cache db ~backend ~name:nm p in
        if hit then Alcotest.failf "%s: cold compile reported as hit" nm;
        let cq, cm, _ = Code_cache.force cache db e in
        let r = Engine.execute db cq cm in
        (nm, r.Engine.output_count, Engine.checksum r.Engine.rows))
      plans
  in
  (db, cache, sums)

(* the tentpole property: save in one process image, load against a fresh
   identically-built database, and every snapshot query is a cache hit
   that re-links and reproduces the cold rows/checksums exactly *)
let snapshot_roundtrip_test =
  Alcotest.test_case "snapshot save/load: warm hits, identical results" `Quick
    (fun () ->
      with_snapshot_file (fun file ->
          let _db1, cache1, sums =
            fill_cache ~capacity:8 ~backend:Engine.cranelift snapshot_plans
          in
          Code_cache.save cache1 file;
          let db2 = make_db () in
          let cache2 = Code_cache.load ~capacity:8 ~db:db2 file in
          check Alcotest.int "all records loaded"
            (List.length snapshot_plans)
            (Code_cache.stats cache2).Lru.entries;
          List.iter2
            (fun (nm, p) (nm', rows, sum) ->
              assert (String.equal nm nm');
              let e, hit =
                Code_cache.get_or_compile cache2 db2
                  ~backend:Engine.cranelift ~name:nm p
              in
              check Alcotest.bool (nm ^ " warm lookup is a hit") true hit;
              let cq, cm, _ = Code_cache.force cache2 db2 e in
              let r = Engine.execute db2 cq cm in
              check Alcotest.int (nm ^ " rows") rows r.Engine.output_count;
              check Alcotest.int64 (nm ^ " checksum") sum
                (Engine.checksum r.Engine.rows))
            snapshot_plans sums))

(* loading a snapshot larger than the cache inserts in LRU order and
   evicts the overflow cleanly: no pin drift, no phantom bytes freed
   (evicted snapshot entries were never linked, so they owned no code) *)
let snapshot_overflow_test =
  Alcotest.test_case "snapshot overflow: clean LRU eviction on load" `Quick
    (fun () ->
      with_snapshot_file (fun file ->
          let _db1, cache1, sums =
            fill_cache ~capacity:8 ~backend:Engine.cranelift snapshot_plans
          in
          Code_cache.save cache1 file;
          let db2 = make_db () in
          let cache2 = Code_cache.load ~capacity:2 ~db:db2 file in
          let s = Code_cache.stats cache2 in
          check Alcotest.int "entries at capacity" 2 s.Lru.entries;
          check Alcotest.int "overflow evicted" 2 s.Lru.evictions;
          check Alcotest.int "no phantom bytes freed" 0
            (Code_cache.mem_stats cache2).Code_cache.ms_bytes_freed;
          check Alcotest.int "no pins" 0 (Code_cache.live_pins cache2);
          (* the two hottest (most recently compiled) plans survive and
             must still link and reproduce the cold results *)
          List.iter
            (fun (nm, rows, sum) ->
              let p = List.assoc nm snapshot_plans in
              let e, hit =
                Code_cache.get_or_compile cache2 db2
                  ~backend:Engine.cranelift ~name:nm p
              in
              check Alcotest.bool (nm ^ " survivor is a hit") true hit;
              let cq, cm, _ = Code_cache.force cache2 db2 e in
              let r = Engine.execute db2 cq cm in
              check Alcotest.int (nm ^ " rows") rows r.Engine.output_count;
              check Alcotest.int64 (nm ^ " checksum") sum
                (Engine.checksum r.Engine.rows))
            (List.filteri (fun i _ -> i >= 2) sums)))

(* corrupted, stale or foreign snapshots must raise Invalid_argument —
   never produce a bad link or an emulator trap *)
let snapshot_corruption_test =
  Alcotest.test_case "snapshot corruption/version/layout fail loud" `Quick
    (fun () ->
      with_snapshot_file (fun file ->
          let _db1, cache1, _ =
            fill_cache ~capacity:8 ~backend:Engine.cranelift snapshot_plans
          in
          Code_cache.save cache1 file;
          let image =
            let ic = open_in_bin file in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            s
          in
          let load_bytes s =
            with_snapshot_file (fun f2 ->
                let oc = open_out_bin f2 in
                output_string oc s;
                close_out oc;
                ignore (Code_cache.load ~capacity:8 ~db:(make_db ()) f2))
          in
          let mutate i f =
            let b = Bytes.of_string image in
            Bytes.set b i (f (Bytes.get b i));
            Bytes.to_string b
          in
          let flip c = Char.chr (Char.code c lxor 0x40) in
          check Alcotest.bool "truncated file" true
            (raises_invalid (fun () ->
                 load_bytes (String.sub image 0 (String.length image / 2))));
          check Alcotest.bool "empty file" true
            (raises_invalid (fun () -> load_bytes ""));
          check Alcotest.bool "bad magic" true
            (raises_invalid (fun () -> load_bytes (mutate 0 flip)));
          check Alcotest.bool "format version bump" true
            (raises_invalid (fun () ->
                 load_bytes (mutate 4 (fun c -> Char.chr (Char.code c + 1)))));
          (* flip one payload byte in each quarter: the checksum (or a
             structural check behind it) must catch every one *)
          List.iter
            (fun frac ->
              let i = String.length image * frac / 8 in
              let i = max 12 (min i (String.length image - 9)) in
              check Alcotest.bool
                (Printf.sprintf "bit flip at byte %d" i)
                true
                (raises_invalid (fun () -> load_bytes (mutate i flip))))
            [ 2; 3; 4; 5; 6; 7 ];
          (* a database with a different layout (row count) must be
             rejected: the artifacts bake column addresses *)
          check Alcotest.bool "layout mismatch" true
            (raises_invalid (fun () ->
                 ignore
                   (Code_cache.load ~capacity:8 ~db:(make_db ~rows:32 ()) file)))))

(* the snapshot path must work for every artifact-producing back-end, not
   just cranelift: each one's warm module reproduces its cold checksum *)
let snapshot_all_backends_test =
  Alcotest.test_case "snapshot round-trip for every back-end" `Quick (fun () ->
      let db_probe = make_db () in
      List.iter
        (fun b ->
          if Qcomp_backend.Backend.compile_artifact b <> None then
            with_snapshot_file (fun file ->
                let _db1, cache1, sums =
                  fill_cache ~capacity:4 ~backend:b [ ("strings", str_plan) ]
                in
                Code_cache.save cache1 file;
                let db2 = make_db () in
                let cache2 = Code_cache.load ~capacity:4 ~db:db2 file in
                let nm = Qcomp_backend.Backend.name b in
                let e, hit =
                  Code_cache.get_or_compile cache2 db2 ~backend:b
                    ~name:"strings" str_plan
                in
                check Alcotest.bool (nm ^ " warm hit") true hit;
                let cq, cm, _ = Code_cache.force cache2 db2 e in
                let r = Engine.execute db2 cq cm in
                let _, rows, sum = List.hd sums in
                check Alcotest.int (nm ^ " rows") rows r.Engine.output_count;
                check Alcotest.int64 (nm ^ " checksum") sum
                  (Engine.checksum r.Engine.rows)))
        (Engine.all_backends db_probe))

let suite =
  lru_tests @ fingerprint_tests @ sim_tests @ differential_tests
  @ [
      switchover_test; determinism_test; eviction_test;
      eviction_pressure_test; range_test; unpin_underflow_test;
      parallel_differential_test; parallel_eviction_test;
      reopt_differential_test; deceptive_upgrade_test; second_upgrade_test;
      soak_test; costmodel_coverage_test; config_validation_test;
      static_stat_bypass_test; fuzz_test;
      artifact_roundtrip_test; wire_roundtrip_test; key_v_test;
      snapshot_roundtrip_test; snapshot_overflow_test;
      snapshot_corruption_test; snapshot_all_backends_test;
    ]
