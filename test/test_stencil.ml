(* Stencil back-end tests: library integrity (dense numbering, hole
   bounds, flat-pool coherence), artifact provenance and statistics,
   tier-ladder position, cost-model coverage, snapshot versioning, and a
   differential check through the parallel serving pool. Cross-back-end
   result equivalence is covered by test_backends / test_fuzz_plans, and
   the generic artifact/snapshot round-trips by test_server — stencil is
   registered in [Engine.all_backends] and rides those for free. *)

open Qcomp_engine
open Qcomp_plan
open Qcomp_storage
open Qcomp_server
module Stencil = Qcomp_stencil.Stencil

let check = Alcotest.check

let make_db ?(target = Qcomp_vm.Target.x64) () =
  let db = Engine.create_db ~mem_size:(1 lsl 25) target in
  let t =
    Schema.make "t"
      [ ("id", Schema.Int64); ("grp", Schema.Int32); ("amt", Schema.Decimal 2);
        ("tag", Schema.Str) ]
  in
  let _ =
    Engine.add_table db t ~rows:200 ~seed:7L
      [| Datagen.Serial 0; Datagen.Uniform (0, 7);
         Datagen.DecimalRange (-400, 4000); Datagen.Words (Datagen.word_pool, 2) |]
  in
  db

let scan = Algebra.Scan { table = "t"; filter = None }

let plans =
  [
    ("filter", Algebra.Filter { input = scan; pred = Expr.(col 1 >% int32 3) });
    ( "agg",
      Algebra.Group_by
        {
          input = scan;
          keys = [ Expr.col 1 ];
          aggs =
            [ Algebra.Count_star; Algebra.Sum (Expr.col 0);
              Algebra.Avg (Expr.col 2) ];
        } );
    ( "join",
      Algebra.Hash_join
        {
          build = Algebra.Filter { input = scan; pred = Expr.(col 1 =% int32 2) };
          probe = scan;
          build_keys = [ Expr.col 1 ];
          probe_keys = [ Expr.col 1 ];
        } );
    ( "sort",
      Algebra.Order_by
        { input = scan; keys = [ (Expr.col 0, Algebra.Desc) ]; limit = Some 12 } );
  ]

(* ---------------- library integrity ---------------- *)

(* the dense numbering and its inverse must agree on every code: a skew
   here would make the miss path rebuild the wrong stencil *)
let numbering_test =
  Alcotest.test_case "key_of_code inverts key_code on every code" `Quick
    (fun () ->
      for c = 0 to Stencil.ncodes - 1 do
        let c' = Stencil.key_code Stencil.key_of_code.(c) in
        if c' <> c then Alcotest.failf "code %d maps to key with code %d" c c'
      done)

(* every prewarmed stencil: non-empty, padded for the word-copy loop, and
   all hole offsets inside the true code length *)
let holes_test =
  Alcotest.test_case "per-op stencils: padding and hole bounds" `Quick
    (fun () ->
      Stencil.prewarm ();
      let seen = ref 0 in
      for c = 0 to Stencil.ncodes - 1 do
        let s = Stencil.dense_x64.(c) in
        if s != Stencil.dummy_stencil then begin
          incr seen;
          let cap = Bytes.length s.Stencil.s_code in
          if s.Stencil.s_len <= 0 then Alcotest.failf "code %d: empty stencil" c;
          if cap < 64 || cap land 7 <> 0 || cap < s.Stencil.s_len then
            Alcotest.failf "code %d: bad padding (%d for %d)" c cap
              s.Stencil.s_len;
          Array.iter
            (fun p ->
              let off = p lsr 3 and arg = p land 7 in
              if off + 4 > s.Stencil.s_len || arg < 0 then
                Alcotest.failf "code %d: h32 hole at %d out of bounds" c off)
            s.Stencil.s_h32;
          Array.iter
            (fun h ->
              let last =
                match h with
                | Stencil.H32 (o, _) | Stencil.Htgt (o, _) -> o + 4
                | Stencil.H64 (o, _) | Stencil.Hsym (o, _) -> o + 8
              in
              if last > s.Stencil.s_len then
                Alcotest.failf "code %d: hole past code end" c)
            s.Stencil.s_rest
        end
      done;
      check Alcotest.bool "prewarm populated a real library" true (!seen > 150))

(* the packed flat library must describe exactly the same bytes and holes
   as the per-stencil records it was folded from *)
let flat_coherence_test =
  Alcotest.test_case "flat library mirrors the stencil records" `Quick
    (fun () ->
      Stencil.prewarm ();
      let fl = !Stencil.flat_x64 in
      let covered = ref 0 in
      for c = 0 to Stencil.ncodes - 1 do
        let w = fl.Stencil.fl_meta.(c) in
        if w <> 0 then begin
          incr covered;
          let s = Stencil.dense_x64.(c) in
          if s == Stencil.dummy_stencil then
            Alcotest.failf "code %d: flat entry without a record" c;
          let n = (w lsr 16) land 0x3FF and off = w lsr 26 in
          if n <> s.Stencil.s_len then
            Alcotest.failf "code %d: flat len %d <> %d" c n s.Stencil.s_len;
          if
            not
              (Bytes.equal
                 (Bytes.sub fl.Stencil.fl_pool off n)
                 (Bytes.sub s.Stencil.s_code 0 n))
          then Alcotest.failf "code %d: flat pool bytes differ" c;
          let hc = (w lsr 1) land 7 and h0 = (w lsr 5) land 0x7FF in
          if hc <> Array.length s.Stencil.s_h32 then
            Alcotest.failf "code %d: flat hole count %d <> %d" c hc
              (Array.length s.Stencil.s_h32);
          for k = 0 to hc - 1 do
            if fl.Stencil.fl_h32.(h0 + k) <> s.Stencil.s_h32.(k) then
              Alcotest.failf "code %d: flat hole %d differs" c k
          done;
          let has_rest = Array.length s.Stencil.s_rest > 0 in
          if w land 16 <> 0 <> has_rest then
            Alcotest.failf "code %d: rest flag differs" c
        end
      done;
      check Alcotest.bool "flat library covers the prewarmed set" true
        (!covered > 150))

(* ---------------- artifact provenance ---------------- *)

let artifact_stats_test =
  Alcotest.test_case "artifact: provenance, stencil stats, determinism"
    `Quick (fun () ->
      let db = make_db () in
      let timing = Qcomp_support.Timing.create ~enabled:false () in
      let cq = Engine.plan_to_ir db ~name:"q" (List.assoc "join" plans) in
      let compile =
        match Qcomp_backend.Backend.compile_artifact Engine.stencil with
        | Some f -> f
        | None -> Alcotest.fail "stencil produces no artifact"
      in
      let art =
        compile ~timing ~target:db.Engine.target ~registry:db.Engine.registry
          cq.Qcomp_codegen.Codegen.modul
      in
      check Alcotest.string "backend" "stencil"
        art.Qcomp_backend.Artifact.a_backend;
      let stat k = List.assoc_opt k art.Qcomp_backend.Artifact.a_stats in
      (match stat "stencils" with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.fail "no stencil count in artifact stats");
      (match stat "stencil_library" with
      | Some n when n > 150 -> ()
      | _ -> Alcotest.fail "library size missing from artifact stats");
      (* blit-and-patch is deterministic: same module, same bytes *)
      let art2 =
        compile ~timing ~target:db.Engine.target ~registry:db.Engine.registry
          cq.Qcomp_codegen.Codegen.modul
      in
      check Alcotest.bool "byte-identical recompile" true
        (Bytes.equal art.Qcomp_backend.Artifact.a_text
           art2.Qcomp_backend.Artifact.a_text))

(* ---------------- tier ladder and cost model ---------------- *)

let ladder_test =
  Alcotest.test_case "stencil is the first native rung on x64 only" `Quick
    (fun () ->
      let names db = List.map fst (Engine.tier_ladder db) in
      let x64 = names (make_db ()) in
      (match x64 with
      | "interpreter" :: "stencil" :: rest ->
          check Alcotest.bool "directemit still above stencil" true
            (List.mem "directemit" rest)
      | _ ->
          Alcotest.failf "x64 ladder starts %s"
            (String.concat " -> " x64));
      let a64 = names (make_db ~target:Qcomp_vm.Target.a64 ()) in
      check Alcotest.bool "no stencil rung on a64" false
        (List.mem "stencil" a64))

let costmodel_test =
  Alcotest.test_case "cost model prices stencil between its neighbours"
    `Quick (fun () ->
      let db = make_db () in
      let cq = Engine.plan_to_ir db ~name:"q" (List.assoc "agg" plans) in
      let m = cq.Qcomp_codegen.Codegen.modul in
      let sec b = Costmodel.compile_seconds ~backend:b m in
      check Alcotest.bool "stencil compile cost positive" true (sec "stencil" > 0.0);
      check Alcotest.bool "stencil compiles cheaper than directemit" true
        (sec "stencil" < sec "directemit");
      check Alcotest.bool "stencil executes faster than the interpreter" true
        (Costmodel.exec_rate "stencil" > Costmodel.exec_rate "interpreter");
      check Alcotest.bool "stencil executes slower than directemit" true
        (Costmodel.exec_rate "stencil" < Costmodel.exec_rate "directemit"))

(* ---------------- snapshot versioning ---------------- *)

(* the stencil-library version is folded into each record's key_v: a
   record whose key was written by a different library build must be
   rejected at load, never blitted with the wrong hole protocol. We
   simulate the skew by rewriting the stored key (and fixing up the
   payload CRC so only the key check can object). *)
let snapshot_version_test =
  Alcotest.test_case "snapshot with a foreign library key fails loud" `Quick
    (fun () ->
      let file = Filename.temp_file "qcomp_test_stencil" ".qcss" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          let db = make_db () in
          let cache = Code_cache.create ~capacity:4 in
          let e, _ =
            Code_cache.get_or_compile cache db ~backend:Engine.stencil
              ~name:"q" (List.assoc "agg" plans)
          in
          ignore (Code_cache.force cache db e);
          Code_cache.save cache file;
          (* sanity: the pristine snapshot loads *)
          ignore (Code_cache.load ~capacity:4 ~db:(make_db ()) file);
          let image =
            let ic = open_in_bin file in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            s
          in
          let b = Bytes.of_string image in
          (* header: magic(4) version(4) target(4+len) count(4) paylen(4);
             the first record leads with its i64 key_v *)
          let tlen = Int32.to_int (Bytes.get_int32_le b 8) in
          let payload_off = 20 + tlen in
          Bytes.set b payload_off
            (Char.chr (Char.code (Bytes.get b payload_off) lxor 0x5A));
          let crc = ref 0xC5_C5_C5L in
          for i = payload_off to Bytes.length b - 9 do
            crc := Qcomp_support.Hashes.crc32c_byte !crc (Char.code (Bytes.get b i))
          done;
          Bytes.set_int64_le b (Bytes.length b - 8) !crc;
          let oc = open_out_bin file in
          output_bytes oc b;
          close_out oc;
          match Code_cache.load ~capacity:4 ~db:(make_db ()) file with
          | _ -> Alcotest.fail "foreign record key was accepted"
          | exception Invalid_argument _ -> ()))

let key_v_library_test =
  Alcotest.test_case "library version changes the snapshot key" `Quick
    (fun () ->
      let k v =
        Fingerprint.key_v ~backend_version:v ~version:1 ~backend:"stencil"
          ~target:"x86-64" scan
      in
      check Alcotest.bool "v and v+1 differ" false
        (Int64.equal
           (k Stencil.library_version)
           (k (Stencil.library_version + 1)));
      check Alcotest.bool "versioned differs from unversioned" false
        (Int64.equal
           (k Stencil.library_version)
           (Fingerprint.key_v ~version:1 ~backend:"stencil" ~target:"x86-64"
              scan)))

(* ---------------- parallel serving differential ---------------- *)

let parallel_test =
  Alcotest.test_case "static:stencil across 2 domains = interpreter" `Quick
    (fun () ->
      let expect =
        List.map
          (fun (nm, p) ->
            let timing = Qcomp_support.Timing.create ~enabled:false () in
            let r, _, _ =
              Engine.run_plan (make_db ()) ~backend:Engine.interpreter ~timing
                ~name:nm p
            in
            (nm, (Engine.checksum r.Engine.rows, r.Engine.output_count)))
          plans
      in
      let r =
        Server.run ~parallel:2 (make_db ())
          {
            Server.default_config with
            Server.mode = Server.Static Engine.stencil;
            Server.morsel = 32;
          }
          plans
      in
      List.iter
        (fun q ->
          let e = List.assoc q.Report.qm_name expect in
          check
            Alcotest.(pair int64 int)
            q.Report.qm_name e
            (q.Report.qm_checksum, q.Report.qm_rows))
        r.Report.r_queries)

let suite =
  [
    numbering_test; holes_test; flat_coherence_test; artifact_stats_test;
    ladder_test; costmodel_test; snapshot_version_test; key_v_library_test;
    parallel_test;
  ]
