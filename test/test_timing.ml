(* Timing collector semantics (hierarchy, accumulation, disabled mode). *)

open Qcomp_support

let check = Alcotest.check

let suite =
  [
    Alcotest.test_case "disabled collector records nothing" `Quick (fun () ->
        let t = Timing.create ~enabled:false () in
        Timing.scope t "x" (fun () -> ());
        check Alcotest.int "events" 0 (Timing.event_count t);
        check Alcotest.(list (pair string (float 0.0))) "flat" [] (Timing.flat t));
    Alcotest.test_case "scope returns the result and re-raises" `Quick (fun () ->
        let t = Timing.create () in
        check Alcotest.int "result" 42 (Timing.scope t "a" (fun () -> 42));
        Alcotest.check_raises "exn propagates" Exit (fun () ->
            Timing.scope t "b" (fun () -> raise Exit));
        (* the failing scope is still recorded *)
        check Alcotest.bool "b recorded" true
          (List.exists (fun (p, _, _) -> p = "b") (Timing.entries t)));
    Alcotest.test_case "nesting produces slash paths" `Quick (fun () ->
        let t = Timing.create () in
        Timing.scope t "outer" (fun () -> Timing.scope t "inner" (fun () -> ()));
        let paths = List.map (fun (p, _, _) -> p) (Timing.entries t) in
        check Alcotest.(list string) "paths" [ "outer"; "outer/inner" ] paths);
    Alcotest.test_case "repeated scopes accumulate counts" `Quick (fun () ->
        let t = Timing.create () in
        for _ = 1 to 5 do
          Timing.scope t "p" (fun () -> ())
        done;
        match Timing.entries t with
        | [ ("p", _, count) ] -> check Alcotest.int "count" 5 count
        | es -> Alcotest.fail (Printf.sprintf "unexpected entries (%d)" (List.length es)));
    Alcotest.test_case "add charges without running" `Quick (fun () ->
        let t = Timing.create () in
        Timing.add t "x" 1.5;
        Timing.add t "x" 0.5;
        match Timing.flat t with
        | [ ("x", secs) ] -> check (Alcotest.float 1e-9) "sum" 2.0 secs
        | _ -> Alcotest.fail "expected one flat entry");
    Alcotest.test_case "total counts top-level only" `Quick (fun () ->
        let t = Timing.create () in
        Timing.add t "a" 1.0;
        Timing.scope t "b" (fun () -> Timing.add t "sub" 100.0);
        (* 'sub' is nested under b; total must not double-count it *)
        check Alcotest.bool "total < 3" true (Timing.total t < 3.0));
    Alcotest.test_case "parents listed before children" `Quick (fun () ->
        let t = Timing.create () in
        Timing.scope t "p" (fun () -> Timing.scope t "c" (fun () -> ()));
        match List.map (fun (p, _, _) -> p) (Timing.entries t) with
        | "p" :: _ -> ()
        | l -> Alcotest.fail (String.concat "," l));
    Alcotest.test_case "reset clears" `Quick (fun () ->
        let t = Timing.create () in
        Timing.scope t "x" (fun () -> ());
        Timing.reset t;
        check Alcotest.int "events" 0 (Timing.event_count t);
        check Alcotest.int "entries" 0 (List.length (Timing.entries t)));
    Alcotest.test_case "two domains: interleaved scopes keep separate paths"
      `Quick (fun () ->
        (* each domain nests under its own open-scope stack; the shared
           path tree must contain exactly the per-domain hierarchies, never
           a cross-domain mixture like a/d or c/b *)
        let t = Timing.create () in
        let iters = 300 in
        let worker outer inner () =
          for _ = 1 to iters do
            Timing.scope t outer (fun () -> Timing.scope t inner (fun () -> ()))
          done
        in
        let d1 = Domain.spawn (worker "a" "b")
        and d2 = Domain.spawn (worker "c" "d") in
        Domain.join d1;
        Domain.join d2;
        let paths = List.map (fun (p, _, _) -> p) (Timing.entries t) in
        List.iter
          (fun p ->
            check Alcotest.bool ("legal path " ^ p) true
              (List.mem p [ "a"; "a/b"; "c"; "c/d" ]))
          paths;
        let count path =
          match
            List.find_opt (fun (p, _, _) -> p = path) (Timing.entries t)
          with
          | Some (_, _, n) -> n
          | None -> 0
        in
        List.iter
          (fun p -> check Alcotest.int ("count " ^ p) iters (count p))
          [ "a"; "a/b"; "c"; "c/d" ];
        check Alcotest.int "events" (4 * iters) (Timing.event_count t));
    Alcotest.test_case "two domains: add charges under own scope" `Quick
      (fun () ->
        let t = Timing.create () in
        let worker outer () =
          for _ = 1 to 100 do
            Timing.scope t outer (fun () -> Timing.add t "leaf" 0.001)
          done
        in
        let d1 = Domain.spawn (worker "x") and d2 = Domain.spawn (worker "y") in
        Domain.join d1;
        Domain.join d2;
        List.iter
          (fun (p, _, _) ->
            check Alcotest.bool ("legal path " ^ p) true
              (List.mem p [ "x"; "x/leaf"; "y"; "y/leaf" ]))
          (Timing.entries t));
  ]
